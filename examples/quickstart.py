"""Quickstart: assess one SQL workload and get a SKU recommendation.

Generates a week of synthetic performance counters for a spiky OLTP
workload, runs the full Doppler assessment pipeline against the
default Azure SQL PaaS catalog and prints the resource-use dashboard:
the counters, the price-performance curve and the recommendation with
its explanation.

Run with::

    python examples/quickstart.py
"""

from repro import AssessmentPipeline, DeploymentType, PerfDimension
from repro.workloads import (
    DiurnalPattern,
    PlateauPattern,
    SpikyPattern,
    WorkloadSpec,
    generate_trace,
)


def main() -> None:
    # 1. Describe the workload: rare CPU/IOPS spikes over a modest
    #    base, a steady memory footprint and a daily log-write cycle.
    spec = WorkloadSpec(
        patterns={
            PerfDimension.CPU: SpikyPattern(base=1.5, peak=9.0, spike_probability=0.006),
            PerfDimension.MEMORY: PlateauPattern(level=18.0),
            PerfDimension.IOPS: SpikyPattern(base=250.0, peak=2200.0, spike_probability=0.006),
            PerfDimension.LOG_RATE: DiurnalPattern(trough=1.0, peak=6.0),
        },
        storage_gb=300.0,
        base_latency_ms=6.0,
        entity_id="quickstart-workload",
    )

    # 2. "Collect" a week of counters (DMA samples every 10 minutes
    #    and recommends running the collector for at least 7 days).
    trace = generate_trace(spec, duration_days=7, rng=0)

    # 3. Assess: preprocessing, price-performance curve, profiling,
    #    recommendation, bootstrap confidence, baseline comparison.
    pipeline = AssessmentPipeline.with_default_catalog()
    result = pipeline.assess(
        [trace],
        DeploymentType.SQL_DB,
        entity_id=trace.entity_id,
        with_confidence=True,
        rng=0,
    )

    print(result.dashboard)
    print()
    if result.baseline_sku is not None:
        print(f"Legacy baseline (95th-pct) pick: {result.baseline_sku.describe()}")
        doppler_cost = result.doppler.monthly_price
        baseline_cost = result.baseline_sku.monthly_price
        if baseline_cost > doppler_cost:
            print(
                f"Doppler saves ${(baseline_cost - doppler_cost) * 12:,.0f}/year "
                "versus the baseline by negotiating transient spikes."
            )
    else:
        print("Legacy baseline failed to find any SKU; Doppler still recommends.")


if __name__ == "__main__":
    main()
