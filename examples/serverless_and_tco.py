"""Compute-model and TCO advisory for a migration candidate.

Combines the two extension modules of paper Sections 5.5 and 7: should
this workload land on a provisioned SKU or the serverless tier, and
what does either save versus staying on-premises?

Run with::

    python examples/serverless_and_tco.py
"""

import numpy as np

from repro import DeploymentType, DopplerEngine, PerfDimension, SkuCatalog
from repro.extensions import OnPremCostModel, ServerlessAdvisor, compare_tco
from repro.telemetry import PerformanceTrace, TimeSeries


def nightly_batch_workload() -> PerformanceTrace:
    """A reporting database: busy 3 hours nightly, idle otherwise."""
    samples_per_day = 144  # 10-minute cadence
    day = np.zeros(samples_per_day)
    day[6:24] = 5.0  # 01:00-04:00 batch window, ~5 vCores
    cpu = np.tile(day, 14)
    rng = np.random.default_rng(0)
    cpu = cpu * np.abs(rng.normal(1.0, 0.05, cpu.size))
    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(cpu),
            PerfDimension.MEMORY: TimeSeries(np.where(cpu > 0.1, 20.0, 2.0)),
            PerfDimension.IOPS: TimeSeries(cpu * 300.0),
            PerfDimension.LOG_RATE: TimeSeries(cpu * 1.2),
            PerfDimension.STORAGE: TimeSeries(np.full(cpu.size, 400.0)),
        },
        entity_id="nightly-reporting",
    )


def main() -> None:
    catalog = SkuCatalog.default()
    trace = nightly_batch_workload()

    # 1. Provisioned recommendation (the deployed Doppler path).
    engine = DopplerEngine(catalog=catalog)
    recommendation = engine.recommend(trace, DeploymentType.SQL_DB)
    print(f"Workload: {trace.entity_id} ({trace.duration_days:.0f} days of counters)")
    print(f"Provisioned pick: {recommendation.sku.describe()}")

    # 2. Serverless comparison (Section 7 extension).
    advice = ServerlessAdvisor(catalog=catalog).advise(trace)
    print(f"\nBusy fraction of the window: {advice.busy_fraction:.0%}")
    if advice.serverless is not None:
        ev = advice.serverless
        print(
            f"Best serverless option: {ev.offer.name} at ${ev.monthly_cost:,.0f}/mo "
            f"(paused {ev.paused_fraction:.0%} of the time, "
            f"mean billed {ev.mean_billed_vcores:.1f} vCores)"
        )
    print(
        f"Recommended compute model: {advice.recommended_tier} "
        f"(saves ${advice.monthly_saving:,.0f}/mo over the alternative)"
    )

    # 3. TCO versus staying on-premises (Section 5.5 extension).
    cheaper_monthly = (
        advice.serverless.monthly_cost
        if advice.recommended_tier == "serverless" and advice.serverless
        else advice.provisioned_monthly
    )
    tco = compare_tco(trace, advice.provisioned_sku, cost_model=OnPremCostModel())
    print(f"\nTCO: {tco.describe()}")
    onprem_vs_best = tco.onprem_monthly - cheaper_monthly
    print(
        f"Against the recommended compute model the migration saves "
        f"${onprem_vs_best * 12:,.0f}/year."
    )


if __name__ == "__main__":
    main()
