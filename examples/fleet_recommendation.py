"""Fleet recommendation: assess a whole customer population in one pass.

Simulates a migrated-customer fleet, trains the Doppler engine on it,
then runs the fleet engine over the same population as an assessment
campaign: batched, curve-memoized, streaming, with a right-sizing
verdict per customer (each simulated customer carries the SKU they
run on today) and a campaign-level summary report.

Run with::

    python examples/fleet_recommendation.py
"""

import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script without installation
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro import DopplerEngine, FleetCustomer, FleetEngine, SkuCatalog
from repro.simulation import FleetConfig, simulate_fleet


def main() -> None:
    # 1. A simulated population of migrated customers (stands in for
    #    the paper's back-testing fleet of thousands).
    catalog = SkuCatalog.default()
    config = FleetConfig.paper_db(120, duration_days=5.0, interval_minutes=30.0)
    population = simulate_fleet(config, catalog, rng=2022)
    records = [customer.record for customer in population]

    # 2. One batched training pass: per-customer curve building fans
    #    out over the backend, group aggregation happens centrally.
    fleet = FleetEngine(engine=DopplerEngine(catalog=catalog), backend="serial")
    fit_report = fleet.fit_fleet(records)
    print(
        f"Fitted group models for {', '.join(fit_report.fitted_deployments)} from "
        f"{fit_report.n_records} records "
        f"({sum(fit_report.n_observations.values())} usable observations)"
    )

    # 3. The assessment campaign: recommend over every customer,
    #    streaming results.  Traces already seen during training hit
    #    the curve cache instead of rebuilding.
    customers = [
        FleetCustomer.from_record(record, customer_id=f"customer-{index:04d}")
        for index, record in enumerate(records)
    ]
    n_over = 0
    for result in fleet.recommend_fleet(customers):
        if result.over_provisioned:
            n_over += 1
    stats = fleet.cache_stats()
    print(
        f"Curve cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate) -- training curves reused"
    )
    print(f"Right-sizing: {n_over} customers flagged over-provisioned\n")

    # 4. The campaign report consumed by the DMA fleet stage.
    print(fleet.summary_report(customers).render())


if __name__ == "__main__":
    main()
