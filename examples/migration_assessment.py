"""Migration assessment of a whole on-prem SQL estate.

Plays the role of the Azure Migrate appliance (paper Figure 2): walk
an on-prem estate of SQL servers, aggregate file/database counters to
the instance level, and produce a per-server MI recommendation plus a
per-database DB recommendation, comparing Doppler's elastic strategy
with the legacy baseline throughout.

Run with::

    python examples/migration_assessment.py
"""

from repro import BaselineStrategy, DeploymentType, DopplerEngine, SkuCatalog
from repro.simulation import FleetConfig, simulate_fleet, simulate_onprem_estate


def main() -> None:
    catalog = SkuCatalog.default()

    # Learn customer-group throttling targets from (simulated) migrated
    # customers -- in production these profiles ship with DMA as static
    # input computed offline (paper Section 4).
    print("Training the profiler on migrated-customer telemetry ...")
    engine = DopplerEngine(catalog=catalog)
    db_fleet = simulate_fleet(
        FleetConfig.paper_db(80, duration_days=4, interval_minutes=30), catalog, rng=1
    )
    mi_fleet = simulate_fleet(
        FleetConfig.paper_mi(80, duration_days=4, interval_minutes=30), catalog, rng=2
    )
    engine.fit([c.record for c in db_fleet] + [c.record for c in mi_fleet])
    baseline = BaselineStrategy(quantile=0.95)

    # Discover the on-prem estate (simulated here; Azure Migrate's
    # Perf Collector in production).
    servers = simulate_onprem_estate(
        n_servers=4,
        databases_per_server=(2, 5),
        duration_days=7,
        interval_minutes=30,
        rng=3,
    )

    grand_total = 0.0
    for server in servers:
        print(f"\n=== {server.server_id} ({len(server.databases)} databases) ===")

        # Instance-level MI recommendation from the aggregated trace.
        instance_trace = server.instance_trace()
        mi_rec = engine.recommend(instance_trace, DeploymentType.SQL_MI)
        print(f"  lift-and-shift to MI: {mi_rec.sku.describe()}")
        print(
            f"    expected throttling {mi_rec.expected_throttling:.1%}, "
            f"curve shape {mi_rec.curve.shape().value}"
        )

        # Per-database DB recommendations for a re-platform path.
        db_total = 0.0
        for database in server.databases:
            rec = engine.recommend(database.trace, DeploymentType.SQL_DB)
            base = baseline.recommend(database.trace, DeploymentType.SQL_DB, catalog)
            base_text = base.name if base is not None else "<baseline: no SKU>"
            print(
                f"    {database.trace.entity_id} [{database.activity:>17}]: "
                f"{rec.sku.name} (${rec.monthly_price:,.0f}/mo)  baseline: {base_text}"
            )
            db_total += rec.monthly_price
        print(f"  re-platform to DB total: ${db_total:,.0f}/mo")
        print(f"  MI single-instance cost: ${mi_rec.monthly_price:,.0f}/mo")
        grand_total += min(db_total, mi_rec.monthly_price)

    print(f"\nEstimated optimal monthly spend across the estate: ${grand_total:,.0f}")


if __name__ == "__main__":
    main()
