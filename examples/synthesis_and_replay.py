"""Validating a recommendation by synthesized-workload replay.

Paper Section 5.4: since customer data and queries are off-limits, a
workload is *synthesized* from the performance history alone -- a mix
of TPC-C / TPC-H / TPC-DS / YCSB pieces with fitted scale factors,
concurrency and query frequency -- and replayed on candidate SKUs.
The observed counters validate the recommendation: the undersized SKU
pins its vCores at capacity and inflates IO latency, the recommended
SKU tracks the demand.

Run with::

    python examples/synthesis_and_replay.py
"""

from repro import (
    DeploymentType,
    DopplerEngine,
    PerfDimension,
    SkuCatalog,
    WorkloadSynthesizer,
    replay_on_sku,
)
from repro.dma import sparkline
from repro.workloads import DiurnalPattern, PlateauPattern, WorkloadSpec, generate_trace


def main() -> None:
    # The customer's history (the only thing we are allowed to see).
    spec = WorkloadSpec(
        patterns={
            PerfDimension.CPU: DiurnalPattern(trough=2.0, peak=7.0),
            PerfDimension.MEMORY: PlateauPattern(level=26.0),
            PerfDimension.IOPS: DiurnalPattern(trough=1500.0, peak=6000.0),
            PerfDimension.LOG_RATE: DiurnalPattern(trough=2.0, peak=8.0),
        },
        storage_gb=500.0,
        base_latency_ms=2.0,
        saturation_iops=9000.0,
        entity_id="history-only-customer",
    )
    history = generate_trace(spec, duration_days=7, rng=0)

    # Synthesize an equivalent workload from the history alone.
    synthesizer = WorkloadSynthesizer()
    synth = synthesizer.synthesize(history)
    print("Synthesized benchmark mix (no customer data or queries touched):")
    print(f"  {synth.describe()}")

    # How faithful is the mimicry?  (Paper 5.4: synthesized traces
    # "mimic that of the original".)
    from repro.workloads import fidelity_report

    fidelity = fidelity_report(history, synth.demand_trace(rng=9))
    per_dim = ", ".join(
        f"{dim.name} {error:.0%}" for dim, error in fidelity.per_dimension.items()
    )
    print(f"  fidelity (mean quantile error): {fidelity.mean_error:.0%} [{per_dim}]\n")

    # Recommend, then replay on the recommendation and its neighbours.
    catalog = SkuCatalog.default()
    engine = DopplerEngine(catalog=catalog)
    recommendation = engine.recommend(history, DeploymentType.SQL_DB)
    curve = recommendation.curve
    rank = curve.position_of(recommendation.sku.name)
    neighbours = [
        curve.points[max(0, rank - 4)].sku,
        recommendation.sku,
        curve.points[min(len(curve) - 1, rank + 6)].sku,
    ]

    demand = synth.demand_trace(rng=1)
    print(f"Replaying the synthesized workload on 3 SKUs around the pick:\n")
    print(f"{'SKU':>30} {'$/mo':>8} {'throttled':>10} {'p99 lat ms':>11} {'verdict':>22}")
    for sku in neighbours:
        result = replay_on_sku(demand, sku, rng=2)
        if sku.name == recommendation.sku.name:
            verdict = "<- Doppler's pick"
        elif result.throttled_fraction > 0.05:
            verdict = "undersized"
        else:
            verdict = "over-provisioned"
        print(
            f"{sku.name:>30} {sku.monthly_price:>8,.0f} "
            f"{result.throttled_fraction:>10.1%} {result.p99_latency_ms:>11.2f} "
            f"{verdict:>22}"
        )

    picked = replay_on_sku(demand, recommendation.sku, rng=2)
    print("\nObserved vCores on the recommended SKU:")
    print("  " + sparkline(picked.observed[PerfDimension.CPU].values, width=64))
    print(
        f"\nRecommendation validated: throttled {picked.throttled_fraction:.1%} "
        f"of the time, p99 latency {picked.p99_latency_ms:.1f} ms."
    )


if __name__ == "__main__":
    main()
