"""Live recommendation: keep a SKU verdict fresh under streaming telemetry.

Trains a Doppler engine on a simulated migrated fleet, then feeds one
customer's telemetry sample-by-sample through a
:class:`~repro.streaming.live.LiveRecommender`.  The workload grows
mid-stream; the live loop notices the drift in its incremental
throttling estimates and re-issues the recommendation -- without ever
re-running the batch pipeline on the unchanged stretches.

The second act scales the same loop to a whole fleet:
``FleetEngine.watch_fleet(backend="process")`` shards an interleaved
multi-customer feed across persistent worker processes with sticky
per-customer routing over a consistent-hash ring, emitting the exact
update stream the serial loop would -- one feed, many concurrent live
assessments.  The final act makes the watch *elastic*: a
``LoadImbalancePolicy`` watches per-shard load and migrates customers
off the hottest worker mid-stream (drain -> snapshot -> re-route ->
restore), without changing a byte of the output.

Run with::

    python examples/live_recommendation.py
"""

import sys
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # running as a script without installation
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro import DeploymentType, DopplerEngine, LiveRecommender, PerfDimension, SkuCatalog
from repro.fleet import FleetEngine, FleetSample, LoadImbalancePolicy, WatchConfig
from repro.simulation import FleetConfig, simulate_fleet


def telemetry_feed(n_samples: int, rng: np.random.Generator):
    """One customer's counters, tripling in demand mid-stream."""
    for index in range(n_samples):
        scale = 1.0 if index < n_samples // 2 else 3.0
        yield {
            PerfDimension.CPU: float(scale * abs(rng.normal(2.0, 0.6))),
            PerfDimension.MEMORY: float(scale * abs(rng.normal(8.0, 1.5))),
            PerfDimension.IOPS: float(scale * abs(rng.normal(350.0, 90.0))),
            PerfDimension.IO_LATENCY: float(abs(rng.normal(6.0, 0.8)) + 0.5),
            PerfDimension.LOG_RATE: float(scale * abs(rng.normal(2.5, 0.7))),
            PerfDimension.STORAGE: 150.0 + index * 0.02,
        }


def main() -> None:
    # 1. A fitted engine: group targets learned from a simulated
    #    migrated fleet (same training path as the batch examples).
    catalog = SkuCatalog.default()
    engine = DopplerEngine(catalog=catalog)
    config = FleetConfig.paper_db(80, duration_days=4.0, interval_minutes=30.0)
    population = simulate_fleet(config, catalog, rng=7)
    FleetEngine(engine=engine, backend="serial").fit_fleet(
        [customer.record for customer in population]
    )
    print("Engine fitted; starting the live loop.\n")

    # 2. The live loop: one day of 10-minute samples in the window,
    #    re-assessment only when the incremental estimates drift.
    live = LiveRecommender(
        engine,
        DeploymentType.SQL_DB,
        window=144,
        min_refresh_samples=12,
        drift_threshold=0.03,
        entity_id="live-customer",
    )
    rng = np.random.default_rng(2022)
    for index, sample in enumerate(telemetry_feed(400, rng)):
        update = live.observe(sample)
        if not update.refreshed:
            continue
        rec = update.recommendation
        cause = (
            f"drift {update.drift.max_divergence:.1%} on {update.drift.worst_sku}"
            if update.drift is not None
            else "initial assessment"
        )
        print(
            f"sample {index + 1:>4}: {rec.sku.name:<28} "
            f"${rec.monthly_price:>8,.0f}/mo  "
            f"throttling {rec.expected_throttling:.1%}  ({cause})"
        )

    # 3. What the stream cost: refreshes vs samples, and how often the
    #    memoized curve cache spared a rebuild.
    stats = live.cache.stats()
    print(
        f"\n{live.builder.n_seen} samples ingested, {live.n_refreshes} full "
        f"re-assessments ({live.n_refreshes / live.builder.n_seen:.0%} of samples); "
        f"curve cache: {stats.misses} builds, {stats.hits} hits."
    )
    print("\nFinal verdict:\n" + live.recommendation.explain())

    # 4. Fleet scale: the same live loop over an interleaved
    #    multi-customer feed, sharded across worker processes.  Each
    #    customer's state lives on exactly one worker (sticky routing
    #    by customer id), so the update stream is byte-identical to
    #    running the whole feed serially in the parent.
    print("\n--- Fleet watch: 12 customers through 2 worker processes ---\n")
    rng = np.random.default_rng(7)
    feeds = {
        f"tenant-{index:02d}": telemetry_feed(60, rng)
        for index in range(12)
    }
    fleet_feed = [
        FleetSample(customer_id=customer_id, values=sample)
        for batch in zip(*(list(feed) for feed in feeds.values()))
        for customer_id, sample in zip(feeds, batch)
    ]
    fleet = FleetEngine(engine=engine, backend="process", max_workers=2)
    n_updates = 0
    final = {}
    for update in fleet.watch_fleet(
        fleet_feed, config=WatchConfig(window=48, min_refresh_samples=12)
    ):
        n_updates += 1
        final[update.customer_id] = update.recommendation
    for customer_id in sorted(final):
        rec = final[customer_id]
        print(
            f"{customer_id}: {rec.sku.name:<28} "
            f"${rec.monthly_price:>8,.0f}/mo  "
            f"throttling {rec.expected_throttling:.1%}"
        )
    watch_stats = fleet.watch_cache_stats()
    print(
        f"\n{len(fleet_feed)} samples -> {n_updates} refresh events across "
        f"{len(feeds)} customers; watch curve cache: {watch_stats.misses} builds, "
        f"{watch_stats.hits} hits (aggregated over worker shards)."
    )

    # 5. Elastic watch: the same feed with a rebalance policy attached.
    #    The parent tracks per-shard load; when one worker runs hot, the
    #    policy migrates customers off it mid-stream -- drain, snapshot
    #    the live state on the source shard, re-route on the ring,
    #    restore on the target -- and the update stream is still
    #    byte-identical to the static run above.
    print("\n--- Elastic watch: same feed, load-imbalance rebalancing ---\n")
    policy = LoadImbalancePolicy(
        imbalance_threshold=1.1, min_samples=48, interval_ticks=2, max_migrations=4
    )
    n_updates = 0
    for update in fleet.watch_fleet(
        fleet_feed,
        config=WatchConfig(
            window=48,
            min_refresh_samples=12,
            rebalance=policy,
            on_rebalance=lambda event: print(
                f"  rebalance @tick {event.tick_id}: {event.n_moves} customers moved"
                + (
                    f", pool {event.resized_from} -> {event.resized_to} workers"
                    if event.resized_to is not None
                    else ""
                )
            ),
            tick_samples=16,
        ),
    ):
        n_updates += 1
    stats = fleet.watch_rebalance_stats()
    print(
        f"\n{n_updates} refresh events (identical stream); "
        f"{stats.n_decisions} load checks -> {stats.n_rebalances} rebalances, "
        f"{stats.n_migrations} customer migrations, {stats.n_resizes} resizes; "
        f"samples/shard: {dict(stats.samples_by_shard)}"
    )


if __name__ == "__main__":
    main()
