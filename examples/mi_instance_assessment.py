"""Managed Instance assessment with explicit file layouts.

Walks the MI-specific two-step procedure of paper Section 3.2:

* **Step 1** -- plan the premium-disk layout from the database files
  and check it covers 100 % of storage and >= 95 % of the IOPS and
  throughput demand (otherwise only Business Critical SKUs remain);
* **Step 2** -- build the instance-level price-performance curve with
  the layout's summed IOPS as the GP IOPS limit.

The same instance is assessed under two file layouts to show how
splitting data across more disks raises the GP IOPS ceiling -- the
lever MI customers actually control.

Run with::

    python examples/mi_instance_assessment.py
"""

from repro import DeploymentType, DopplerEngine, PerfDimension, SkuCatalog
from repro.workloads import DiurnalPattern, PlateauPattern, WorkloadSpec, generate_trace


def instance_workload():
    """An MI-bound instance: diurnal OLTP at ~6k IOPS peak."""
    spec = WorkloadSpec(
        patterns={
            PerfDimension.CPU: DiurnalPattern(trough=3.0, peak=7.0),
            PerfDimension.MEMORY: PlateauPattern(level=30.0),
            PerfDimension.IOPS: DiurnalPattern(trough=2500.0, peak=6200.0),
        },
        storage_gb=600.0,
        base_latency_ms=6.0,
        saturation_iops=12000.0,
        entity_id="mi-instance",
    )
    return generate_trace(spec, duration_days=7, rng=0)


def main() -> None:
    catalog = SkuCatalog.default()
    engine = DopplerEngine(catalog=catalog)
    trace = instance_workload()

    # File sizes are *provisioned* sizes: Azure lets MI customers
    # provision files larger than the data to land on bigger premium
    # disks and buy their higher IOPS limits.
    layouts = {
        "single 600 GiB file": [600.0],
        "four 1 TiB files": [1024.0] * 4,
    }
    for label, file_sizes in layouts.items():
        print(f"=== layout: {label} ===")
        plan = engine.ppm.plan_mi_storage(trace, file_sizes_gib=file_sizes)
        tiers = ", ".join(tier.name for tier in plan.layout.tiers)
        print(f"  Step 1: disks [{tiers}] -> instance IOPS limit "
              f"{plan.layout.total_iops:.0f}, throughput "
              f"{plan.layout.total_throughput_mibps:.0f} MiB/s")
        print(f"          demand: {plan.required_iops:.0f} IOPS; "
              f"GP viable at the 95% rule: {plan.gp_allowed}")
        recommendation = engine.recommend(
            trace, DeploymentType.SQL_MI, file_sizes_gib=file_sizes
        )
        print(f"  Step 2: recommended {recommendation.sku.describe()}")
        print(f"          expected throttling {recommendation.expected_throttling:.1%}\n")

    print(
        "Provisioning the data across more (larger) premium disks multiplies "
        "the GP IOPS ceiling: the single-file layout fails the 95% rule and "
        "forces Business Critical, while the four-disk layout keeps the much "
        "cheaper General Purpose instances in play."
    )


if __name__ == "__main__":
    main()
