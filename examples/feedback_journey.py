"""The closed migration-journey loop (paper Section 4).

The paper's planned telemetry integration: record every recommendation,
track whether it was adopted and retained, and feed the outcomes back
into the profiling module.  This example walks the full loop:

1. assess a cohort of workloads and log the recommendations;
2. simulate migration outcomes (most adopt and retain; some churn);
3. compute the adoption/retention summary DMA would report;
4. convert outcomes into feedback events and refine the group targets.

Run with::

    python examples/feedback_journey.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DeploymentType, DopplerEngine, SkuCatalog
from repro.dma import RecommendationStore
from repro.extensions import FeedbackLoop
from repro.simulation import FleetConfig, simulate_fleet


def main() -> None:
    catalog = SkuCatalog.default()
    engine = DopplerEngine(catalog=catalog)

    print("Training group targets on migrated customers ...")
    fleet = simulate_fleet(
        FleetConfig.paper_db(60, duration_days=4, interval_minutes=30), catalog, rng=5
    )
    engine.fit([c.record for c in fleet])
    model = engine.group_model(DeploymentType.SQL_DB)

    store_path = Path(tempfile.mkdtemp()) / "recommendations.jsonl"
    store = RecommendationStore(store_path)
    rng = np.random.default_rng(0)

    # 1. Assess a new cohort and log every recommendation.
    cohort = simulate_fleet(
        FleetConfig.paper_db(20, duration_days=4, interval_minutes=30), catalog, rng=6
    )
    print(f"Assessing a cohort of {len(cohort)} new migration customers ...")
    for customer in cohort:
        recommendation = engine.recommend(customer.record.trace, DeploymentType.SQL_DB)
        store.record(customer.record.trace.entity_id, "DB", recommendation)

    # 2. Simulate migration outcomes.
    for customer in cohort:
        entity = customer.record.trace.entity_id
        tracked = store.get(entity)
        adopted = rng.random() < 0.8
        if not adopted:
            store.update_outcome(entity, adopted=False)
            continue
        # Observed throttling scatters around the prediction; churners
        # saw materially more throttling than they would accept.
        churned = rng.random() < 0.15
        observed = tracked.expected_throttling + (
            rng.uniform(0.05, 0.15) if churned else rng.normal(0.0, 0.005)
        )
        retention = rng.uniform(5.0, 35.0) if churned else rng.uniform(45.0, 300.0)
        store.update_outcome(
            entity,
            adopted=True,
            retention_days=float(retention),
            observed_throttling=float(np.clip(observed, 0.0, 1.0)),
        )

    # 3. The DMA-side report.
    summary = store.retention_summary()
    print(
        f"\nJourney summary: {summary.n_issued} issued, "
        f"{summary.adoption_rate:.0%} adopted, "
        f"{summary.satisfaction_rate:.0%} of adopters retained >= 40 days, "
        f"mean retention {summary.mean_retention_days:.0f} days"
    )

    # 4. Close the loop: refine group targets from the outcomes.
    loop = FeedbackLoop(model=model, learning_rate=0.2)
    events = list(store.feedback_events())
    touched_groups = sorted({event.group_key for event in events})
    before = {key: loop.target_probability(key) for key in touched_groups}
    for event in events:
        loop.record(event)
    print(f"\nFed {len(events)} outcome events back into the profiler:")
    for key in touched_groups:
        after = loop.target_probability(key)
        label = "".join(map(str, key))
        print(
            f"  group {label}: target P_g {before[key]:.4f} -> {after:.4f} "
            f"({loop.events_seen(key)} events)"
        )
    print(
        "\nThe refined model now reflects post-migration satisfaction, not "
        "just historical SKU retention -- the paper's planned feedback loop."
    )


if __name__ == "__main__":
    main()
