"""Sizing an Azure Data Factory integration runtime with Doppler.

Paper Section 7: "Doppler has been adapted to recommend appropriate
compute infrastructure optimized by cost and performance" for Azure
Data Factory.  The same machinery -- capacity vectors, throttling
probabilities, price-performance curves -- ranks integration-runtime
(DIU) shapes from pipeline telemetry.

Run with::

    python examples/adf_runtime_sizing.py
"""

import numpy as np

from repro.extensions import ADF_RUNTIME_LADDER, pipeline_trace, recommend_adf_runtime


def nightly_etl_telemetry():
    """Two weeks of pipeline runs: nightly bulk copies plus hourly
    incremental loads."""
    rng = np.random.default_rng(0)
    samples_per_day = 144  # 10-minute samples
    days = 14
    movement = np.full(samples_per_day * days, 10.0)  # trickle loads
    for day in range(days):
        start = day * samples_per_day
        movement[start : start + 12] = rng.uniform(500.0, 750.0)  # 2h bulk copy
        for hour in range(2, 24):
            movement[start + hour * 6] = rng.uniform(60.0, 120.0)  # incrementals
    cores = movement / 40.0
    memory = cores * 3.0 + 2.0
    return pipeline_trace(cores, memory, movement, entity_id="nightly-etl")


def main() -> None:
    trace = nightly_etl_telemetry()
    print(f"Pipeline: {trace.entity_id} ({trace.duration_days:.0f} days of telemetry)\n")

    print("Price-performance curve over the DIU ladder:")
    for gamma, label in ((0.999, "strict (99.9% score)"), (0.98, "default (98%)"), (0.90, "thrifty (90%)")):
        recommendation = recommend_adf_runtime(trace, gamma=gamma)
        runtime = recommendation.runtime
        print(
            f"  {label:>22}: {runtime.name:>10} "
            f"({runtime.dius} DIUs, {runtime.movement_mbps:.0f} MB/s, "
            f"${runtime.price_per_hour:.2f}/h) -- expected queuing "
            f"{recommendation.expected_throttling:.1%}"
        )

    recommendation = recommend_adf_runtime(trace)
    print("\nFull ranking:")
    for point in recommendation.curve:
        marker = "  <- pick" if point.sku.name == recommendation.runtime.name else ""
        print(
            f"  {point.sku.name:>10}: ${point.sku.price_per_hour:>6.2f}/h  "
            f"score {point.score:.3f}{marker}"
        )
    print(
        "\nBulk-copy bursts are brief, so the cheapest runtime that keeps the "
        "queuing probability under 2% wins -- sized to the burst would cost "
        f"{ADF_RUNTIME_LADDER[-1].price_per_hour / recommendation.runtime.price_per_hour:.0f}x more."
    )


if __name__ == "__main__":
    main()
