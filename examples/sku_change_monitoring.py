"""Detecting the need for a SKU change from curve drift.

Paper Section 5.2.3 / Figure 11: price-performance curves regenerated
from fresh counters adapt to changing resource usage -- Doppler can
detect that a workload has outgrown (or no longer needs) its SKU
before the customer notices degradation.

This example simulates customers whose demand shifts mid-life,
regenerates the curve on each side of the shift and prints the
detected moves, including the throttling the customer would suffer by
keeping the stale SKU.

Run with::

    python examples/sku_change_monitoring.py
"""

from repro import SkuCatalog
from repro.simulation import simulate_sku_change_customers


def main() -> None:
    catalog = SkuCatalog.default()
    customers = simulate_sku_change_customers(
        8,
        catalog,
        duration_days=7,
        interval_minutes=30,
        upgrade_fraction=0.75,
        rng=7,
    )

    print(
        f"{'customer':>12} {'direction':>10} {'held SKU':>26} "
        f"{'curve now demands':>26} {'stale-SKU throttling':>21}"
    )
    for customer in customers:
        throttling = customer.stale_sku_throttling()
        customer_id = customer.before_trace.entity_id.rsplit("-", 1)[0]
        print(
            f"{customer_id:>12} {customer.direction:>10} "
            f"{customer.before_sku_name:>26} {customer.after_sku_name:>26} "
            f"{throttling:>21.1%}"
        )

    upgrades = [c for c in customers if c.direction == "upgrade"]
    if upgrades:
        worst = max(upgrades, key=lambda c: c.stale_sku_throttling())
        print(
            f"\nWorst stale-SKU exposure: {worst.stale_sku_throttling():.0%} "
            "throttling (the paper's Figure-11 customer faced >40%)."
        )
    print(
        "Doppler regenerates the curve from rolling counters, so the "
        "upgrade need is visible as soon as the workload shifts."
    )


if __name__ == "__main__":
    main()
