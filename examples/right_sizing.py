"""Right-sizing an existing cloud fleet.

Paper Section 5.1: roughly 10 % of Azure SQL PaaS customers are
over-provisioned -- some paying for 4x their max resource needs; one
highlighted customer saved over $100k/year by right-sizing.  This
example scans a (simulated) existing cloud fleet, flags
over-provisioned customers from their price-performance curves and
totals the available savings.

Run with::

    python examples/right_sizing.py
"""

from repro import DeploymentType, DopplerEngine, SkuCatalog
from repro.simulation import FleetConfig, simulate_fleet


def main() -> None:
    catalog = SkuCatalog.default()
    engine = DopplerEngine(catalog=catalog)

    print("Scanning the existing cloud fleet for over-provisioning ...\n")
    fleet = simulate_fleet(
        FleetConfig.paper_db(60, duration_days=4, interval_minutes=30),
        catalog,
        rng=42,
    )

    flagged = []
    for customer in fleet:
        report = engine.assess_over_provisioning(
            customer.record.trace,
            DeploymentType.SQL_DB,
            customer.record.chosen_sku_name,
        )
        if report.is_over_provisioned:
            flagged.append((customer, report))

    print(
        f"{len(flagged)}/{len(fleet)} customers flagged as over-provisioned "
        f"({len(flagged) / len(fleet):.0%}; the paper found ~10%)\n"
    )
    print(
        f"{'customer':>18} {'current SKU':>28} {'right-sized SKU':>28} "
        f"{'CPU util':>9} {'annual savings':>15}"
    )
    total_savings = 0.0
    for customer, report in sorted(
        flagged, key=lambda item: -item[1].annual_savings
    ):
        total_savings += report.annual_savings
        recommended = report.recommended_sku.name if report.recommended_sku else "-"
        print(
            f"{customer.record.trace.entity_id:>18} {report.current_sku.name:>28} "
            f"{recommended:>28} {report.utilization_ratio:>9.0%} "
            f"${report.annual_savings:>13,.0f}"
        )

    print(f"\nTotal annual savings available: ${total_savings:,.0f}")
    if flagged:
        top = flagged[0][1]
        print(
            f"Largest single saving: ${max(r.annual_savings for _, r in flagged):,.0f} "
            "(the paper's highlighted case saved >$100k/year)"
        )


if __name__ == "__main__":
    main()
