"""Unit tests for catalog and group-profile persistence (DMA static input)."""

import pytest

from repro.catalog import (
    SkuCatalog,
    catalog_from_dict,
    catalog_to_dict,
    dump_catalog_json,
    load_catalog_json,
)
from repro.catalog import DeploymentType
from repro.core import (
    DopplerEngine,
    GroupObservation,
    GroupScoreModel,
    dump_group_model_json,
    group_model_from_dict,
    group_model_to_dict,
    load_group_model_json,
)

from .conftest import full_trace


class TestCatalogSerialization:
    def test_dict_roundtrip(self, small_catalog):
        restored = catalog_from_dict(catalog_to_dict(small_catalog))
        assert len(restored) == len(small_catalog)
        assert restored.names() == small_catalog.names()
        for original, loaded in zip(small_catalog, restored):
            assert loaded.price_per_hour == original.price_per_hour
            assert loaded.limits == original.limits
            assert loaded.deployment is original.deployment
            assert loaded.tier is original.tier

    def test_json_roundtrip(self, tmp_path, small_catalog):
        path = tmp_path / "catalog.json"
        dump_catalog_json(small_catalog, path)
        restored = load_catalog_json(path)
        assert restored.names() == small_catalog.names()

    def test_full_default_catalog_roundtrip(self, tmp_path, default_catalog):
        path = tmp_path / "catalog.json"
        dump_catalog_json(default_catalog, path)
        restored = load_catalog_json(path)
        assert len(restored) == len(default_catalog)

    def test_unknown_version_rejected(self, small_catalog):
        document = catalog_to_dict(small_catalog)
        document["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            catalog_from_dict(document)


class TestGroupModelSerialization:
    def model(self):
        return GroupScoreModel.fit(
            [
                GroupObservation((0, 0, 1), 0.12),
                GroupObservation((0, 0, 1), 0.10),
                GroupObservation((1, 1, 1), 0.002),
            ]
        )

    def test_dict_roundtrip(self):
        model = self.model()
        restored = group_model_from_dict(group_model_to_dict(model))
        assert set(restored.groups) == set(model.groups)
        for key in model.groups:
            assert restored.groups[key].p_mean == pytest.approx(model.groups[key].p_mean)
            assert restored.groups[key].count == model.groups[key].count
        assert restored.fallback.p_mean == pytest.approx(model.fallback.p_mean)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "profiles.json"
        dump_group_model_json(self.model(), path)
        restored = load_group_model_json(path)
        assert restored.target_probability((0, 0, 1)) == pytest.approx(0.11)

    def test_malformed_label_rejected(self):
        document = group_model_to_dict(self.model())
        document["groups"]["01x"] = document["groups"].pop("001")
        with pytest.raises(ValueError, match="malformed"):
            group_model_from_dict(document)

    def test_unknown_version_rejected(self):
        document = group_model_to_dict(self.model())
        document["format_version"] = 0
        with pytest.raises(ValueError, match="version"):
            group_model_from_dict(document)


class TestEngineProfileDeployment:
    def test_offline_train_then_deploy(self, tmp_path, small_catalog):
        """The paper's Section-4 flow: fit offline, ship profiles, load
        in the customer-local runtime."""
        from repro.core import CloudCustomerRecord

        offline = DopplerEngine(catalog=small_catalog)
        trace = full_trace(cpu_level=0.5, n=1008)
        curve = offline.ppm.build_curve(trace, DeploymentType.SQL_DB)
        record = CloudCustomerRecord(
            trace=trace,
            deployment=DeploymentType.SQL_DB,
            chosen_sku_name=curve.points[0].sku.name,
        )
        offline.fit([record])
        path = tmp_path / "profiles.json"
        offline.save_profiles(path, DeploymentType.SQL_DB)

        deployed = DopplerEngine(catalog=small_catalog)
        deployed.load_profiles(path, DeploymentType.SQL_DB)
        result = deployed.recommend(trace, DeploymentType.SQL_DB)
        assert result.strategy == "profile_match"
        offline_result = offline.recommend(trace, DeploymentType.SQL_DB)
        assert result.sku.name == offline_result.sku.name

    def test_save_without_fit_raises(self, tmp_path, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        with pytest.raises(ValueError, match="no fitted group model"):
            engine.save_profiles(tmp_path / "x.json", DeploymentType.SQL_DB)
