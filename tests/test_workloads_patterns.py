"""Unit tests for the temporal demand patterns."""

import numpy as np
import pytest

from repro.workloads import (
    BurstyPattern,
    Composite,
    DiurnalPattern,
    IdlePattern,
    PlateauPattern,
    RampPattern,
    SpikyPattern,
    SteadyPattern,
)

N = 1008  # one week at 10-minute cadence
INTERVAL = 10.0


ALL_PATTERNS = [
    SteadyPattern(level=2.0),
    SpikyPattern(base=1.0, peak=6.0),
    DiurnalPattern(trough=1.0, peak=4.0),
    BurstyPattern(low=1.0, high=5.0),
    PlateauPattern(level=3.0),
    RampPattern(start=1.0, end=8.0),
    IdlePattern(),
    Composite(SteadyPattern(level=1.0), SpikyPattern(base=0.0, peak=3.0)),
]


@pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=lambda p: type(p).__name__)
class TestCommonContract:
    def test_shape_and_nonnegative(self, pattern):
        values = pattern.generate(N, INTERVAL, rng=0)
        assert values.shape == (N,)
        assert np.all(values >= 0.0)
        assert np.all(np.isfinite(values))

    def test_deterministic_given_seed(self, pattern):
        a = pattern.generate(N, INTERVAL, rng=13)
        b = pattern.generate(N, INTERVAL, rng=13)
        np.testing.assert_array_equal(a, b)


class TestSteady:
    def test_mean_near_level(self):
        values = SteadyPattern(level=3.0, noise=0.05).generate(N, INTERVAL, rng=0)
        assert values.mean() == pytest.approx(3.0, rel=0.05)

    def test_zero_noise_is_constant(self):
        values = SteadyPattern(level=2.0, noise=0.0).generate(100, INTERVAL, rng=0)
        np.testing.assert_array_equal(values, np.full(100, 2.0))


class TestSpiky:
    def test_peak_reached_and_base_dominates(self):
        pattern = SpikyPattern(base=1.0, peak=6.0, spike_probability=0.01, noise=0.0)
        values = pattern.generate(N, INTERVAL, rng=0)
        assert values.max() == pytest.approx(6.0)
        assert np.median(values) == pytest.approx(1.0)

    def test_at_least_one_spike_guaranteed(self):
        pattern = SpikyPattern(base=1.0, peak=6.0, spike_probability=0.0, noise=0.0)
        values = pattern.generate(N, INTERVAL, rng=0)
        assert values.max() == pytest.approx(6.0)

    def test_spike_time_fraction_small(self):
        pattern = SpikyPattern(base=1.0, peak=6.0, spike_probability=0.005, noise=0.0)
        values = pattern.generate(N, INTERVAL, rng=1)
        assert np.mean(values > 3.0) < 0.1


class TestDiurnal:
    def test_range(self):
        values = DiurnalPattern(trough=1.0, peak=4.0, noise=0.0).generate(N, INTERVAL, rng=0)
        assert values.min() == pytest.approx(1.0, abs=0.01)
        assert values.max() == pytest.approx(4.0, abs=0.01)

    def test_daily_period(self):
        values = DiurnalPattern(trough=1.0, peak=4.0, noise=0.0).generate(288, INTERVAL, rng=0)
        # Samples one day apart should match.
        np.testing.assert_allclose(values[:144], values[144:], atol=1e-9)


class TestBursty:
    def test_bimodal(self):
        values = BurstyPattern(low=1.0, high=5.0, noise=0.0).generate(N, INTERVAL, rng=0)
        assert set(np.round(np.unique(values), 6)) == {1.0, 5.0}

    def test_sustained_phases(self):
        values = BurstyPattern(
            low=1.0, high=5.0, mean_on_samples=50, mean_off_samples=50, noise=0.0
        ).generate(N, INTERVAL, rng=0)
        transitions = np.sum(np.abs(np.diff(values)) > 1.0)
        assert transitions < N / 10


class TestPlateau:
    def test_values_never_exceed_level(self):
        values = PlateauPattern(level=3.0).generate(N, INTERVAL, rng=0)
        assert values.max() <= 3.0 + 1e-12

    def test_mass_concentrated_near_peak(self):
        """The property the thresholding summarizer relies on."""
        values = PlateauPattern(level=3.0, dip_scale=0.06).generate(N, INTERVAL, rng=0)
        window_floor = values.max() - values.std()
        assert np.mean(values >= window_floor) > 0.3


class TestRamp:
    def test_monotone_trend(self):
        values = RampPattern(start=1.0, end=8.0, noise=0.0).generate(100, INTERVAL, rng=0)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(8.0)
        assert np.all(np.diff(values) >= 0)


class TestComposite:
    def test_sums_components(self):
        composite = Composite(
            SteadyPattern(level=1.0, noise=0.0), SteadyPattern(level=2.0, noise=0.0)
        )
        values = composite.generate(10, INTERVAL, rng=0)
        np.testing.assert_allclose(values, np.full(10, 3.0))
