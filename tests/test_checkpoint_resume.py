"""Watch-level durability: checkpoint, kill, resume, byte-identity.

The contract under test (ISSUE tentpole): a watch killed at tick T and
resumed from its store emits the same update stream from T onward as
the uninterrupted run -- on every execution backend -- and
checkpointing/eviction are invisible in the output of an uninterrupted
run.  Store unit tests live in ``test_store.py``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import FleetEngine, RecommendationService, ServeConfig
from repro.core import DopplerEngine
from repro.fleet import CheckpointConfig, WatchConfig
from repro.fleet.rebalance import Migration, RebalanceDecision, ScheduledRebalancePolicy
from repro.store import FleetStore, FleetStoreError

from .test_fleet_backends import canonical_updates, interleaved_feed

WATCH = WatchConfig(window=16, min_refresh_samples=8, tick_samples=8)


def make_fleet(small_catalog, backend="serial", max_workers=None):
    return FleetEngine(
        engine=DopplerEngine(catalog=small_catalog),
        backend=backend,
        max_workers=max_workers,
    )


def checkpointed(store, **changes):
    return WATCH.replace(checkpoint=CheckpointConfig(store=store, **changes))


def run_killed(fleet, feed, config, n_consume):
    """Run a checkpointed watch and kill it after ``n_consume`` updates."""
    consumed = []
    stream = fleet.watch_fleet(feed, config=config)
    try:
        for update in stream:
            consumed.append(update)
            if len(consumed) >= n_consume:
                break
    finally:
        stream.close()
    return consumed


# ----------------------------------------------------------------------
# Resume byte-identity, all backends
# ----------------------------------------------------------------------
class TestResumeIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_kill_at_random_tick_resumes_byte_identically(
        self, backend, small_catalog, tmp_path
    ):
        """Property test: kill points drawn per backend, resume parity."""
        feed = interleaved_feed(5, 24, seed=9)
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))
        assert len(baseline) >= 10
        rng = np.random.default_rng(hash(backend) % 2**32)
        kill_points = sorted(
            rng.integers(3, len(baseline) - 1, size=2 if backend == "serial" else 1)
        )
        for trial, kill_at in enumerate(kill_points):
            store = FleetStore(str(tmp_path / f"{backend}-{trial}.db"))
            config = checkpointed(store, every_ticks=2).replace(
                backend=backend, max_workers=2
            )
            consumed = run_killed(
                make_fleet(small_catalog), feed, config, int(kill_at)
            )
            checkpoint = store.require_checkpoint()
            assert checkpoint.n_emitted <= len(consumed)
            resumed = list(
                make_fleet(small_catalog).watch_fleet(
                    feed, config=config, resume_from=store
                )
            )
            # Everything consumed before the kill matches the baseline...
            assert canonical_updates(consumed) == canonical_updates(
                baseline[: len(consumed)]
            )
            # ...and the resumed stream continues exactly at the
            # checkpoint position, byte-identical to the rest.
            assert canonical_updates(resumed) == canonical_updates(
                baseline[checkpoint.n_emitted :]
            )
            store.close()

    def test_cross_backend_resume(self, small_catalog, tmp_path):
        """A checkpoint written by one backend resumes on another."""
        feed = interleaved_feed(4, 20, seed=17)
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))
        store = FleetStore(str(tmp_path / "cross.db"))
        config = checkpointed(store, every_ticks=2).replace(
            backend="thread", max_workers=2
        )
        run_killed(make_fleet(small_catalog), feed, config, len(baseline) // 2)
        checkpoint = store.require_checkpoint()
        resumed = list(
            make_fleet(small_catalog).watch_fleet(
                feed,
                config=checkpointed(store, every_ticks=2),  # serial resume
                resume_from=store,
            )
        )
        assert canonical_updates(resumed) == canonical_updates(
            baseline[checkpoint.n_emitted :]
        )
        store.close()

    def test_resume_from_checkpointless_store_is_clear(self, small_catalog):
        store = FleetStore()
        fleet = make_fleet(small_catalog)
        with pytest.raises(FleetStoreError, match="no checkpoint to resume from"):
            list(fleet.watch_fleet([], config=WATCH, resume_from=store))

    def test_resume_from_non_store_rejected(self, small_catalog):
        fleet = make_fleet(small_catalog)
        with pytest.raises(ValueError, match="resume_from must be a FleetStore"):
            fleet.watch_fleet([], config=WATCH, resume_from="/tmp/fleet.db")


# ----------------------------------------------------------------------
# Checkpointing and eviction are invisible in the output
# ----------------------------------------------------------------------
class TestOutputInvariance:
    def test_checkpointing_does_not_change_the_stream(self, small_catalog):
        feed = interleaved_feed(4, 20, seed=3)
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))
        store = FleetStore()
        with_checkpoints = list(
            make_fleet(small_catalog).watch_fleet(
                feed, config=checkpointed(store, every_ticks=2)
            )
        )
        assert canonical_updates(with_checkpoints) == canonical_updates(baseline)
        assert store.checkpoint_count() >= 2
        store.close()

    def test_eviction_round_trips_through_the_store(self, small_catalog):
        feed = interleaved_feed(6, 20, seed=4)
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))
        store = FleetStore()
        evicting = list(
            make_fleet(small_catalog).watch_fleet(
                feed, config=checkpointed(store, every_ticks=1, max_resident=2)
            )
        )
        # Every tick evicts down to 2 residents and every customer
        # reappears next tick, so the restore path runs constantly --
        # and must be invisible in the output.
        assert canonical_updates(evicting) == canonical_updates(baseline)
        assert store.event_counts().get("eviction", 0) > 0
        store.close()

    def test_quarantine_survives_kill_and_resume(self, small_catalog, tmp_path):
        feed = interleaved_feed(4, 24, seed=6, poison=("cust-1",))
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))
        errors = [u for u in baseline if u.error is not None]
        assert len(errors) == 1  # quarantined exactly once uninterrupted
        store = FleetStore(str(tmp_path / "quarantine.db"))
        config = checkpointed(store, every_ticks=1)
        consumed = run_killed(
            make_fleet(small_catalog), feed, config, len(baseline) // 2
        )
        checkpoint = store.require_checkpoint()
        resumed = list(
            make_fleet(small_catalog).watch_fleet(
                feed, config=config, resume_from=store
            )
        )
        combined = consumed[: checkpoint.n_emitted] + resumed
        assert canonical_updates(combined) == canonical_updates(baseline)
        assert sum(1 for u in combined if u.error is not None) == 1
        assert store.event_counts().get("quarantine", 0) == 1
        store.close()

    def test_delta_checkpoints_shrink_on_mostly_idle_fleet(
        self, small_catalog, tmp_path
    ):
        """Satellite contract: delta checkpoints write the active minority.

        A fleet where every customer streams for a warm-up phase and
        then all but one go idle: full checkpoints keep re-writing all
        six customers forever, delta checkpoints shrink to the single
        active one -- in rows and in bytes -- while the store still
        holds (and can resume) the whole fleet.
        """
        from repro.fleet import CheckpointConfig, FleetSample

        from .test_fleet_backends import live_samples

        n_customers, n_warm, n_tail = 6, 16, 32
        rng = np.random.default_rng(3)
        streams = {
            f"cust-{i}": live_samples(n_warm + n_tail, rng, scale=1.0 + 0.3 * i)
            for i in range(n_customers)
        }
        feed = [
            FleetSample(customer_id=cid, values=streams[cid][pos])
            for pos in range(n_warm)
            for cid in streams
        ] + [
            FleetSample(customer_id="cust-0", values=streams["cust-0"][pos])
            for pos in range(n_warm, n_warm + n_tail)
        ]
        baseline = list(make_fleet(small_catalog).watch_fleet(feed, config=WATCH))

        def run(path, delta):
            store = FleetStore(str(tmp_path / path))
            config = WATCH.replace(
                checkpoint=CheckpointConfig(store=store, every_ticks=1, delta=delta)
            )
            stream = list(make_fleet(small_catalog).watch_fleet(feed, config=config))
            assert canonical_updates(stream) == canonical_updates(baseline)
            rows = store._conn.execute(
                "SELECT n_customers, n_state_bytes FROM checkpoints"
                " ORDER BY checkpoint_id"
            ).fetchall()
            return store, rows

        full_store, full_rows = run("full.db", delta=False)
        delta_store, delta_rows = run("delta.db", delta=True)
        # Full mode re-writes the whole fleet at every checkpoint.
        assert all(n == n_customers for n, _ in full_rows)
        # Delta mode: the warm phase still writes everyone, the idle
        # tail shrinks to the lone active customer -- and the bytes
        # shrink with the rows.
        first_customers, first_bytes = delta_rows[0]
        tail_customers, tail_bytes = delta_rows[-1]
        assert first_customers == n_customers
        assert tail_customers == 1
        assert 0 < tail_bytes < first_bytes
        assert tail_bytes < full_rows[-1][1]
        # The idle majority was skipped, not lost: the store holds the
        # whole fleet and resumes it byte-identically.
        assert delta_store.customer_counts()[0] == n_customers
        resumed = list(
            make_fleet(small_catalog).watch_fleet(
                feed,
                config=WATCH.replace(
                    checkpoint=CheckpointConfig(store=delta_store, every_ticks=1)
                ),
                resume_from=delta_store,
            )
        )
        checkpoint = delta_store.require_checkpoint()
        assert canonical_updates(resumed) == canonical_updates(
            baseline[checkpoint.n_emitted :]
        )
        full_store.close()
        delta_store.close()

    def test_rebalance_events_land_in_the_store(self, small_catalog):
        feed = interleaved_feed(6, 24, seed=8)
        store = FleetStore()
        schedule = {
            2: RebalanceDecision(
                migrations=(Migration("cust-0", 2), Migration("cust-1", 2))
            ),
            4: RebalanceDecision(migrations=(Migration("cust-2", 0),), resize_to=2),
        }
        config = checkpointed(store, every_ticks=4).replace(
            backend="thread",
            max_workers=3,
            rebalance=ScheduledRebalancePolicy(schedule=schedule),
        )
        list(make_fleet(small_catalog).watch_fleet(feed, config=config))
        counts = store.event_counts()
        assert counts.get("rebalance", 0) > 0
        rolling = store.rolling_event_counts("migration", window_ticks=8)
        total_migrations = counts.get("migration", 0)
        assert sum(n for _, n, _ in rolling) == total_migrations
        store.close()


# ----------------------------------------------------------------------
# Serving-tier durability
# ----------------------------------------------------------------------
class TestServiceDurability:
    def run(self, coro):
        return asyncio.run(coro)

    def test_checkpoint_evict_and_cold_read(self, small_catalog):
        feed = interleaved_feed(6, 14, seed=12)

        async def scenario():
            store = FleetStore()
            fleet = make_fleet(small_catalog)
            service = RecommendationService(
                fleet, ServeConfig(n_shards=2, watch=WATCH), store=store
            )
            async with service:
                for sample in feed:
                    await service.observe(sample)
                hot = service.recommendation_for("cust-0")
                assert hot is not None
                checkpoint = await service.checkpoint()
                assert checkpoint.n_customers == 6
                n_evicted = await service.evict_cold(2)
                assert n_evicted == 4
                stats = service.stats()["durability"]
                assert stats["n_checkpoints"] == 1
                assert stats["n_evicted_resident"] == 4
                # Cold customers answer from the store, identically.
                cold = service.recommendation_for("cust-0")
                assert cold is not None and cold.sku.name == hot.sku.name
                # A returning evicted customer restores transparently.
                update = await service.observe(feed[0])
                assert update.error is None
                assert service.stats()["durability"]["n_evicted_resident"] == 3
            store.close()

        self.run(scenario())

    def test_evict_without_store_is_an_error(self, small_catalog):
        async def scenario():
            fleet = make_fleet(small_catalog)
            async with RecommendationService(fleet, ServeConfig(n_shards=1)) as service:
                with pytest.raises(RuntimeError, match="no FleetStore attached"):
                    await service.checkpoint()
                with pytest.raises(RuntimeError, match="no FleetStore attached"):
                    await service.evict_cold(1)

        self.run(scenario())

    def test_unknown_customer_recommendation_is_none(self, small_catalog):
        async def scenario():
            fleet = make_fleet(small_catalog)
            store = FleetStore()
            service = RecommendationService(
                fleet, ServeConfig(n_shards=1), store=store
            )
            async with service:
                assert service.recommendation_for("nobody") is None
            store.close()

        self.run(scenario())


# ----------------------------------------------------------------------
# Serving warm restart: a new service resumes from the latest checkpoint
# ----------------------------------------------------------------------
class TestServiceWarmRestart:
    def run(self, coro):
        return asyncio.run(coro)

    def test_restart_restores_observe_state_and_serves_identically(
        self, small_catalog
    ):
        feed = interleaved_feed(5, 20, seed=17)
        half = len(feed) // 2

        async def scenario():
            store = FleetStore()
            fleet = make_fleet(small_catalog)
            config = ServeConfig(n_shards=2, watch=WATCH)
            service = RecommendationService(fleet, config, store=store)
            async with service:
                for sample in feed[:half]:
                    await service.observe(sample)
                await service.checkpoint()
                assert service.stats()["durability"]["n_warm_restored"] == 0

            # A direct (never-interrupted) run over the whole feed is
            # the identity baseline.
            direct_store = FleetStore()
            direct = RecommendationService(
                make_fleet(small_catalog), config, store=direct_store
            )
            direct_updates = {}
            async with direct:
                for sample in feed:
                    update = await direct.observe(sample)
                    direct_updates[sample.customer_id] = update

            # Restart: a fresh service on the same store picks up the
            # checkpointed observe state before accepting traffic.
            restarted = RecommendationService(
                make_fleet(small_catalog), config, store=store
            )
            served_updates = {}
            async with restarted:
                assert (
                    restarted.stats()["durability"]["n_warm_restored"] == 5
                )
                for sample in feed[half:]:
                    update = await restarted.observe(sample)
                    served_updates[sample.customer_id] = update
            store.close()
            direct_store.close()
            return direct_updates, served_updates

        direct_updates, served_updates = self.run(scenario())
        assert set(served_updates) == set(direct_updates)
        for customer_id, expected in sorted(direct_updates.items()):
            served = served_updates[customer_id]
            assert served.ok and expected.ok
            assert served.update.n_seen == expected.update.n_seen
            expected_rec = expected.update.recommendation
            served_rec = served.update.recommendation
            assert (served_rec is None) == (expected_rec is None)
            if expected_rec is not None:
                assert served_rec.sku.name == expected_rec.sku.name
                assert repr(served_rec.expected_throttling) == repr(
                    expected_rec.expected_throttling
                )

    def test_restart_without_checkpoint_is_cold(self, small_catalog):
        async def scenario():
            store = FleetStore()
            fleet = make_fleet(small_catalog)
            service = RecommendationService(
                fleet, ServeConfig(n_shards=1, watch=WATCH), store=store
            )
            async with service:
                assert service.stats()["durability"]["n_warm_restored"] == 0
            store.close()

        self.run(scenario())

    def test_restart_quarantines_corrupt_blobs_but_serves_the_rest(
        self, small_catalog
    ):
        from repro.faults import FaultPlan

        feed = interleaved_feed(4, 16, seed=19)

        async def scenario():
            store = FleetStore()
            config = ServeConfig(n_shards=2, watch=WATCH)
            service = RecommendationService(
                make_fleet(small_catalog), config, store=store
            )
            async with service:
                for sample in feed:
                    await service.observe(sample)
                await service.checkpoint()
            FaultPlan(corrupt_snapshots=("cust-2",)).corrupt_store(store)
            restarted = RecommendationService(
                make_fleet(small_catalog), config, store=store
            )
            async with restarted:
                stats = restarted.stats()
                assert stats["durability"]["n_warm_restored"] == 3
                assert stats["degraded"]["n_corrupt_quarantined"] == 1
                update = await restarted.observe(feed[0])
                assert update.ok
            kinds = [
                (event.kind, event.customer_id) for event in store.events()
            ]
            assert ("quarantine", "cust-2") in kinds
            store.close()

        self.run(scenario())
