"""Unit and property tests for counter gap repair."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import longest_gap, repair_gaps


class TestLongestGap:
    def test_no_gaps(self):
        assert longest_gap(np.array([False, False, False])) == 0

    def test_single_run(self):
        assert longest_gap(np.array([False, True, True, True, False])) == 3

    def test_multiple_runs_takes_max(self):
        mask = np.array([True, False, True, True, False, True])
        assert longest_gap(mask) == 2

    def test_all_missing(self):
        assert longest_gap(np.ones(5, dtype=bool)) == 5


class TestRepairGaps:
    def test_no_gaps_passthrough(self):
        repair = repair_gaps(np.array([1.0, 2.0, 3.0]))
        assert repair.n_missing == 0
        assert repair.credible
        np.testing.assert_array_equal(repair.series.values, [1.0, 2.0, 3.0])

    def test_interior_gap_interpolated(self):
        repair = repair_gaps(np.array([1.0, np.nan, 3.0]))
        assert repair.n_missing == 1
        np.testing.assert_allclose(repair.series.values, [1.0, 2.0, 3.0])

    def test_leading_and_trailing_gaps_filled(self):
        repair = repair_gaps(np.array([np.nan, 2.0, np.nan]))
        np.testing.assert_allclose(repair.series.values, [2.0, 2.0, 2.0])

    def test_long_gap_not_credible(self):
        values = np.concatenate([[1.0], np.full(20, np.nan), [2.0]])
        repair = repair_gaps(values, max_gap_samples=18)
        assert not repair.credible
        assert repair.longest_gap_samples == 20
        # ...but the series is still dense and usable.
        assert np.all(np.isfinite(repair.series.values))

    def test_short_gap_credible(self):
        values = np.concatenate([[1.0], np.full(5, np.nan), [2.0]])
        assert repair_gaps(values, max_gap_samples=18).credible

    def test_clock_preserved(self):
        repair = repair_gaps(
            np.array([1.0, np.nan, 3.0]), interval_minutes=30.0, start_minute=60.0
        )
        assert repair.series.interval_minutes == 30.0
        assert repair.series.start_minute == 60.0

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError, match="every sample"):
            repair_gaps(np.full(4, np.nan))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            repair_gaps(np.array([]))


class TestRepairProperties:
    @given(
        st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.none(),
            ),
            min_size=1,
            max_size=60,
        ).filter(lambda items: any(value is not None for value in items))
    )
    def test_repair_is_dense_and_range_bounded(self, items):
        values = np.array(
            [np.nan if value is None else value for value in items], dtype=float
        )
        repair = repair_gaps(values)
        assert np.all(np.isfinite(repair.series.values))
        observed = values[np.isfinite(values)]
        assert repair.series.values.min() >= observed.min() - 1e-9
        assert repair.series.values.max() <= observed.max() + 1e-9
        # Known samples are untouched.
        known_mask = np.isfinite(values)
        np.testing.assert_array_equal(
            repair.series.values[known_mask], values[known_mask]
        )

    @given(st.integers(1, 40), st.integers(0, 39))
    def test_gap_statistics_consistent(self, n, gap_start):
        values = np.arange(float(n))
        gap_start = min(gap_start, n - 1)
        values[gap_start] = np.nan
        if np.isfinite(values).sum() == 0:
            return
        repair = repair_gaps(values)
        assert repair.n_missing == 1
        assert repair.longest_gap_samples == 1
