"""Unit tests for repro.catalog.models."""


import pytest

from repro.catalog import (
    HOURS_PER_MONTH,
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)

from .conftest import make_sku


def limits(**overrides):
    base = dict(
        vcores=4.0,
        max_memory_gb=20.8,
        max_data_iops=1280.0,
        max_log_rate_mbps=15.0,
        max_data_size_gb=1024.0,
        min_io_latency_ms=5.0,
    )
    base.update(overrides)
    return ResourceLimits(**base)


class TestResourceLimits:
    def test_valid_limits_accepted(self):
        result = limits()
        assert result.vcores == 4.0
        assert result.max_memory_gb == 20.8

    @pytest.mark.parametrize(
        "field",
        [
            "vcores",
            "max_memory_gb",
            "max_data_iops",
            "max_log_rate_mbps",
            "max_data_size_gb",
            "min_io_latency_ms",
        ],
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError, match=field):
            limits(**{field: 0.0})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError):
            limits(vcores=bad)

    def test_dominates_reflexive(self):
        assert limits().dominates(limits())

    def test_dominates_bigger_machine(self):
        big = limits(vcores=8.0, max_memory_gb=41.6, max_data_iops=2560.0)
        assert big.dominates(limits())
        assert not limits().dominates(big)

    def test_dominates_latency_is_inverted(self):
        fast = limits(min_io_latency_ms=1.0)
        slow = limits(min_io_latency_ms=5.0)
        assert fast.dominates(slow)
        assert not slow.dominates(fast)

    def test_with_iops_replaces_only_iops(self):
        replaced = limits().with_iops(9999.0)
        assert replaced.max_data_iops == 9999.0
        assert replaced.vcores == limits().vcores
        assert replaced.max_memory_gb == limits().max_memory_gb


class TestSkuSpec:
    def test_monthly_price(self):
        sku = make_sku(2)
        assert sku.monthly_price == pytest.approx(sku.price_per_hour * HOURS_PER_MONTH)

    def test_auto_generated_name_is_stable(self):
        a = make_sku(4)
        b = make_sku(4)
        assert a.name == b.name
        assert "DB_GP" in a.name

    def test_explicit_name_preserved(self):
        sku = make_sku(4, name="custom")
        assert sku.name == "custom"

    def test_rejects_non_positive_price(self):
        with pytest.raises(ValueError, match="price"):
            SkuSpec(
                deployment=DeploymentType.SQL_DB,
                tier=ServiceTier.GENERAL_PURPOSE,
                hardware=HardwareGeneration.GEN5,
                limits=limits(),
                price_per_hour=0.0,
            )

    def test_describe_matches_figure1_format(self):
        text = make_sku(2).describe()
        assert "DB GP 2 vCores" in text
        assert "$" in text and "IOPS" in text

    def test_vcores_property(self):
        assert make_sku(8).vcores == 8.0


class TestEnums:
    def test_deployment_short_names(self):
        assert DeploymentType.SQL_DB.short_name == "DB"
        assert DeploymentType.SQL_MI.short_name == "MI"

    def test_tier_short_names(self):
        assert ServiceTier.GENERAL_PURPOSE.short_name == "GP"
        assert ServiceTier.BUSINESS_CRITICAL.short_name == "BC"

    def test_gen5_memory_matches_figure1(self):
        # Figure 1: 2 vCores -> 10.4 GB max memory.
        assert 2 * HardwareGeneration.GEN5.memory_per_vcore_gb == pytest.approx(10.4)

    def test_premium_series_costs_more(self):
        assert HardwareGeneration.PREMIUM_SERIES.price_multiplier > 1.0
