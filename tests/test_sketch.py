"""Quantile sketches and streaming series stats: documented error bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.negotiability import (
    MaxAucSummarizer,
    MinMaxAucSummarizer,
    StlSummarizer,
    ThresholdingSummarizer,
)
from repro.ml.sketch import MergingQuantileSketch
from repro.telemetry import StreamingSeriesStats, TimeSeries


def rank_tolerance(sketch: MergingQuantileSketch) -> float:
    """The documented CDF rank-error bound of a sketch."""
    return 1.0 / (sketch.compression - 1)


class TestMergingQuantileSketch:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=3000),
        window=st.one_of(st.none(), st.integers(min_value=16, max_value=1200)),
        scale=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    )
    def test_cdf_within_documented_bound(self, seed, n, window, scale):
        rng = np.random.default_rng(seed)
        stream = rng.lognormal(0.0, 1.0, n) * scale
        sketch = MergingQuantileSketch(window=window)
        sketch.extend(stream)
        covered = stream[-sketch.n :]
        bound = rank_tolerance(sketch) + 1e-12
        for threshold in np.quantile(covered, [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]):
            exact = float(np.mean(covered <= threshold))
            assert abs(sketch.cdf(threshold) - exact) <= bound

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=3000),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_rank_error_within_bound(self, seed, n, q):
        rng = np.random.default_rng(seed)
        stream = rng.normal(50.0, 20.0, n)
        sketch = MergingQuantileSketch()
        sketch.extend(stream)
        value = sketch.quantile(q)
        rank_below = float(np.mean(stream < value))
        rank_at_or_below = float(np.mean(stream <= value))
        bound = rank_tolerance(sketch) + 1.0 / n + 1e-12
        # q must sit within the value's true rank interval, widened by
        # the sketch tolerance.
        assert rank_below - bound <= q <= rank_at_or_below + bound

    def test_window_coverage_bounds(self):
        sketch = MergingQuantileSketch(window=100, block_size=64)
        for index in range(1000):
            sketch.update(float(index))
            if index + 1 >= 100:
                assert 100 <= sketch.n <= 100 + 64 - 1
        # Coverage is the newest samples: nothing below the horizon.
        assert sketch.cdf(1000 - sketch.n - 1) <= rank_tolerance(sketch)

    def test_fraction_at_least_is_conservative(self):
        rng = np.random.default_rng(7)
        stream = rng.normal(0.0, 1.0, 2000)
        sketch = MergingQuantileSketch()
        sketch.extend(stream)
        for threshold in (-1.0, 0.0, 0.5, 2.0):
            exact = float(np.mean(stream >= threshold))
            estimate = sketch.fraction_at_least(threshold)
            assert estimate >= exact - 1e-12  # compression only raises it
            assert estimate <= exact + rank_tolerance(sketch) + 1e-12

    def test_rejects_non_finite_samples(self):
        sketch = MergingQuantileSketch()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                sketch.update(bad)
        assert sketch.n == 0  # nothing was absorbed

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            MergingQuantileSketch(window=0)
        with pytest.raises(ValueError, match="block_size"):
            MergingQuantileSketch(block_size=1)
        with pytest.raises(ValueError, match="compression"):
            MergingQuantileSketch(compression=1)
        sketch = MergingQuantileSketch()
        with pytest.raises(ValueError, match="no samples"):
            sketch.cdf(0.0)
        with pytest.raises(ValueError, match="no samples"):
            sketch.quantile(0.5)
        sketch.update(1.0)
        with pytest.raises(ValueError, match="quantile"):
            sketch.quantile(1.5)


class TestStreamingSeriesStats:
    def exact_window(self, stream: np.ndarray, window: int) -> np.ndarray:
        return stream[-window:]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=2500),
        window=st.integers(min_value=8, max_value=600),
    )
    def test_moments_and_extremes_match_window_exactly(self, seed, n, window):
        rng = np.random.default_rng(seed)
        stream = np.abs(rng.normal(10.0, 5.0, n))
        stats = StreamingSeriesStats(window=window)
        stats.extend(stream)
        exact = self.exact_window(stream, window)
        assert stats.n == len(exact)
        assert stats.max == exact.max()
        assert stats.min == exact.min()
        np.testing.assert_allclose(stats.mean, exact.mean(), rtol=1e-9)
        np.testing.assert_allclose(stats.std, exact.std(), rtol=0, atol=1e-7)

    def test_near_peak_fraction_within_sketch_bound(self):
        rng = np.random.default_rng(3)
        window = 500
        stream = np.abs(rng.normal(10.0, 5.0, 2000))
        stats = StreamingSeriesStats(window=window)
        summarizer = ThresholdingSummarizer()
        stats.extend(stream)
        exact_series = TimeSeries(values=self.exact_window(stream, window))
        exact = summarizer.near_peak_fraction(exact_series)
        streamed = summarizer.near_peak_fraction_streaming(stats)
        # Sketch rank error plus the one-block coverage overhang.
        assert abs(streamed - exact) <= 1.0 / 63 + 0.02

    def test_auc_summarizers_match_exactly(self):
        rng = np.random.default_rng(11)
        window = 400
        stream = np.abs(rng.normal(5.0, 3.0, 1500))
        stats = StreamingSeriesStats(window=window)
        stats.extend(stream)
        series = TimeSeries(values=self.exact_window(stream, window))
        for summarizer in (MinMaxAucSummarizer(), MaxAucSummarizer()):
            features, negotiable = summarizer.summarize_streaming(stats)
            exact_features, exact_negotiable = summarizer.summarize(series)
            np.testing.assert_allclose(features, exact_features, rtol=1e-9)
            assert negotiable == exact_negotiable

    def test_constant_series_edge_cases(self):
        stats = StreamingSeriesStats(window=64)
        stats.extend(np.full(32, 7.0))
        assert ThresholdingSummarizer().near_peak_fraction_streaming(stats) == 1.0
        assert MinMaxAucSummarizer().auc_streaming(stats) == 1.0
        zero_stats = StreamingSeriesStats(window=64)
        zero_stats.extend(np.zeros(16))
        assert MaxAucSummarizer().auc_streaming(zero_stats) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            StreamingSeriesStats(window=0)
        stats = StreamingSeriesStats(window=8)
        with pytest.raises(ValueError, match="non-finite"):
            stats.update(float("nan"))
        with pytest.raises(ValueError, match="no samples"):
            _ = stats.mean

    def test_unsupported_summarizer_raises(self):
        from repro.core.negotiability import NegotiabilitySummarizer

        # All six built-ins stream now (STL was the last holdout), so
        # the unsupported path needs a custom summarizer.
        class OpaqueSummarizer(NegotiabilitySummarizer):
            name = "opaque"

            def features(self, series):  # pragma: no cover - unused
                return np.zeros(1)

            def is_negotiable(self, series):  # pragma: no cover - unused
                return True

        assert StlSummarizer.supports_streaming
        assert not OpaqueSummarizer.supports_streaming
        stats = StreamingSeriesStats(window=16)
        stats.update(1.0)
        with pytest.raises(NotImplementedError, match="streaming"):
            OpaqueSummarizer().summarize_streaming(stats)

    def test_block_size_adapts_to_window(self):
        assert StreamingSeriesStats(window=1008)._sketch.block_size == 126
        assert StreamingSeriesStats(window=64)._sketch.block_size == 8
        assert StreamingSeriesStats(window=16)._sketch.block_size == 8
        assert StreamingSeriesStats(window=10_000)._sketch.block_size == 256
        assert StreamingSeriesStats(window=500, sketch_block_size=32)._sketch.block_size == 32

    def test_summarize_one_pass_matches_two_pass_for_all_summarizers(self):
        from repro.core.negotiability import ALL_SUMMARIZERS

        rng = np.random.default_rng(13)
        series = TimeSeries(values=np.abs(rng.normal(5.0, 3.0, 300)))
        for summarizer in ALL_SUMMARIZERS:
            features, negotiable = summarizer.summarize(series)
            np.testing.assert_array_equal(features, summarizer.features(series))
            assert negotiable == summarizer.is_negotiable(series)

    def test_supports_streaming_is_not_a_dataclass_field(self):
        """ClassVar regression: the flag must not enter init/eq/repr."""
        import dataclasses

        for summarizer_type in (
            ThresholdingSummarizer,
            MinMaxAucSummarizer,
            MaxAucSummarizer,
        ):
            field_names = {f.name for f in dataclasses.fields(summarizer_type)}
            assert "supports_streaming" not in field_names

    def test_max_auc_streaming_rejects_negatives_like_batch(self):
        """Parity regression: both profile paths fail on negative samples."""
        values = np.array([-1.0, 2.0, 5.0])
        stats = StreamingSeriesStats(window=8)
        stats.extend(values)
        summarizer = MaxAucSummarizer()
        with pytest.raises(ValueError):
            summarizer.auc(TimeSeries(values=values))
        with pytest.raises(ValueError, match="non-negative"):
            summarizer.auc_streaming(stats)
        # All-negative windows map to zeros in both paths (no error).
        all_negative = np.array([-3.0, -1.0])
        negative_stats = StreamingSeriesStats(window=8)
        negative_stats.extend(all_negative)
        assert summarizer.auc(TimeSeries(values=all_negative)) == 1.0
        assert summarizer.auc_streaming(negative_stats) == 1.0
