"""Unit tests for price-performance curves."""

import numpy as np
import pytest

from repro.core import CurveShape, PricePerformanceCurve

from .conftest import make_sku


def curve_from(probs, vcores=(2, 4, 8, 16)):
    skus = [make_sku(v) for v in vcores]
    return PricePerformanceCurve.from_probabilities(skus, np.asarray(probs, dtype=float))


class TestConstruction:
    def test_sorted_by_price(self):
        skus = [make_sku(8), make_sku(2), make_sku(4)]
        curve = PricePerformanceCurve.from_probabilities(skus, np.array([0.0, 0.5, 0.2]))
        assert [p.sku.vcores for p in curve] == [2, 4, 8]

    def test_monotone_enforcement(self):
        """A pricier SKU never scores below a cheaper one (paper Section 3.2)."""
        curve = curve_from([0.2, 0.5, 0.1, 0.0])
        scores = curve.scores()
        assert np.all(np.diff(scores) >= 0)
        # The dominated point is lifted to the cheaper point's score.
        assert curve.points[1].score == pytest.approx(0.8)
        # Raw probabilities preserved for inspection.
        assert curve.points[1].throttling_probability == pytest.approx(0.5)

    def test_probability_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="probabilities"):
            PricePerformanceCurve.from_probabilities([make_sku(2)], np.array([0.1, 0.2]))

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="0, 1"):
            curve_from([0.0, 1.5, 0.0, 0.0])

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PricePerformanceCurve(points=())

    def test_unsorted_points_rejected(self):
        good = curve_from([0.5, 0.0, 0.0, 0.0])
        with pytest.raises(ValueError, match="sorted"):
            PricePerformanceCurve(points=tuple(reversed(good.points)))


class TestShapes:
    def test_flat(self):
        assert curve_from([0.0, 0.0, 0.0, 0.0]).shape() is CurveShape.FLAT

    def test_simple(self):
        assert curve_from([1.0, 1.0, 0.0, 0.0]).shape() is CurveShape.SIMPLE

    def test_complex(self):
        assert curve_from([0.6, 0.3, 0.1, 0.0]).shape() is CurveShape.COMPLEX

    def test_all_throttled_is_complex_not_simple(self):
        # A bifurcation needs a 100 % side to be a "clear choice".
        assert curve_from([1.0, 1.0, 1.0, 1.0]).shape() is not CurveShape.FLAT


class TestSelection:
    def test_cheapest_full_performance(self):
        curve = curve_from([0.6, 0.2, 0.0, 0.0])
        point = curve.cheapest_full_performance()
        assert point.sku.vcores == 8

    def test_cheapest_full_performance_none(self):
        assert curve_from([0.5, 0.4, 0.3, 0.2]).cheapest_full_performance() is None

    def test_cheapest_at_least(self):
        curve = curve_from([0.6, 0.2, 0.1, 0.0])
        assert curve.cheapest_at_least(0.75).sku.vcores == 4
        assert curve.cheapest_at_least(0.95).sku.vcores == 16

    def test_position_and_lookup(self):
        curve = curve_from([0.0, 0.0, 0.0, 0.0])
        name = curve.points[2].sku.name
        assert curve.position_of(name) == 2
        assert curve.point_for(name).sku.name == name

    def test_missing_sku_raises(self):
        curve = curve_from([0.0, 0.0, 0.0, 0.0])
        with pytest.raises(KeyError):
            curve.position_of("nope")
        with pytest.raises(KeyError):
            curve.point_for("nope")

    def test_render_ascii_smoke(self):
        text = curve_from([0.6, 0.2, 0.1, 0.0]).render_ascii(width=30, height=8)
        assert "o" in text
        assert "$" in text

    def test_scores_and_prices_aligned(self):
        curve = curve_from([0.5, 0.0, 0.0, 0.0])
        assert curve.scores().shape == curve.prices().shape == (4,)
