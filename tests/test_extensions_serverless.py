"""Unit tests for the serverless tier extension."""

import numpy as np
import pytest

from repro.extensions import (
    ComputeTierAdvice,
    ServerlessAdvisor,
    ServerlessOffer,
    default_serverless_offers,
    evaluate_serverless,
)
from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries

from .conftest import full_trace


def trace_with(cpu, storage=100.0, interval=10.0):
    cpu = np.asarray(cpu, dtype=float)
    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(cpu, interval_minutes=interval),
            PerfDimension.STORAGE: TimeSeries(
                np.full(cpu.size, storage), interval_minutes=interval
            ),
        },
        entity_id="sl",
    )


class TestServerlessOffer:
    def test_default_ladder(self):
        offers = default_serverless_offers()
        assert len(offers) == 10
        assert all(o.min_vcores <= o.max_vcores for o in offers)

    def test_capacities_scale_with_max_vcores(self):
        offer = ServerlessOffer(max_vcores=8.0, min_vcores=1.0)
        assert offer.max_memory_gb == pytest.approx(24.0)
        assert offer.max_data_iops == pytest.approx(8 * 320.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerlessOffer(max_vcores=2.0, min_vcores=4.0)
        with pytest.raises(ValueError):
            ServerlessOffer(max_vcores=0.0, min_vcores=0.0)

    def test_auto_name(self):
        assert ServerlessOffer(max_vcores=4.0, min_vcores=0.5).name == "DB_SERVERLESS_4v"


class TestEvaluate:
    def test_idle_workload_pauses_and_costs_little(self):
        # 1 busy hour then a fully idle day.
        cpu = np.concatenate([np.full(6, 2.0), np.zeros(144)])
        offer = ServerlessOffer(max_vcores=4.0, min_vcores=0.5)
        evaluation = evaluate_serverless(trace_with(cpu), offer)
        assert evaluation.paused_fraction > 0.8
        busy_always = evaluate_serverless(
            trace_with(np.full(150, 2.0)), offer
        )
        assert evaluation.monthly_cost < busy_always.monthly_cost / 3

    def test_no_pause_before_delay(self):
        # Idle gaps shorter than the 60-minute delay never pause.
        cpu = np.tile(np.concatenate([np.full(4, 2.0), np.zeros(4)]), 20)
        offer = ServerlessOffer(max_vcores=4.0, min_vcores=0.5)
        evaluation = evaluate_serverless(trace_with(cpu), offer)
        assert evaluation.paused_fraction == 0.0

    def test_billing_floor_applies(self):
        cpu = np.full(100, 0.1)  # tiny but non-idle demand
        offer = ServerlessOffer(max_vcores=8.0, min_vcores=2.0)
        evaluation = evaluate_serverless(trace_with(cpu), offer)
        assert evaluation.mean_billed_vcores == pytest.approx(2.0)

    def test_ceiling_throttles(self):
        cpu = np.full(100, 10.0)
        offer = ServerlessOffer(max_vcores=4.0, min_vcores=0.5)
        evaluation = evaluate_serverless(trace_with(cpu), offer)
        assert evaluation.throttling_probability == pytest.approx(1.0)

    def test_resume_stall_counts_as_throttling(self):
        cpu = np.concatenate([np.zeros(20), np.full(10, 2.0)])
        offer = ServerlessOffer(
            max_vcores=8.0, min_vcores=0.5, auto_pause_delay_minutes=30.0
        )
        evaluation = evaluate_serverless(trace_with(cpu), offer)
        assert evaluation.throttling_probability > 0.0

    def test_memory_drives_billing(self):
        trace = PerformanceTrace(
            series={
                PerfDimension.CPU: TimeSeries(np.full(50, 0.5)),
                PerfDimension.MEMORY: TimeSeries(np.full(50, 18.0)),  # 6 vCores worth
            },
            entity_id="mem",
        )
        offer = ServerlessOffer(max_vcores=8.0, min_vcores=0.5)
        evaluation = evaluate_serverless(trace, offer)
        assert evaluation.mean_billed_vcores == pytest.approx(6.0, rel=0.01)

    def test_cost_scales_with_usage(self):
        offer = ServerlessOffer(max_vcores=8.0, min_vcores=0.5)
        light = evaluate_serverless(trace_with(np.full(100, 1.0)), offer)
        heavy = evaluate_serverless(trace_with(np.full(100, 6.0)), offer)
        assert heavy.monthly_cost > 4 * light.monthly_cost


class TestAdvisor:
    def test_idle_spiky_workload_goes_serverless(self, default_catalog):
        # Busy one hour per day, idle otherwise.
        day = np.concatenate([np.full(6, 3.0), np.zeros(138)])
        cpu = np.tile(day, 7)
        advice = ServerlessAdvisor(catalog=default_catalog).advise(trace_with(cpu))
        assert advice.recommended_tier == "serverless"
        assert advice.serverless is not None
        assert advice.monthly_saving > 0

    def test_steady_workload_stays_provisioned(self, default_catalog):
        trace = full_trace(cpu_level=3.0, n=1008)
        advice = ServerlessAdvisor(catalog=default_catalog).advise(trace)
        assert advice.recommended_tier == "provisioned"

    def test_advice_always_has_both_sides(self, default_catalog):
        trace = full_trace(cpu_level=1.0, n=288)
        advice = ServerlessAdvisor(catalog=default_catalog).advise(trace)
        assert isinstance(advice, ComputeTierAdvice)
        assert advice.provisioned_sku is not None
        assert advice.serverless is not None
        assert 0.0 <= advice.busy_fraction <= 1.0
