"""Unit tests for the durable fleet store (:mod:`repro.store`).

Covers the persistence protocol surface on its own terms -- schema
round-trips, versioned migrations, epoch guards, the append-only event
log with its SQL-window-function rolling counts, checkpoint atomicity
and corruption handling -- without running a watch.  The watch-level
crash/resume contract lives in ``test_checkpoint_resume.py``.
"""

from __future__ import annotations

import pickle
import sqlite3

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import DopplerEngine
from repro.store import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    CustomerStateRecord,
    FleetStore,
    FleetStoreError,
    RetentionPolicy,
    StaleStateError,
    StoreCorruptionError,
    StoreSchemaError,
    register_migration,
)
from repro.store.fleetstore import _MIGRATIONS
from repro.streaming import LiveRecommender
from repro.telemetry import PerfDimension

from .test_fleet_backends import live_samples


def make_state(small_catalog, entity_id="cust-0", n_samples=12, seed=0):
    """A real, refreshed live-assessment snapshot for store round-trips."""
    engine = DopplerEngine(catalog=small_catalog)
    live = LiveRecommender(
        engine,
        DeploymentType.SQL_DB,
        window=16,
        min_refresh_samples=8,
        entity_id=entity_id,
    )
    rng = np.random.default_rng(seed)
    for sample in live_samples(n_samples, rng):
        live.observe(sample)
    return live.snapshot_state()


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "fleet.db")


# ----------------------------------------------------------------------
# Open, pragmas, lifecycle
# ----------------------------------------------------------------------
class TestOpen:
    def test_file_store_runs_in_wal_mode(self, store_path):
        with FleetStore(store_path) as store:
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"
            assert store.path == store_path
            assert store.schema_version == SCHEMA_VERSION

    def test_memory_store_works(self):
        with FleetStore() as store:
            assert store.customer_counts() == (0, 0)

    def test_reopen_preserves_contents(self, store_path, small_catalog):
        state = make_state(small_catalog)
        with FleetStore(store_path) as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
        with FleetStore(store_path) as store:
            assert store.customer_counts() == (1, 0)

    def test_garbage_file_is_a_corruption_error(self, store_path):
        with open(store_path, "wb") as fh:
            fh.write(b"this is definitely not a sqlite database" * 40)
        with pytest.raises(StoreCorruptionError, match="not a readable fleet store"):
            FleetStore(store_path)

    def test_foreign_sqlite_db_is_a_corruption_error(self, store_path):
        conn = sqlite3.connect(store_path)
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="not a fleet store"):
            FleetStore(store_path)

    def test_null_state_blob_is_a_corruption_error(self, store_path, small_catalog):
        state = make_state(small_catalog)
        with FleetStore(store_path) as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            store._conn.execute("UPDATE customers SET state = NULL")
            store._conn.commit()
            with pytest.raises(StoreCorruptionError, match="no state blob"):
                store.load_customer_state("cust-0")


# ----------------------------------------------------------------------
# Schema versioning and migrations
# ----------------------------------------------------------------------
class TestSchemaVersioning:
    def _set_version(self, path: str, version: int) -> None:
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'", (str(version),)
        )
        conn.commit()
        conn.close()

    def test_newer_schema_is_rejected_with_upgrade_hint(self, store_path):
        FleetStore(store_path).close()
        self._set_version(store_path, SCHEMA_VERSION + 3)
        with pytest.raises(StoreSchemaError, match="upgrade this build"):
            FleetStore(store_path)

    def test_missing_migration_is_a_schema_error(self, store_path):
        FleetStore(store_path).close()
        self._set_version(store_path, SCHEMA_VERSION - 1)
        # The newest shipped migration occupies the slot; hide it to
        # exercise the missing-migration error path.
        shipped = _MIGRATIONS.pop(SCHEMA_VERSION - 1)
        try:
            with pytest.raises(StoreSchemaError, match="no migration registered"):
                FleetStore(store_path)
        finally:
            _MIGRATIONS[SCHEMA_VERSION - 1] = shipped

    def test_registered_migration_upgrades_on_open(self, store_path, small_catalog):
        state = make_state(small_catalog)
        with FleetStore(store_path) as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
        self._set_version(store_path, SCHEMA_VERSION - 1)
        ran = []

        def migrate(conn: sqlite3.Connection) -> None:
            ran.append(conn.execute("SELECT COUNT(*) FROM customers").fetchone()[0])

        # Swap the newest shipped migration for an observable one.
        shipped = _MIGRATIONS.pop(SCHEMA_VERSION - 1)
        register_migration(SCHEMA_VERSION - 1, migrate)
        try:
            with FleetStore(store_path) as store:
                assert store.schema_version == SCHEMA_VERSION
                assert store.customer_counts() == (1, 0)
        finally:
            _MIGRATIONS[SCHEMA_VERSION - 1] = shipped
        assert ran == [1]
        # The bumped version is durable: reopening does not migrate again.
        with FleetStore(store_path) as store:
            assert store.schema_version == SCHEMA_VERSION

    def test_duplicate_migration_registration_rejected(self):
        def migrate(conn: sqlite3.Connection) -> None:  # pragma: no cover
            pass

        # The newest shipped migration already holds this slot.
        with pytest.raises(ValueError, match="already registered"):
            register_migration(SCHEMA_VERSION - 1, migrate)


# ----------------------------------------------------------------------
# Customer state round-trips and the epoch guard
# ----------------------------------------------------------------------
class TestCustomerState:
    def test_state_round_trip_is_byte_identical(self, small_catalog):
        import dataclasses

        state = make_state(small_catalog)
        with FleetStore() as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            loaded = store.load_customer_state("cust-0")
        assert loaded is not None and not loaded.quarantined
        # Field-wise pickle equality: whole-object bytes can differ by
        # memoized sharing alone, which restore does not observe.
        for field in dataclasses.fields(state):
            assert pickle.dumps(getattr(loaded.state, field.name)) == pickle.dumps(
                getattr(state, field.name)
            ), field.name

    def test_quarantined_record_round_trips_without_state(self):
        with FleetStore() as store:
            store.save_customer_states(
                [CustomerStateRecord("bad", None, quarantined=True)]
            )
            loaded = store.load_customer_state("bad")
            assert loaded is not None and loaded.quarantined and loaded.state is None
            assert store.customer_counts() == (1, 1)

    def test_iteration_is_ordered_by_customer_id(self, small_catalog):
        with FleetStore() as store:
            store.save_customer_states(
                [
                    CustomerStateRecord("cust-2", make_state(small_catalog, "cust-2")),
                    CustomerStateRecord("cust-0", make_state(small_catalog, "cust-0")),
                    CustomerStateRecord("cust-1", None, quarantined=True),
                ]
            )
            assert [r.customer_id for r in store.iter_customer_states()] == [
                "cust-0",
                "cust-1",
                "cust-2",
            ]

    def test_stale_epoch_is_rejected(self, small_catalog):
        import dataclasses

        state = make_state(small_catalog)
        newer = dataclasses.replace(state, epoch=state.epoch + 2)
        with FleetStore() as store:
            store.save_customer_states([CustomerStateRecord("cust-0", newer)])
            with pytest.raises(StaleStateError, match="refusing to store epoch"):
                store.save_customer_states([CustomerStateRecord("cust-0", state)])
            # Equal epoch re-checkpoints fine (unchanged customers).
            store.save_customer_states([CustomerStateRecord("cust-0", newer)])

    def test_missing_customer_loads_as_none(self):
        with FleetStore() as store:
            assert store.load_customer_state("nobody") is None

    def test_delete_removes_state_and_recommendations(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            assert store.latest_recommendation("cust-0") is not None
            store.delete_customer_states(["cust-0"])
            assert store.customer_counts() == (0, 0)
            # FK cascade clears the recommendation history too.
            assert store.latest_recommendation("cust-0") is None

    def test_record_validation(self, small_catalog):
        state = make_state(small_catalog)
        with pytest.raises(ValueError):
            CustomerStateRecord("cust-0", None)  # live record needs state
        with pytest.raises(ValueError):
            CustomerStateRecord("cust-0", state, quarantined=True)


# ----------------------------------------------------------------------
# Recommendation history
# ----------------------------------------------------------------------
class TestRecommendations:
    def test_resaving_same_refresh_does_not_duplicate(self, small_catalog):
        state = make_state(small_catalog)
        assert state.recommendation is not None
        with FleetStore() as store:
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            history = store.recommendation_history("cust-0")
        assert len(history) == 1
        assert history[0].sku_name == state.recommendation.sku.name
        assert history[0].n_refreshes == state.n_refreshes

    def test_latest_recommendation_orders_by_refresh_count(self, small_catalog):
        import dataclasses

        early = make_state(small_catalog, n_samples=10)
        # A later refresh of the same assessment (drift may or may not
        # fire on synthetic feeds, so bump the counter directly).
        late = dataclasses.replace(early, n_refreshes=early.n_refreshes + 1)
        assert late.n_refreshes > early.n_refreshes
        with FleetStore() as store:
            store.save_customer_states([CustomerStateRecord("cust-0", early)])
            store.save_customer_states([CustomerStateRecord("cust-0", late)])
            latest = store.latest_recommendation("cust-0")
            assert latest is not None
            assert latest.n_refreshes == late.n_refreshes
            assert len(store.recommendation_history("cust-0")) == 2


# ----------------------------------------------------------------------
# Event log and rolling analytics
# ----------------------------------------------------------------------
class TestEvents:
    def test_unknown_event_kind_rejected(self):
        with FleetStore() as store:
            with pytest.raises(ValueError, match="unknown event kind"):
                store.append_event("reboot", tick_id=0)

    def test_events_filter_and_counts(self):
        with FleetStore() as store:
            store.append_event("migration", tick_id=1, customer_id="a", source_shard=0, target_shard=1)
            store.append_event("quarantine", tick_id=2, customer_id="b", source_shard=1)
            store.append_event("migration", tick_id=3, customer_id="c", source_shard=1, target_shard=0)
            assert [e.customer_id for e in store.events("migration")] == ["a", "c"]
            assert store.event_counts() == {"migration": 2, "quarantine": 1}
            everything = store.events()
            assert [e.kind for e in everything] == ["migration", "quarantine", "migration"]

    def test_event_detail_round_trips_as_json(self):
        import json

        with FleetStore() as store:
            store.append_event("rebalance", tick_id=5, detail={"n_moves": 3, "resized_to": 4})
            (event,) = store.events("rebalance")
            assert json.loads(event.detail) == {"n_moves": 3, "resized_to": 4}

    def test_rolling_counts_match_python_reference(self):
        rng = np.random.default_rng(33)
        per_tick: dict[int, int] = {}
        with FleetStore() as store:
            for tick in sorted(rng.choice(60, size=25, replace=False).tolist()):
                count = int(rng.integers(1, 5))
                per_tick[tick] = count
                for _ in range(count):
                    store.append_event("migration", tick_id=tick, customer_id="x")
            window = 4
            rows = store.rolling_event_counts("migration", window_ticks=window)
        ticks = sorted(per_tick)
        assert [(t, per_tick[t]) for t in ticks] == [(t, n) for t, n, _ in rows]
        for index, (_, _, rolling) in enumerate(rows):
            expected = sum(per_tick[t] for t in ticks[max(0, index - window + 1) : index + 1])
            assert rolling == expected

    def test_rolling_counts_validate_window(self):
        with FleetStore() as store:
            with pytest.raises(ValueError, match="window_ticks"):
                store.rolling_event_counts("migration", window_ticks=0)

    def test_event_kinds_constant_matches_schema_check(self):
        with FleetStore() as store:
            for kind in EVENT_KINDS:
                store.append_event(kind, tick_id=0)
            assert sum(store.event_counts().values()) == len(EVENT_KINDS)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpoints:
    def test_checkpoint_round_trip(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            written = store.checkpoint(
                tick_id=7,
                n_consumed=420,
                n_emitted=55,
                n_shards=3,
                overrides={"hot-cust": 2},
                records=[
                    CustomerStateRecord("cust-0", state),
                    CustomerStateRecord("bad", None, quarantined=True),
                ],
            )
            latest = store.latest_checkpoint()
        assert latest == written
        assert latest.overrides == {"hot-cust": 2}
        assert latest.n_customers == 2

    def test_checkpoint_writes_states_and_event_atomically(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            store.checkpoint(
                tick_id=1,
                n_consumed=10,
                n_emitted=2,
                n_shards=1,
                overrides={},
                records=[CustomerStateRecord("cust-0", state)],
            )
            assert store.customer_counts() == (1, 0)
            assert store.event_counts().get("checkpoint") == 1
            assert store.checkpoint_count() == 1

    def test_require_checkpoint_on_empty_store_is_clear(self):
        with FleetStore() as store:
            with pytest.raises(FleetStoreError, match="no checkpoint to resume from"):
                store.require_checkpoint()

    def test_latest_checkpoint_wins(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            for tick in (1, 2, 3):
                store.checkpoint(
                    tick_id=tick,
                    n_consumed=tick * 10,
                    n_emitted=tick,
                    n_shards=1,
                    overrides={},
                    records=[CustomerStateRecord("cust-0", state)],
                )
            assert store.require_checkpoint().tick_id == 3

    def test_corrupt_overrides_surface_as_corruption(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            store.checkpoint(
                tick_id=1,
                n_consumed=1,
                n_emitted=1,
                n_shards=1,
                overrides={},
                records=[CustomerStateRecord("cust-0", state)],
            )
            store._conn.execute("UPDATE checkpoints SET overrides = 'not json'")
            store._conn.commit()
            with pytest.raises(StoreCorruptionError, match="unreadable overrides"):
                store.latest_checkpoint()

    def test_checkpoint_records_state_bytes(self, small_catalog):
        states = [make_state(small_catalog, f"cust-{i}", seed=i) for i in range(3)]
        with FleetStore() as store:
            full = store.checkpoint(
                tick_id=1,
                n_consumed=30,
                n_emitted=3,
                n_shards=1,
                overrides={},
                records=[
                    CustomerStateRecord(f"cust-{i}", state)
                    for i, state in enumerate(states)
                ],
            )
            assert full.n_state_bytes > 0
            partial = store.checkpoint(
                tick_id=2,
                n_consumed=40,
                n_emitted=4,
                n_shards=1,
                overrides={},
                records=[CustomerStateRecord("cust-0", states[0])],
            )
            # Fewer rows written -> fewer bytes, surfaced on the
            # record, the latest_checkpoint read-back, and the event.
            assert 0 < partial.n_state_bytes < full.n_state_bytes
            assert store.latest_checkpoint().n_state_bytes == partial.n_state_bytes
            import json

            details = [
                json.loads(e.detail) for e in store.events("checkpoint")
            ]
            assert [d["n_state_bytes"] for d in details] == [
                full.n_state_bytes,
                partial.n_state_bytes,
            ]

    def test_v2_store_migrates_and_backfills_zero_bytes(self, store_path):
        FleetStore(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute("ALTER TABLE checkpoints DROP COLUMN n_state_bytes")
        conn.execute("UPDATE meta SET value = '2' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with FleetStore(store_path) as store:
            assert store.schema_version == SCHEMA_VERSION
            record = store.checkpoint(
                tick_id=1, n_consumed=0, n_emitted=0, n_shards=1, overrides={}, records=[]
            )
            assert record.n_state_bytes == 0
            assert store.latest_checkpoint() == record


# ----------------------------------------------------------------------
# Retention policies
# ----------------------------------------------------------------------
class TestRetention:
    def checkpoint_at(self, store, tick):
        return store.checkpoint(
            tick_id=tick, n_consumed=0, n_emitted=0, n_shards=1, overrides={}, records=[]
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_count"):
            RetentionPolicy(max_count=0)
        with pytest.raises(ValueError, match="max_age_ticks"):
            RetentionPolicy(max_age_ticks=-1)
        assert RetentionPolicy().is_noop
        assert not RetentionPolicy(max_count=5).is_noop
        with pytest.raises(ValueError, match="retain_events must be a RetentionPolicy"):
            FleetStore(retain_events=42)
        with pytest.raises(ValueError, match="retain_recommendations"):
            FleetStore(retain_recommendations="forever")

    def test_events_pruned_by_count_at_checkpoint_only(self):
        with FleetStore(retain_events=RetentionPolicy(max_count=4)) as store:
            for tick in range(10):
                store.append_event("eviction", tick_id=tick, customer_id="c")
            # Appending never prunes; only a checkpoint does.
            assert len(store.events("eviction")) == 10
            self.checkpoint_at(store, 10)
            kept = store.events()
            assert len(kept) == 4
            # The newest events survive -- including the checkpoint's own.
            assert kept[-1].kind == "checkpoint"
            assert [e.tick_id for e in kept[:-1]] == [7, 8, 9]

    def test_events_pruned_by_age(self):
        with FleetStore(retain_events=RetentionPolicy(max_age_ticks=5)) as store:
            for tick in (1, 4, 8, 12):
                store.append_event("migration", tick_id=tick, customer_id="c")
            self.checkpoint_at(store, 14)
            # Ticks below 14 - 5 = 9 are dropped.
            assert [e.tick_id for e in store.events("migration")] == [12]

    def test_recommendation_history_bounded_per_customer(self, small_catalog):
        import dataclasses

        base = make_state(small_catalog)
        refreshes = [
            dataclasses.replace(base, n_refreshes=base.n_refreshes + bump)
            for bump in range(4)
        ]
        with FleetStore(
            retain_recommendations=RetentionPolicy(max_count=2)
        ) as store:
            for tick, state in enumerate(refreshes):
                store.save_customer_states(
                    [CustomerStateRecord("cust-0", state)], tick_id=tick
                )
            assert len(store.recommendation_history("cust-0")) == 4
            self.checkpoint_at(store, 10)
            history = store.recommendation_history("cust-0")
            # The two newest refreshes survive, newest still queryable.
            assert [h.n_refreshes for h in history] == [
                refreshes[-2].n_refreshes,
                refreshes[-1].n_refreshes,
            ]
            latest = store.latest_recommendation("cust-0")
            assert latest is not None
            assert latest.n_refreshes == refreshes[-1].n_refreshes

    def test_recommendations_pruned_by_age(self, small_catalog):
        import dataclasses

        base = make_state(small_catalog)
        with FleetStore(
            retain_recommendations=RetentionPolicy(max_age_ticks=3)
        ) as store:
            for tick, bump in ((1, 0), (8, 1)):
                state = dataclasses.replace(base, n_refreshes=base.n_refreshes + bump)
                store.save_customer_states(
                    [CustomerStateRecord("cust-0", state)], tick_id=tick
                )
            self.checkpoint_at(store, 10)
            history = store.recommendation_history("cust-0")
            assert [h.tick_id for h in history] == [8]

    def test_no_policy_keeps_everything(self, small_catalog):
        state = make_state(small_catalog)
        with FleetStore() as store:
            for tick in range(6):
                store.append_event("eviction", tick_id=tick, customer_id="c")
            store.save_customer_states([CustomerStateRecord("cust-0", state)])
            self.checkpoint_at(store, 6)
            assert len(store.events("eviction")) == 6
            assert len(store.recommendation_history("cust-0")) == 1


# ----------------------------------------------------------------------
# Cross-thread access (the serving tier's usage pattern)
# ----------------------------------------------------------------------
class TestThreading:
    def test_concurrent_writers_from_threads(self, small_catalog):
        import concurrent.futures

        state = make_state(small_catalog)
        with FleetStore() as store:

            def write(index: int) -> None:
                store.save_customer_states(
                    [CustomerStateRecord(f"cust-{index}", state)], tick_id=index
                )
                store.append_event("eviction", tick_id=index, customer_id=f"cust-{index}")

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(write, range(32)))
            assert store.customer_counts() == (32, 0)
            assert store.event_counts()["eviction"] == 32


# ----------------------------------------------------------------------
# Framed state encoding (the arena wire format, durable flavor)
# ----------------------------------------------------------------------
class TestStateFrameEncoding:
    def test_encode_state_is_framed_with_magic(self, small_catalog):
        from repro.store.persistence import STATE_FRAME_MAGIC, encode_state

        blob = encode_state(make_state(small_catalog))
        assert blob[:4] == STATE_FRAME_MAGIC

    def test_framed_round_trip_is_field_identical(self, small_catalog):
        import dataclasses

        from repro.store.persistence import decode_state, encode_state

        state = make_state(small_catalog)
        decoded = decode_state(encode_state(state), customer_id="cust-0")
        for field in dataclasses.fields(state):
            assert pickle.dumps(getattr(decoded, field.name)) == pickle.dumps(
                getattr(state, field.name)
            ), field.name

    def test_legacy_plain_pickle_blob_still_decodes(self, small_catalog):
        import dataclasses

        from repro.store.persistence import decode_state

        state = make_state(small_catalog)
        decoded = decode_state(pickle.dumps(state), customer_id="cust-0")
        for field in dataclasses.fields(state):
            assert pickle.dumps(getattr(decoded, field.name)) == pickle.dumps(
                getattr(state, field.name)
            ), field.name

    def test_torn_frame_is_a_corruption_error(self, small_catalog):
        from repro.store.persistence import encode_state

        blob = encode_state(make_state(small_catalog))
        with pytest.raises(StoreCorruptionError, match="cust-9"):
            from repro.store.persistence import decode_state

            decode_state(blob[: len(blob) // 2], customer_id="cust-9")


# ----------------------------------------------------------------------
# v3 -> v4: the shard_probation event kind
# ----------------------------------------------------------------------
class TestProbationEventMigration:
    def test_v3_store_upgrades_and_accepts_shard_probation(self, store_path):
        FleetStore(store_path).close()
        # Downgrade on disk: rebuild the events table with the v3 CHECK
        # (no shard_probation) and stamp the old schema version.
        conn = sqlite3.connect(store_path)
        conn.executescript(
            """
            DROP INDEX idx_events_kind_tick;
            DROP TABLE events;
            CREATE TABLE events (
                event_id     INTEGER PRIMARY KEY AUTOINCREMENT,
                tick_id      INTEGER NOT NULL,
                kind         TEXT NOT NULL CHECK (kind IN
                    ('rebalance', 'migration', 'quarantine', 'resize', 'eviction',
                     'checkpoint', 'worker_restart', 'shard_quarantine')),
                customer_id  TEXT,
                source_shard INTEGER,
                target_shard INTEGER,
                detail       TEXT
            );
            CREATE INDEX idx_events_kind_tick ON events (kind, tick_id);
            """
        )
        conn.execute(
            "INSERT INTO events (tick_id, kind, source_shard) VALUES (3, 'shard_quarantine', 1)"
        )
        conn.execute(
            "UPDATE meta SET value = '3' WHERE key = 'schema_version'"
        )
        conn.commit()
        # Sanity: the v3 CHECK really rejects the new kind.
        with pytest.raises(sqlite3.IntegrityError):
            conn.execute(
                "INSERT INTO events (tick_id, kind) VALUES (4, 'shard_probation')"
            )
        conn.close()
        with FleetStore(store_path) as store:
            assert store.schema_version == SCHEMA_VERSION
            # History survived the rebuild verbatim...
            (survivor,) = store.events()
            assert survivor.kind == "shard_quarantine" and survivor.tick_id == 3
            # ...and the widened CHECK admits the probation kind.
            store.append_event("shard_probation", tick_id=5, source_shard=1)
            assert store.event_counts()["shard_probation"] == 1
