"""Streaming profiling in the live loop + MI capacity-override parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import DeploymentType, ServiceTier, SkuCatalog
from repro.core import (
    CustomerProfiler,
    DopplerEngine,
    EmpiricalThrottlingEstimator,
    IncrementalThrottlingEstimator,
)
from repro.core.negotiability import StlSummarizer
from repro.streaming import LiveRecommender
from repro.telemetry import PerfDimension, StreamingSeriesStats
from repro.telemetry.counters import MI_DIMENSIONS, PROFILING_DB_DIMENSIONS

from .conftest import make_sku, make_trace


def db_sample(rng, index: int, scale: float = 1.0):
    return {
        PerfDimension.CPU: float(scale * abs(rng.normal(2.0, 0.8))),
        PerfDimension.MEMORY: float(scale * abs(rng.normal(8.0, 2.0))),
        PerfDimension.IOPS: float(scale * abs(rng.normal(300.0, 120.0))),
        PerfDimension.IO_LATENCY: float(abs(rng.normal(6.0, 1.0)) + 0.3),
        PerfDimension.LOG_RATE: float(scale * abs(rng.normal(2.5, 0.8))),
        PerfDimension.STORAGE: 120.0 + index * 0.1,
    }


class TestProfileStreaming:
    def test_profile_streaming_tracks_exact_profile(self):
        """Streaming profiles agree with the exact re-scan on a window."""
        rng = np.random.default_rng(5)
        window = 256
        profiler = CustomerProfiler(dimensions=PROFILING_DB_DIMENSIONS)
        stats = {
            dim: StreamingSeriesStats(window=window)
            for dim in PROFILING_DB_DIMENSIONS
        }
        columns = {dim: [] for dim in PROFILING_DB_DIMENSIONS}
        for index in range(window):
            sample = db_sample(rng, index)
            for dim in PROFILING_DB_DIMENSIONS:
                stats[dim].update(sample[dim])
                columns[dim].append(sample[dim])
        streaming_profile = profiler.profile_streaming(stats, entity_id="s")
        trace = make_trace(
            np.array(columns[PerfDimension.CPU]),
            memory_gb=np.array(columns[PerfDimension.MEMORY]),
            data_iops=np.array(columns[PerfDimension.IOPS]),
            log_rate_mbps=np.array(columns[PerfDimension.LOG_RATE]),
            entity_id="s",
        )
        exact_profile = profiler.profile(trace)
        assert streaming_profile.group_key == exact_profile.group_key
        np.testing.assert_allclose(
            streaming_profile.features, exact_profile.features, atol=1.0 / 63 + 1e-9
        )

    def test_profile_streaming_missing_dimension_raises(self):
        profiler = CustomerProfiler(dimensions=PROFILING_DB_DIMENSIONS)
        stats = {PerfDimension.CPU: StreamingSeriesStats(window=16)}
        stats[PerfDimension.CPU].update(1.0)
        with pytest.raises(KeyError, match="MEMORY"):
            profiler.profile_streaming(stats)


class TestLiveRecommenderStreamingProfile:
    @pytest.fixture()
    def engine(self, small_catalog):
        return DopplerEngine(catalog=small_catalog)

    def test_streaming_mode_produces_recommendations(self, engine):
        rng = np.random.default_rng(9)
        live = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=128,
            min_refresh_samples=12,
            profile_mode="streaming",
        )
        update = None
        for index in range(64):
            update = live.observe(db_sample(rng, index))
        assert update.has_recommendation
        assert live.n_refreshes >= 1

    def test_streaming_mode_matches_exact_mode_on_stable_feed(self, engine):
        """On a well-separated workload both modes pick the same SKU."""
        results = {}
        for mode in ("exact", "streaming"):
            rng = np.random.default_rng(21)
            live = LiveRecommender(
                engine,
                DeploymentType.SQL_DB,
                window=128,
                min_refresh_samples=12,
                profile_mode=mode,
            )
            for index in range(96):
                update = live.observe(db_sample(rng, index))
            results[mode] = (
                update.recommendation.sku.name,
                update.recommendation.profile.group_key,
            )
        assert results["exact"] == results["streaming"]

    def test_unsupported_summarizer_rejected_up_front(self, small_catalog):
        class OpaqueSummarizer(StlSummarizer):
            name = "opaque"
            supports_streaming = False

        engine = DopplerEngine(catalog=small_catalog, summarizer=OpaqueSummarizer())
        with pytest.raises(ValueError, match="streaming"):
            LiveRecommender(
                engine, DeploymentType.SQL_DB, profile_mode="streaming"
            )

    def test_stl_streaming_matches_batch_on_the_same_window(self, small_catalog):
        """STL went streaming: windowed re-decomposition, exact parity."""
        rng = np.random.default_rng(11)
        window = 96
        profiler = CustomerProfiler(
            dimensions=PROFILING_DB_DIMENSIONS, summarizer=StlSummarizer()
        )
        stats = {
            dim: StreamingSeriesStats(window=window)
            for dim in PROFILING_DB_DIMENSIONS
        }
        # Overfill past the window so the ring has wrapped (the
        # chronological pivot copy is the interesting path).
        for index in range(window + 37):
            sample = db_sample(rng, index)
            for dim in PROFILING_DB_DIMENSIONS:
                stats[dim].update(sample[dim])
        streaming_profile = profiler.profile_streaming(stats, entity_id="s")
        columns = {dim: stats[dim].window_values() for dim in PROFILING_DB_DIMENSIONS}
        trace = make_trace(
            columns[PerfDimension.CPU],
            memory_gb=columns[PerfDimension.MEMORY],
            data_iops=columns[PerfDimension.IOPS],
            log_rate_mbps=columns[PerfDimension.LOG_RATE],
            entity_id="s",
        )
        exact_profile = profiler.profile(trace)
        assert streaming_profile.group_key == exact_profile.group_key
        assert (
            streaming_profile.features.tobytes() == exact_profile.features.tobytes()
        )

    def test_stl_streaming_live_loop_runs(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog, summarizer=StlSummarizer())
        rng = np.random.default_rng(13)
        live = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=64,
            min_refresh_samples=12,
            profile_mode="streaming",
        )
        update = None
        for index in range(48):
            update = live.observe(db_sample(rng, index))
        assert update.has_recommendation

    def test_unknown_profile_mode_rejected(self, engine):
        with pytest.raises(ValueError, match="profile mode"):
            LiveRecommender(engine, DeploymentType.SQL_DB, profile_mode="bogus")


class TestMiStreamingParity:
    def test_refresh_folds_layout_override_into_estimator(self, small_catalog=None):
        catalog = SkuCatalog.default()
        engine = DopplerEngine(catalog=catalog)
        rng = np.random.default_rng(2)
        live = LiveRecommender(
            engine, DeploymentType.SQL_MI, window=128, min_refresh_samples=12
        )
        for index in range(48):
            live.observe(db_sample(rng, index))
        assert live.n_refreshes >= 1
        overrides = live.estimator.iops_overrides
        assert overrides, "MI refresh must install the layout's GP IOPS override"
        candidates = list(catalog.for_deployment(DeploymentType.SQL_MI))
        gp_names = {
            sku.name for sku in candidates if sku.tier is ServiceTier.GENERAL_PURPOSE
        }
        assert set(overrides) == gp_names

    def test_incremental_matches_batch_estimator_with_overrides(self):
        """The ROADMAP regression test: parity against the batch path."""
        catalog = SkuCatalog.default()
        engine = DopplerEngine(catalog=catalog)
        rng = np.random.default_rng(4)
        live = LiveRecommender(
            engine, DeploymentType.SQL_MI, window=96, min_refresh_samples=12
        )
        for index in range(72):
            live.observe(db_sample(rng, index, scale=1.0 + index / 24.0))
        trace = live.builder.snapshot()
        candidates = list(catalog.for_deployment(DeploymentType.SQL_MI))
        batch = EmpiricalThrottlingEstimator().probabilities(
            trace,
            candidates,
            MI_DIMENSIONS,
            iops_overrides=live.estimator.iops_overrides,
        )
        np.testing.assert_allclose(
            live.estimator.probabilities(), batch, rtol=0, atol=1e-12
        )

    def test_rebase_capacity_equals_fresh_construction(self):
        skus = [make_sku(2, name="a"), make_sku(8, name="b")]
        dims = (PerfDimension.CPU, PerfDimension.MEMORY, PerfDimension.IOPS)
        rng = np.random.default_rng(6)
        n = 40
        trace = make_trace(
            np.abs(rng.normal(2.0, 1.0, n)),
            memory_gb=np.abs(rng.normal(8.0, 3.0, n)),
            data_iops=np.abs(rng.normal(500.0, 200.0, n)),
            entity_id="rebase",
        )
        estimator = IncrementalThrottlingEstimator.from_trace(
            trace, skus, dims, window=32
        )
        overrides = {"a": 120.0, "b": 5000.0}
        estimator.rebase_capacity(overrides, trace)
        fresh = IncrementalThrottlingEstimator.from_trace(
            trace, skus, dims, window=32, iops_overrides=overrides
        )
        np.testing.assert_array_equal(
            estimator.probabilities(), fresh.probabilities()
        )
        assert estimator.iops_overrides == overrides

    def test_rebase_without_trace_rejected_once_ingested(self):
        skus = [make_sku(2, name="a")]
        dims = (PerfDimension.CPU,)
        estimator = IncrementalThrottlingEstimator(skus, dims, window=8)
        estimator.update({PerfDimension.CPU: 1.0})
        with pytest.raises(ValueError, match="rebase_capacity"):
            estimator.rebase_capacity({"a": 10.0})
        # Before any ingestion a trace-less rebase is fine.
        fresh = IncrementalThrottlingEstimator(skus, dims, window=8)
        fresh.rebase_capacity({"a": 10.0})
        assert fresh.iops_overrides == {"a": 10.0}
