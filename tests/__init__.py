"""Test package marker.

Makes ``tests`` an importable package so test modules can use
``from .conftest import ...`` for the shared plain-function helpers
(``make_sku``, ``make_trace``, ``full_trace``) alongside the pytest
fixtures the same conftest provides.
"""
