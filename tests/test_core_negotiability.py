"""Unit tests for the six negotiability summarizers."""

import numpy as np
import pytest

from repro.core import (
    ALL_SUMMARIZERS,
    CombinedSummarizer,
    MaxAucSummarizer,
    MinMaxAucSummarizer,
    OutlierSummarizer,
    StlSummarizer,
    ThresholdingSummarizer,
)
from repro.telemetry import TimeSeries
from repro.workloads import DiurnalPattern, PlateauPattern, SpikyPattern

N = 1008  # one week at 10-minute cadence


def series(pattern, seed=0):
    return TimeSeries(values=pattern.generate(N, 10.0, rng=seed))


SPIKY = series(SpikyPattern(base=1.0, peak=6.0, spike_probability=0.006))
PLATEAU = series(PlateauPattern(level=3.0))
DIURNAL = series(DiurnalPattern(trough=1.5, peak=3.0, noise=0.04))


class TestThresholding:
    def test_spiky_is_negotiable(self):
        assert ThresholdingSummarizer().is_negotiable(SPIKY)

    def test_plateau_is_not_negotiable(self):
        assert not ThresholdingSummarizer().is_negotiable(PLATEAU)

    def test_diurnal_is_not_negotiable(self):
        """Daily sustained peaks are demand, not transient spikes."""
        assert not ThresholdingSummarizer().is_negotiable(DIURNAL)

    def test_constant_series_not_negotiable(self):
        constant = TimeSeries(values=np.full(100, 2.0))
        summarizer = ThresholdingSummarizer()
        assert summarizer.near_peak_fraction(constant) == 1.0
        assert not summarizer.is_negotiable(constant)

    def test_rho_sensitivity(self):
        """Larger rho admits more dimensions as negotiable."""
        fraction = ThresholdingSummarizer().near_peak_fraction(DIURNAL)
        assert not ThresholdingSummarizer(rho=fraction / 2).is_negotiable(DIURNAL)
        assert ThresholdingSummarizer(rho=fraction * 2).is_negotiable(DIURNAL)

    def test_features_are_near_peak_fraction(self):
        summarizer = ThresholdingSummarizer()
        assert summarizer.features(SPIKY)[0] == pytest.approx(
            summarizer.near_peak_fraction(SPIKY)
        )


class TestAucSummarizers:
    def test_minmax_spiky_negotiable(self):
        assert MinMaxAucSummarizer().is_negotiable(SPIKY)

    def test_minmax_plateau_not_negotiable(self):
        assert not MinMaxAucSummarizer().is_negotiable(PLATEAU)

    def test_max_scaler_separates_spikes(self):
        summarizer = MaxAucSummarizer()
        assert summarizer.auc(SPIKY) > summarizer.auc(PLATEAU)

    def test_max_plateau_not_negotiable(self):
        assert not MaxAucSummarizer().is_negotiable(PLATEAU)


class TestOutlierSummarizer:
    def test_spiky_negotiable(self):
        assert OutlierSummarizer().is_negotiable(SPIKY)

    def test_plateau_not_negotiable(self):
        assert not OutlierSummarizer().is_negotiable(PLATEAU)


class TestStlSummarizer:
    def test_diurnal_not_negotiable(self):
        """Seasonal demand is explained variance, not negotiable spikes."""
        assert not StlSummarizer().is_negotiable(DIURNAL)

    def test_spiky_negotiable(self):
        assert StlSummarizer().is_negotiable(SPIKY)

    def test_short_series_falls_back(self):
        short = TimeSeries(values=np.sin(np.linspace(0, 12, 60)) + 2.0)
        # Must not raise despite being shorter than 2x the daily period.
        StlSummarizer().is_negotiable(short)


class TestCombined:
    def test_features_concatenated(self):
        combined = CombinedSummarizer()
        assert combined.features(SPIKY).shape == (2,)

    def test_requires_agreement(self):
        combined = CombinedSummarizer()
        assert combined.is_negotiable(SPIKY)
        assert not combined.is_negotiable(PLATEAU)


class TestRegistry:
    def test_six_strategies(self):
        """Table 4 compares six summarization strategies."""
        assert len(ALL_SUMMARIZERS) == 6
        assert len({s.name for s in ALL_SUMMARIZERS}) == 6

    @pytest.mark.parametrize("summarizer", ALL_SUMMARIZERS, ids=lambda s: s.name)
    def test_all_agree_on_canonical_cases(self, summarizer):
        """Every strategy labels the canonical spiky series negotiable
        and the canonical plateau non-negotiable."""
        assert summarizer.is_negotiable(SPIKY)
        assert not summarizer.is_negotiable(PLATEAU)

    @pytest.mark.parametrize("summarizer", ALL_SUMMARIZERS, ids=lambda s: s.name)
    def test_features_finite(self, summarizer):
        for ts in (SPIKY, PLATEAU, DIURNAL):
            features = summarizer.features(ts)
            assert np.all(np.isfinite(features))
