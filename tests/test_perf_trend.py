"""Perf-trend record diffing (benchmarks/perf_trend.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

from perf_trend import (  # noqa: E402
    check_floors,
    collect_metrics,
    compare_records,
    load_floors,
    load_records,
    lower_is_better,
    main,
)


def record(name: str, per_sec: float, smoke: bool = False) -> dict:
    return {
        "benchmark": name,
        "smoke": smoke,
        "nested": {"updates_per_sec": per_sec, "speedup": 3.0, "n_samples": 100},
        "sizes": [{"cust_per_sec": per_sec * 2, "identical": True}],
    }


def latency_record(name: str, p95_ms: float, smoke: bool = False) -> dict:
    return {
        "benchmark": name,
        "smoke": smoke,
        "closed": {"p95_ms": p95_ms, "requests_per_sec": 100.0, "n_requests": 50},
    }


def recovery_record(name: str, mttr_ticks: float, smoke: bool = False) -> dict:
    return {
        "benchmark": name,
        "smoke": smoke,
        "recovery": {"mttr_ticks": mttr_ticks, "n_restarts": 3, "n_diverged": 0},
    }


class TestCollectMetrics:
    def test_only_per_sec_leaves_participate(self):
        metrics = collect_metrics(record("x", 100.0))
        assert metrics == {
            "nested.updates_per_sec": 100.0,
            "sizes[0].cust_per_sec": 200.0,
        }

    def test_latency_leaves_participate_too(self):
        metrics = collect_metrics(latency_record("x", 40.0))
        assert metrics == {"closed.p95_ms": 40.0, "closed.requests_per_sec": 100.0}

    def test_bools_and_counters_excluded(self):
        metrics = collect_metrics({"flag_per_sec": True, "n": 5})
        assert metrics == {}

    def test_direction_follows_suffix(self):
        assert not lower_is_better("closed.requests_per_sec")
        assert lower_is_better("closed.p95_ms")
        assert lower_is_better("recovery.mttr_ticks")

    def test_ticks_leaves_participate_too(self):
        metrics = collect_metrics(recovery_record("x", 2.5))
        assert metrics == {"recovery.mttr_ticks": 2.5}


class TestCompareRecords:
    def test_flags_regressions_beyond_threshold(self):
        baseline = {"s": record("s", 1000.0)}
        current = {"s": record("s", 700.0)}  # -30%
        regressions, notes = compare_records(baseline, current, threshold=0.2)
        assert len(regressions) == 2  # both per_sec leaves dropped 30%
        metric, base, cur, change = regressions[0]
        assert metric.startswith("s:")
        assert change == pytest.approx(-0.3)
        assert not notes

    def test_small_drops_and_improvements_pass(self):
        baseline = {"s": record("s", 1000.0)}
        for factor in (0.85, 1.0, 2.0):
            current = {"s": record("s", 1000.0 * factor)}
            regressions, _ = compare_records(baseline, current, threshold=0.2)
            assert regressions == []

    def test_smoke_mismatch_skips_comparison(self):
        baseline = {"s": record("s", 1000.0, smoke=False)}
        current = {"s": record("s", 10.0, smoke=True)}
        regressions, notes = compare_records(baseline, current)
        assert regressions == []
        assert any("smoke" in note for note in notes)

    def test_missing_benchmark_noted_not_fatal(self):
        baseline = {"s": record("s", 1000.0), "f": record("f", 50.0)}
        current = {"s": record("s", 1000.0)}
        regressions, notes = compare_records(baseline, current)
        assert regressions == []
        assert any("'f'" in note for note in notes)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_records({}, {}, threshold=0.0)

    def test_latency_increase_is_the_regression(self):
        baseline = {"s": latency_record("s", 100.0)}
        slower = {"s": latency_record("s", 150.0)}  # +50% latency
        regressions, _ = compare_records(baseline, slower, threshold=0.2)
        assert [metric for metric, *_ in regressions] == ["s:closed.p95_ms"]
        faster = {"s": latency_record("s", 40.0)}  # -60% latency: improvement
        regressions, _ = compare_records(baseline, faster, threshold=0.2)
        assert regressions == []

    def test_ticks_increase_is_the_regression(self):
        baseline = {"s": recovery_record("s", 2.0)}
        deeper = {"s": recovery_record("s", 5.0)}  # replaying 2.5x more feed
        regressions, _ = compare_records(baseline, deeper, threshold=0.2)
        assert [metric for metric, *_ in regressions] == ["s:recovery.mttr_ticks"]
        shallower = {"s": recovery_record("s", 1.0)}  # improvement
        regressions, _ = compare_records(baseline, shallower, threshold=0.2)
        assert regressions == []


class TestEndToEnd:
    def write(self, directory: Path, name: str, payload: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )

    def test_load_records_skips_corrupt_files(self, tmp_path, capsys):
        self.write(tmp_path, "good", record("good", 10.0))
        (tmp_path / "BENCH_bad.json").write_text("{not json", encoding="utf-8")
        records = load_records(tmp_path)
        assert set(records) == {"good"}

    def test_main_flags_regression(self, tmp_path, capsys):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "streaming", record("streaming", 1000.0))
        self.write(current, "streaming", record("streaming", 100.0))
        assert main(["--baseline", str(baseline), "--current", str(current)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert (
            main(
                [
                    "--baseline",
                    str(baseline),
                    "--current",
                    str(current),
                    "--warn-only",
                ]
            )
            == 0
        )

    def test_main_without_baseline_is_clean(self, tmp_path, capsys):
        current = tmp_path / "cur"
        self.write(current, "streaming", record("streaming", 100.0))
        assert main(["--baseline", str(tmp_path / "none"), "--current", str(current)]) == 0


class TestFloors:
    def test_floor_violation_detected(self):
        floors = {"fleet": {"sizes[0].cust_per_sec": 500.0}}
        healthy = {"fleet": record("fleet", 1000.0)}  # leaf = 2000
        assert check_floors(healthy, floors) == []
        slow = {"fleet": record("fleet", 100.0)}  # leaf = 200 < 500
        violations = check_floors(slow, floors)
        assert len(violations) == 1
        assert "below the absolute floor" in violations[0]

    def test_latency_floor_is_a_ceiling(self):
        floors = {"serving": {"closed.p95_ms": 50.0}}
        fast = {"serving": latency_record("serving", 30.0)}
        assert check_floors(fast, floors) == []
        slow = {"serving": latency_record("serving", 80.0)}
        violations = check_floors(slow, floors)
        assert len(violations) == 1
        assert "above the absolute ceiling" in violations[0]

    def test_missing_latency_metric_is_a_violation(self):
        floors = {"serving": {"open.p99_ms": 50.0}}
        violations = check_floors({"serving": latency_record("serving", 30.0)}, floors)
        assert violations and "missing" in violations[0]

    def test_ticks_floor_is_a_ceiling(self):
        floors = {"streaming": {"recovery.mttr_ticks": 8.0}}
        shallow = {"streaming": recovery_record("streaming", 2.0)}
        assert check_floors(shallow, floors) == []
        deep = {"streaming": recovery_record("streaming", 20.0)}
        violations = check_floors(deep, floors)
        assert len(violations) == 1
        assert "above the absolute ceiling" in violations[0]

    def test_missing_floored_metric_is_a_violation(self):
        floors = {"fleet": {"sizes[9].cust_per_sec": 500.0}}
        violations = check_floors({"fleet": record("fleet", 1000.0)}, floors)
        assert violations and "missing" in violations[0]
        # A missing record entirely is the most complete regression.
        violations = check_floors({}, floors)
        assert violations and "missing" in violations[0]

    def test_load_floors_validates_and_skips_comments(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text(
            json.dumps({"_comment": "why", "fleet": {"a_per_sec": 5}}),
            encoding="utf-8",
        )
        assert load_floors(path) == {"fleet": {"a_per_sec": 5.0}}
        path.write_text(json.dumps(["not", "a", "mapping"]), encoding="utf-8")
        with pytest.raises(ValueError, match="floors file"):
            load_floors(path)


class TestBlockingBenchmarks:
    def write(self, directory: Path, name: str, payload: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )

    def test_blocking_benchmark_fails_despite_warn_only(self, tmp_path, capsys):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "fleet", record("fleet", 1000.0))
        self.write(current, "fleet", record("fleet", 100.0))
        argv = ["--baseline", str(baseline), "--current", str(current), "--warn-only"]
        assert main(argv) == 0  # plain warn-only tolerates it
        assert main(argv + ["--blocking", "fleet"]) == 1
        assert "REGRESSION (blocking)" in capsys.readouterr().out

    def test_nonblocking_regression_still_warns_only(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "streaming", record("streaming", 1000.0))
        self.write(current, "streaming", record("streaming", 100.0))
        argv = [
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            "--warn-only",
            "--blocking",
            "fleet",
        ]
        assert main(argv) == 0

    def test_floor_violation_fails_even_without_baseline(self, tmp_path):
        current = tmp_path / "cur"
        self.write(current, "fleet", record("fleet", 100.0))
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"fleet": {"sizes[0].cust_per_sec": 500.0}}), encoding="utf-8"
        )
        argv = [
            "--baseline",
            str(tmp_path / "none"),
            "--current",
            str(current),
            "--warn-only",
            "--floors",
            str(floors),
        ]
        assert main(argv) == 1

    def test_repo_floors_file_parses_and_matches_bench_schema(self):
        floors = load_floors(_BENCH_DIR / "perf_floors.json")
        assert "fleet" in floors
        assert "streaming" in floors  # watch cust/s + observe/s floors
        assert "watch_scaling.serial_customers_per_sec" in floors["streaming"]
        assert "live_loop.observe_per_sec" in floors["streaming"]
        assert "serving" in floors  # serving tier: throughput floor + p95 ceiling
        assert "closed_loop.requests_per_sec" in floors["serving"]
        assert "closed_loop.p95_ms" in floors["serving"]
        assert "recovery.mttr_ticks" in floors["streaming"]  # fault-matrix ceiling
        for metric_floors in floors.values():
            for metric, floor in metric_floors.items():
                assert (
                    metric.endswith("_per_sec")
                    or metric.endswith("_ms")
                    or metric.endswith("_ticks")
                )
                assert floor > 0


class TestWarnMetrics:
    def write(self, directory: Path, name: str, payload: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )

    def test_warn_metric_never_blocks_even_in_blocking_benchmark(
        self, tmp_path, capsys
    ):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "streaming", record("streaming", 1000.0))
        self.write(current, "streaming", record("streaming", 100.0))
        argv = [
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            "--warn-only",
            "--blocking",
            "streaming",
        ]
        assert main(argv) == 1  # blocking benchmark regressed
        # Exempting every regressed metric downgrades the run to warnings.
        assert main(argv + ["--warn-metric", "streaming:"]) == 0
        assert "REGRESSION (warn-only metric)" in capsys.readouterr().out

    def test_warn_metric_is_substring_scoped(self, tmp_path, capsys):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "streaming", record("streaming", 1000.0))
        self.write(current, "streaming", record("streaming", 100.0))
        argv = [
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            "--warn-only",
            "--blocking",
            "streaming",
            "--warn-metric",
            "streaming:nested",  # exempts one of the two regressed leaves
        ]
        assert main(argv) == 1  # the sizes[0] leaf still blocks
        out = capsys.readouterr().out
        assert "REGRESSION (warn-only metric) streaming:nested" in out
        assert "REGRESSION (blocking) streaming:sizes[0]" in out

    def test_warn_metric_applies_without_warn_only_too(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self.write(baseline, "streaming", record("streaming", 1000.0))
        self.write(current, "streaming", record("streaming", 100.0))
        argv = ["--baseline", str(baseline), "--current", str(current)]
        assert main(argv) == 1
        assert main(argv + ["--warn-metric", "streaming:"]) == 0

    def test_warn_metric_exempts_floor_violations(self, tmp_path, capsys):
        # The one-cycle grace period for a freshly pinned ceiling: the
        # violation prints but does not fail until the exemption is
        # dropped next cycle.
        current = tmp_path / "cur"
        self.write(current, "streaming", recovery_record("streaming", 50.0))
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"streaming": {"recovery.mttr_ticks": 8.0}}), encoding="utf-8"
        )
        argv = [
            "--baseline",
            str(tmp_path / "none"),
            "--current",
            str(current),
            "--floors",
            str(floors),
        ]
        assert main(argv) == 1
        assert main(argv + ["--warn-metric", "recovery.mttr_ticks"]) == 0
        assert "FLOOR (warn-only metric)" in capsys.readouterr().out
