"""Unit tests for the STL decomposition and the Gaussian KDE."""

import numpy as np
import pytest

from repro.ml import GaussianKde, loess_smooth, stl_decompose, stl_variance_score


def seasonal_series(n=576, period=144, amplitude=1.0, noise=0.05, trend_slope=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        5.0
        + trend_slope * t
        + amplitude * np.sin(2 * np.pi * t / period)
        + rng.normal(0, noise, size=n)
    )


class TestLoess:
    def test_smooths_constant_exactly(self):
        values = np.full(50, 3.0)
        np.testing.assert_allclose(loess_smooth(values), values, atol=1e-9)

    def test_recovers_linear_trend(self):
        values = np.linspace(0.0, 10.0, 100)
        np.testing.assert_allclose(loess_smooth(values, span=0.3), values, atol=1e-6)

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(1)
        noisy = 5.0 + rng.normal(0, 1.0, size=200)
        smoothed = loess_smooth(noisy, span=0.5)
        assert smoothed.std() < noisy.std() / 2

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            loess_smooth(np.ones(10), span=0.0)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            loess_smooth(np.ones(10), degree=2)


class TestStl:
    def test_additive_identity(self):
        series = seasonal_series()
        decomposition = stl_decompose(series, period=144)
        np.testing.assert_allclose(
            decomposition.trend + decomposition.seasonal + decomposition.residual,
            series,
            atol=1e-9,
        )

    def test_seasonal_signal_mostly_explained(self):
        series = seasonal_series(noise=0.05)
        assert stl_variance_score(series, period=144) > 0.9

    def test_pure_noise_poorly_explained(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=576)
        assert stl_variance_score(noise, period=144) < 0.4

    def test_trend_plus_season_explained(self):
        series = seasonal_series(trend_slope=0.01, noise=0.05)
        assert stl_variance_score(series, period=144) > 0.85

    def test_seasonal_component_zero_mean_per_period(self):
        series = seasonal_series()
        decomposition = stl_decompose(series, period=144)
        assert abs(decomposition.seasonal[:144].mean()) < 0.05

    def test_constant_series_score_is_one(self):
        assert stl_variance_score(np.full(300, 2.0), period=10) == 1.0

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError, match="shorter than two periods"):
            stl_decompose(np.ones(100), period=144)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            stl_decompose(np.ones(100), period=1)


class TestGaussianKde:
    def test_cdf_box_bounds(self):
        rng = np.random.default_rng(3)
        kde = GaussianKde.fit(rng.normal(size=(200, 2)))
        assert kde.cdf_box(np.array([-10.0, -10.0])) < 0.01
        assert kde.cdf_box(np.array([10.0, 10.0])) > 0.99

    def test_cdf_monotone_in_bounds(self):
        rng = np.random.default_rng(4)
        kde = GaussianKde.fit(rng.normal(size=(200, 1)))
        values = [kde.cdf_box(np.array([x])) for x in (-1.0, 0.0, 1.0)]
        assert values == sorted(values)

    def test_exceedance_complements_cdf(self):
        rng = np.random.default_rng(5)
        kde = GaussianKde.fit(rng.normal(size=(100, 2)))
        bounds = np.array([0.5, 0.5])
        assert kde.exceedance_probability(bounds) == pytest.approx(
            1.0 - kde.cdf_box(bounds)
        )

    def test_median_cdf_near_half(self):
        rng = np.random.default_rng(6)
        kde = GaussianKde.fit(rng.normal(size=(2000, 1)))
        assert kde.cdf_box(np.array([0.0])) == pytest.approx(0.5, abs=0.05)

    def test_constant_dimension_behaves_like_step(self):
        sample = np.column_stack([np.full(100, 2.0), np.arange(100.0)])
        kde = GaussianKde.fit(sample)
        assert kde.cdf_box(np.array([1.9, 200.0])) < 0.01
        assert kde.cdf_box(np.array([2.1, 200.0])) > 0.99

    def test_wrong_bound_shape_rejected(self):
        kde = GaussianKde.fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            kde.cdf_box(np.zeros(3))

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            GaussianKde.fit(np.zeros((0, 2)))
