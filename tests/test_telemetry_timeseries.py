"""Unit tests for repro.telemetry.timeseries."""

import numpy as np
import pytest

from repro.telemetry import TimeSeries


def series(values, interval=10.0, start=0.0):
    return TimeSeries(values=np.asarray(values, dtype=float), interval_minutes=interval, start_minute=start)


class TestConstruction:
    def test_basic(self):
        ts = series([1, 2, 3])
        assert len(ts) == 3
        assert list(ts) == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            series([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            TimeSeries(values=np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            series([1.0, float("nan")])

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            series([1.0], interval=0.0)

    def test_values_are_readonly(self):
        ts = series([1, 2, 3])
        with pytest.raises(ValueError):
            ts.values[0] = 99.0


class TestClocks:
    def test_durations(self):
        ts = series(np.ones(144), interval=10.0)
        assert ts.duration_minutes == 1440.0
        assert ts.duration_hours == 24.0
        assert ts.duration_days == pytest.approx(1.0)

    def test_timestamps(self):
        ts = series([1, 2, 3], interval=10.0, start=5.0)
        assert list(ts.timestamps_minutes()) == [5.0, 15.0, 25.0]


class TestStatistics:
    def test_summary_stats(self):
        ts = series([1, 2, 3, 4])
        assert ts.max() == 4.0
        assert ts.min() == 1.0
        assert ts.mean() == 2.5
        assert ts.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_quantile(self):
        ts = series(np.arange(101))
        assert ts.quantile(0.95) == pytest.approx(95.0)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            series([1.0]).quantile(1.5)


class TestTransforms:
    def test_slice_window(self):
        ts = series(np.arange(10), interval=10.0)
        window = ts.slice_window(20.0, 50.0)
        assert list(window.values) == [2.0, 3.0, 4.0]
        assert window.start_minute == 20.0

    def test_slice_window_empty_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            series([1, 2, 3]).slice_window(1000.0, 2000.0)

    def test_head_minutes(self):
        ts = series(np.arange(10), interval=10.0)
        assert len(ts.head_minutes(30.0)) == 3

    def test_resample_averages_buckets(self):
        ts = series([1, 3, 5, 7], interval=10.0)
        coarse = ts.resample(20.0)
        assert list(coarse.values) == [2.0, 6.0]
        assert coarse.interval_minutes == 20.0

    def test_resample_identity(self):
        ts = series([1, 2, 3])
        assert ts.resample(10.0) is ts

    def test_resample_drops_trailing_partial_bucket(self):
        ts = series([1, 3, 5], interval=10.0)
        coarse = ts.resample(20.0)
        assert list(coarse.values) == [2.0]

    def test_resample_non_integral_rejected(self):
        with pytest.raises(ValueError, match="integral multiple"):
            series([1, 2, 3]).resample(15.0)

    def test_clip_upper(self):
        ts = series([1, 5, 9]).clip_upper(5.0)
        assert list(ts.values) == [1.0, 5.0, 5.0]

    def test_add_aligned(self):
        total = series([1, 2]) + series([10, 20])
        assert list(total.values) == [11.0, 22.0]

    def test_add_misaligned_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            series([1, 2]) + series([1, 2, 3])

    def test_add_misaligned_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            series([1, 2]) + series([1, 2], interval=20.0)

    def test_pointwise_max(self):
        merged = series([1, 9]).pointwise_max(series([5, 2]))
        assert list(merged.values) == [5.0, 9.0]

    def test_with_values_keeps_clock(self):
        ts = series([1, 2], interval=30.0, start=10.0)
        replaced = ts.with_values([7, 8])
        assert replaced.interval_minutes == 30.0
        assert replaced.start_minute == 10.0
