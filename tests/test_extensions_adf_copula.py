"""Unit tests for the ADF adaptation and the Gaussian-copula estimator."""

import numpy as np
import pytest

from repro.core import (
    CopulaThrottlingEstimator,
    EmpiricalThrottlingEstimator,
)
from repro.extensions import (
    ADF_RUNTIME_LADDER,
    adf_runtime_catalog,
    pipeline_trace,
    recommend_adf_runtime,
)
from repro.ml import GaussianCopulaModel
from repro.telemetry import PerfDimension

from .conftest import make_sku, make_trace


class TestAdfLadder:
    def test_ladder_shape(self):
        assert len(ADF_RUNTIME_LADDER) == 8
        dius = [option.dius for option in ADF_RUNTIME_LADDER]
        assert dius == sorted(dius)

    def test_catalog_projection(self):
        catalog = adf_runtime_catalog()
        assert len(catalog) == len(ADF_RUNTIME_LADDER)
        cheapest = catalog.cheapest()
        assert cheapest.name == "IR_2DIU"

    def test_capacity_scaling(self):
        small, big = ADF_RUNTIME_LADDER[0], ADF_RUNTIME_LADDER[-1]
        ratio = big.dius / small.dius
        assert big.cores == pytest.approx(small.cores * ratio)
        assert big.movement_mbps == pytest.approx(small.movement_mbps * ratio)
        assert big.price_per_hour == pytest.approx(small.price_per_hour * ratio)


class TestAdfRecommendation:
    def bursty_pipeline(self, peak_mbps=300.0, n=288):
        rng = np.random.default_rng(0)
        movement = np.where(rng.random(n) < 0.2, peak_mbps, 20.0)
        cores = movement / 40.0
        memory = cores * 3.0
        return pipeline_trace(cores, memory, movement)

    def test_recommends_a_ladder_runtime(self):
        recommendation = recommend_adf_runtime(self.bursty_pipeline())
        assert recommendation.runtime.name.startswith("IR_")
        assert 0.0 <= recommendation.expected_throttling <= 1.0

    def test_bigger_pipelines_get_bigger_runtimes(self):
        small = recommend_adf_runtime(self.bursty_pipeline(peak_mbps=100.0))
        big = recommend_adf_runtime(self.bursty_pipeline(peak_mbps=2000.0))
        assert big.runtime.dius > small.runtime.dius

    def test_gamma_trades_cost_for_performance(self):
        trace = self.bursty_pipeline(peak_mbps=600.0)
        strict = recommend_adf_runtime(trace, gamma=0.999)
        loose = recommend_adf_runtime(trace, gamma=0.85)
        assert loose.runtime.price_per_hour <= strict.runtime.price_per_hour

    def test_curve_covers_whole_ladder(self):
        recommendation = recommend_adf_runtime(self.bursty_pipeline())
        assert len(recommendation.curve) == len(ADF_RUNTIME_LADDER)


class TestGaussianCopulaModel:
    def correlated_sample(self, n=400, rho=0.8, seed=0):
        rng = np.random.default_rng(seed)
        z1 = rng.standard_normal(n)
        z2 = rho * z1 + np.sqrt(1 - rho**2) * rng.standard_normal(n)
        return np.column_stack([np.exp(z1), np.exp(z2)])  # lognormal marginals

    def test_cdf_bounds(self):
        model = GaussianCopulaModel.fit(self.correlated_sample())
        assert model.cdf_box(np.array([1e-6, 1e-6])) < 0.01
        assert model.cdf_box(np.array([1e6, 1e6])) > 0.99

    def test_marginal_cdf_median(self):
        model = GaussianCopulaModel.fit(self.correlated_sample())
        median = float(np.median(model.sample_sorted[0]))
        assert model.marginal_cdf(0, median) == pytest.approx(0.5, abs=0.05)

    def test_captures_positive_dependence(self):
        """Correlated dims: joint box prob exceeds independence product."""
        model = GaussianCopulaModel.fit(self.correlated_sample(rho=0.9))
        u = float(np.quantile(model.sample_sorted[0], 0.5))
        v = float(np.quantile(model.sample_sorted[1], 0.5))
        joint = model.cdf_box(np.array([u, v]), n_draws=20000, rng=0)
        independent = model.marginal_cdf(0, u) * model.marginal_cdf(1, v)
        assert joint > independent + 0.05

    def test_deterministic_with_seed(self):
        model = GaussianCopulaModel.fit(self.correlated_sample())
        bounds = np.array([1.0, 1.0])
        assert model.cdf_box(bounds, rng=7) == model.cdf_box(bounds, rng=7)

    def test_constant_dimension_tolerated(self):
        sample = np.column_stack([np.full(100, 2.0), np.arange(100.0)])
        model = GaussianCopulaModel.fit(sample)
        assert 0.0 <= model.cdf_box(np.array([2.5, 50.0])) <= 1.0

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            GaussianCopulaModel.fit(np.zeros((1, 2)))

    def test_wrong_bound_shape_rejected(self):
        model = GaussianCopulaModel.fit(self.correlated_sample())
        with pytest.raises(ValueError):
            model.cdf_box(np.zeros(3))


class TestCopulaThrottlingEstimator:
    DIMS = (PerfDimension.CPU, PerfDimension.MEMORY)

    def test_agrees_with_empirical_in_clear_cases(self):
        rng = np.random.default_rng(1)
        trace = make_trace(rng.uniform(0.5, 1.5, 300), memory_gb=rng.uniform(2, 6, 300))
        sku = make_sku(16)
        empirical = EmpiricalThrottlingEstimator().probability(trace, sku, self.DIMS)
        copula = CopulaThrottlingEstimator().probability(trace, sku, self.DIMS)
        assert empirical == 0.0
        assert copula < 0.05

    def test_monotone_in_sku_size(self):
        rng = np.random.default_rng(2)
        trace = make_trace(rng.uniform(0, 20, 300), memory_gb=rng.uniform(0, 80, 300))
        estimator = CopulaThrottlingEstimator()
        probs = estimator.probabilities(
            trace, [make_sku(v) for v in (2, 8, 32)], self.DIMS
        )
        assert probs[0] >= probs[1] >= probs[2]

    def test_close_to_empirical_on_smooth_demand(self):
        rng = np.random.default_rng(3)
        trace = make_trace(
            rng.lognormal(1.0, 0.5, 500), memory_gb=rng.lognormal(2.0, 0.5, 500)
        )
        sku = make_sku(8)
        empirical = EmpiricalThrottlingEstimator().probability(trace, sku, self.DIMS)
        copula = CopulaThrottlingEstimator(n_draws=20000).probability(
            trace, sku, self.DIMS
        )
        assert copula == pytest.approx(empirical, abs=0.08)
