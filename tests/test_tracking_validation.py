"""Unit tests for recommendation tracking and ground-truth validation."""

import pytest

from repro.catalog import DeploymentType
from repro.core import DopplerEngine
from repro.dma import RecommendationStore
from repro.extensions import FeedbackLoop
from repro.simulation import (
    DetectionQuality,
    FleetConfig,
    overprovision_detection_quality,
    profiling_quality,
    selection_quality,
    simulate_fleet,
)

from .conftest import full_trace


@pytest.fixture(scope="module")
def mini_setup():
    from repro.catalog import SkuCatalog

    catalog = SkuCatalog.default()
    config = FleetConfig.paper_db(30, duration_days=3, interval_minutes=30)
    fleet = simulate_fleet(config, catalog, rng=77)
    engine = DopplerEngine(catalog=catalog)
    engine.fit([c.record for c in fleet])
    return catalog, fleet, engine


class TestRecommendationStore:
    def issue(self, store, engine, entity="cust-1"):
        recommendation = engine.recommend(full_trace(entity_id=entity), DeploymentType.SQL_DB)
        return store.record(entity, "DB", recommendation)

    def test_record_and_get(self, tmp_path, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        store = RecommendationStore(tmp_path / "recs.jsonl")
        tracked = self.issue(store, engine)
        assert len(store) == 1
        assert "cust-1" in store
        assert store.get("cust-1").sku_name == tracked.sku_name
        assert tracked.adopted is None

    def test_persistence_roundtrip(self, tmp_path, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        path = tmp_path / "recs.jsonl"
        store = RecommendationStore(path)
        self.issue(store, engine)
        store.update_outcome("cust-1", adopted=True, retention_days=90.0,
                             observed_throttling=0.01)
        reloaded = RecommendationStore(path)
        record = reloaded.get("cust-1")
        assert record.adopted is True
        assert record.retention_days == 90.0
        assert record.is_satisfied is True

    def test_update_unknown_entity_raises(self, tmp_path):
        store = RecommendationStore(tmp_path / "recs.jsonl")
        with pytest.raises(KeyError):
            store.update_outcome("ghost", adopted=True)

    def test_retention_summary(self, tmp_path, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        store = RecommendationStore(tmp_path / "recs.jsonl")
        for i, (adopted, days) in enumerate(
            [(True, 120.0), (True, 10.0), (False, None), (None, None)]
        ):
            entity = f"cust-{i}"
            self.issue(store, engine, entity=entity)
            if adopted is not None:
                store.update_outcome(entity, adopted=adopted, retention_days=days,
                                     observed_throttling=0.0)
        summary = store.retention_summary()
        assert summary.n_issued == 4
        assert summary.n_adopted == 2
        assert summary.n_satisfied == 1
        assert summary.adoption_rate == pytest.approx(0.5)
        assert summary.satisfaction_rate == pytest.approx(0.5)
        assert summary.mean_retention_days == pytest.approx(65.0)

    def test_feedback_bridge(self, tmp_path, small_catalog):
        """Tracked outcomes feed the online profiling refinement."""
        engine = DopplerEngine(catalog=small_catalog)
        store = RecommendationStore(tmp_path / "recs.jsonl")
        self.issue(store, engine, entity="happy")
        store.update_outcome("happy", adopted=True, retention_days=100.0,
                             observed_throttling=0.02)
        self.issue(store, engine, entity="unhappy")
        store.update_outcome("unhappy", adopted=True, retention_days=5.0,
                             observed_throttling=0.30)
        events = list(store.feedback_events())
        assert len(events) == 2
        satisfied = {e.satisfied for e in events}
        assert satisfied == {True, False}
        # The events are consumable by the FeedbackLoop.
        from repro.core import GroupObservation, GroupScoreModel

        group_key = events[0].group_key
        loop = FeedbackLoop(
            model=GroupScoreModel.fit([GroupObservation(group_key, 0.05)])
        )
        for event in events:
            loop.record(event)
        assert loop.events_seen(group_key) >= 1


class TestValidationMetrics:
    def test_profiling_quality_high_on_simulated_fleet(self, mini_setup):
        catalog, fleet, engine = mini_setup
        quality = profiling_quality(
            engine.profiler_for(DeploymentType.SQL_DB), fleet
        )
        assert quality.accuracy > 0.8
        assert quality.exact_group_rate >= 0.6
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0

    def test_selection_quality_rank_metrics(self, mini_setup):
        catalog, fleet, engine = mini_setup
        quality = selection_quality(engine, fleet, DeploymentType.SQL_DB)
        assert quality.n_evaluated > 0
        assert 0.0 <= quality.accuracy <= 1.0
        assert quality.within_one_rank >= quality.accuracy
        assert quality.mean_rank_error < 10.0

    def test_detection_quality_confusion_counts(self, mini_setup):
        catalog, fleet, engine = mini_setup
        quality = overprovision_detection_quality(
            engine, fleet, DeploymentType.SQL_DB
        )
        total = (
            quality.true_positive
            + quality.false_positive
            + quality.true_negative
            + quality.false_negative
        )
        assert total == len(fleet)
        assert quality.accuracy > 0.7

    def test_detection_quality_properties(self):
        quality = DetectionQuality(
            true_positive=8, false_positive=2, true_negative=85, false_negative=5
        )
        assert quality.precision == pytest.approx(0.8)
        assert quality.recall == pytest.approx(8 / 13)
        assert quality.accuracy == pytest.approx(0.93)

    def test_empty_fleet_rejected(self, mini_setup):
        catalog, fleet, engine = mini_setup
        with pytest.raises(ValueError):
            profiling_quality(engine.profiler_for(DeploymentType.SQL_DB), [])
