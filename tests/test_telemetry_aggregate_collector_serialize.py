"""Unit tests for telemetry aggregation, the collector and serialization."""

import numpy as np
import pytest

from repro.telemetry import (
    PerfCollector,
    PerfDimension,
    PerformanceTrace,
    TimeSeries,
    aggregate_database,
    aggregate_instance,
    aggregate_traces,
    dump_trace_json,
    load_trace_json,
    trace_from_dict,
    trace_to_csv,
    trace_to_dict,
)

from .conftest import make_trace


def file_trace(cpu, latency, entity):
    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(np.asarray(cpu, dtype=float)),
            PerfDimension.IO_LATENCY: TimeSeries(np.asarray(latency, dtype=float)),
        },
        entity_id=entity,
    )


class TestAggregation:
    def test_throughput_dims_sum(self):
        a = file_trace([1.0, 2.0], [5.0, 5.0], "f1")
        b = file_trace([3.0, 4.0], [5.0, 5.0], "f2")
        db = aggregate_database([a, b], "db1")
        assert list(db[PerfDimension.CPU].values) == [4.0, 6.0]

    def test_latency_takes_max(self):
        a = file_trace([1.0], [2.0], "f1")
        b = file_trace([1.0], [9.0], "f2")
        db = aggregate_database([a, b], "db1")
        assert list(db[PerfDimension.IO_LATENCY].values) == [9.0]

    def test_instance_rollup_entity_id(self):
        inst = aggregate_instance([file_trace([1.0], [1.0], "d")], "server-7")
        assert inst.entity_id == "server-7"

    def test_single_trace_passthrough_values(self):
        a = file_trace([1.5], [2.5], "f")
        out = aggregate_traces([a], "x")
        assert list(out[PerfDimension.CPU].values) == [1.5]

    def test_zero_traces_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            aggregate_traces([], "x")

    def test_mismatched_dimension_sets_rejected(self):
        a = file_trace([1.0], [1.0], "f1")
        b = make_trace(np.ones(1))
        with pytest.raises(ValueError, match="different dimension sets"):
            aggregate_traces([a, b], "x")


class TestCollector:
    def test_run_produces_expected_samples(self):
        collector = PerfCollector(interval_minutes=10.0, entity_id="c1")
        trace = collector.run(
            lambda minute: {PerfDimension.CPU: minute / 10.0}, duration_days=1.0
        )
        assert trace.n_samples == 144
        assert trace.entity_id == "c1"
        assert trace[PerfDimension.CPU].values[1] == 1.0

    def test_record_dimension_change_rejected(self):
        collector = PerfCollector()
        collector.record({PerfDimension.CPU: 1.0})
        with pytest.raises(ValueError, match="changed"):
            collector.record({PerfDimension.MEMORY: 1.0})

    def test_empty_collector_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            PerfCollector().to_trace()

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            PerfCollector().run(lambda m: {PerfDimension.CPU: 0.0}, duration_days=0.0)


class TestSerialization:
    def test_dict_roundtrip(self):
        trace = make_trace(np.array([1.0, 2.0]), memory_gb=np.array([3.0, 4.0]))
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.entity_id == trace.entity_id
        assert restored.dimensions == trace.dimensions
        np.testing.assert_allclose(
            restored[PerfDimension.CPU].values, trace[PerfDimension.CPU].values
        )

    def test_json_roundtrip(self, tmp_path):
        trace = make_trace(np.array([1.0, 2.0]))
        path = tmp_path / "trace.json"
        dump_trace_json(trace, path)
        restored = load_trace_json(path)
        np.testing.assert_allclose(
            restored[PerfDimension.CPU].values, trace[PerfDimension.CPU].values
        )

    def test_unknown_version_rejected(self):
        doc = trace_to_dict(make_trace(np.ones(2)))
        doc["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(doc)

    def test_unknown_dimension_rejected(self):
        doc = trace_to_dict(make_trace(np.ones(2)))
        doc["series"]["BOGUS"] = doc["series"].pop("CPU")
        with pytest.raises(ValueError, match="unknown performance dimension"):
            trace_from_dict(doc)

    def test_csv_has_header_and_rows(self):
        trace = make_trace(np.array([1.0, 2.0]), memory_gb=np.array([3.0, 4.0]))
        csv_text = trace_to_csv(trace)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "minute,cpu_vcores,memory_gb"
        assert len(lines) == 3
