"""Unit tests for the DMA integration layer (preprocess, pipeline, CLI)."""

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.dma import (
    AssessmentPipeline,
    DataPreprocessor,
    ecdf_bar,
    render_dashboard,
    sparkline,
)
from repro.dma.cli import main as cli_main
from repro.core import DopplerEngine
from repro.telemetry import PerfDimension, PerformanceTrace, dump_trace_json

from .conftest import full_trace, make_trace


class TestPreprocessor:
    def test_clamps_negative_samples(self):
        trace = make_trace(np.array([1.0, -2.0, 3.0]))
        report = DataPreprocessor().preprocess([trace], entity_id="x")
        assert report.n_clamped_samples == 1
        assert report.trace[PerfDimension.CPU].min() == 0.0

    def test_aggregates_multiple_traces(self):
        a = make_trace(np.ones(6), entity_id="f1")
        b = make_trace(np.full(6, 2.0), entity_id="f2")
        report = DataPreprocessor().preprocess([a, b], entity_id="db")
        assert report.trace.entity_id == "db"
        np.testing.assert_allclose(report.trace[PerfDimension.CPU].values, np.full(6, 3.0))

    def test_resamples_fine_grained_input(self):
        trace = make_trace(np.arange(60.0), interval_minutes=1.0)
        report = DataPreprocessor().preprocess([trace], entity_id="x")
        assert report.trace.interval_minutes == 10.0
        assert report.trace.n_samples == 6

    def test_window_sufficiency_flag(self):
        short = full_trace(n=144)  # one day
        report = DataPreprocessor().preprocess([short], entity_id="x")
        assert not report.window_sufficient
        long = full_trace(n=144 * 8)  # eight days
        assert DataPreprocessor().preprocess([long], entity_id="x").window_sufficient

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            DataPreprocessor().preprocess([], entity_id="x")


class TestDashboard:
    def test_sparkline_width(self):
        line = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(line) == 40

    def test_sparkline_constant(self):
        assert set(sparkline(np.ones(10))) <= set("▁▂▃▄▅▆▇█")

    def test_ecdf_bar_renders_percentages(self):
        text = ecdf_bar(np.arange(100.0))
        assert "100.0%" in text

    def test_render_dashboard_sections(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        trace = full_trace()
        recommendation = engine.recommend(trace, DeploymentType.SQL_DB)
        text = render_dashboard(trace, recommendation)
        assert "Resource usage" in text
        assert "Price-performance curve" in text
        assert "Recommended SKU" in text


class TestPipeline:
    def test_assessment_end_to_end(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        result = pipeline.assess([full_trace(n=144 * 8)], DeploymentType.SQL_DB)
        assert result.doppler.sku is not None
        assert result.baseline_sku is not None
        assert "Doppler assessment" in result.dashboard

    def test_short_window_warning_attached(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        result = pipeline.assess([full_trace(n=72)], DeploymentType.SQL_DB)
        assert any("WARNING" in note for note in result.doppler.notes)

    def test_strategies_agree_on_steady_workload(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        result = pipeline.assess([full_trace(cpu_level=1.0, n=144 * 8)], DeploymentType.SQL_DB)
        # Steady small workload: both strategies pick the cheapest fit.
        assert result.strategies_agree

    def test_default_catalog_constructor(self):
        pipeline = AssessmentPipeline.with_default_catalog()
        assert len(pipeline.catalog) > 200

    def test_confidence_flows_through(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        result = pipeline.assess(
            [full_trace(n=144 * 8)],
            DeploymentType.SQL_DB,
            with_confidence=True,
            rng=0,
        )
        assert result.doppler.confidence is not None


class TestCli:
    def test_cli_happy_path(self, tmp_path, capsys):
        trace = full_trace(n=144 * 8)
        path = tmp_path / "trace.json"
        dump_trace_json(trace, path)
        exit_code = cli_main([str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Recommended SKU" in output
        assert "Baseline" in output

    def test_cli_missing_file(self, capsys):
        assert cli_main(["/does/not/exist.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestRawCounterIngestion:
    def test_gaps_repaired_and_trace_built(self):
        rng = np.random.default_rng(0)
        cpu = rng.uniform(1.0, 2.0, 144 * 8)
        cpu[100:104] = np.nan
        report = DataPreprocessor().from_raw_counters(
            {PerfDimension.CPU: cpu}, entity_id="gappy"
        )
        assert report.trace.n_samples == cpu.size
        assert np.all(np.isfinite(report.trace[PerfDimension.CPU].values))
        assert report.window_sufficient

    def test_long_gap_marks_window_insufficient(self):
        cpu = np.ones(144 * 8)
        cpu[200:260] = np.nan  # 10-hour gap at the 10-minute cadence
        report = DataPreprocessor().from_raw_counters(
            {PerfDimension.CPU: cpu}, entity_id="gappy"
        )
        assert not report.window_sufficient

    def test_custom_interval_respected(self):
        cpu = np.ones(100)
        report = DataPreprocessor(target_interval_minutes=30.0).from_raw_counters(
            {PerfDimension.CPU: cpu}, entity_id="x", interval_minutes=30.0
        )
        assert report.trace.interval_minutes == 30.0


class TestCliExtendedFlags:
    def test_cli_store_flag(self, tmp_path, capsys):
        from repro.dma import RecommendationStore

        trace = full_trace(n=144 * 8, entity_id="cli-tracked")
        trace_path = tmp_path / "trace.json"
        dump_trace_json(trace, trace_path)
        store_path = tmp_path / "store.jsonl"
        assert cli_main([str(trace_path), "--store", str(store_path)]) == 0
        assert "recorded" in capsys.readouterr().out
        store = RecommendationStore(store_path)
        assert "cli-tracked" in store

    def test_cli_mi_with_file_sizes(self, tmp_path, capsys):
        trace = full_trace(n=144 * 8, entity_id="cli-mi")
        trace_path = tmp_path / "trace.json"
        dump_trace_json(trace, trace_path)
        exit_code = cli_main(
            [str(trace_path), "--deployment", "mi", "--file-sizes", "100", "100"]
        )
        assert exit_code == 0
        assert "Recommended SKU" in capsys.readouterr().out
