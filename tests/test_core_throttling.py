"""Unit tests for throttling-probability estimation (equation (1))."""

import numpy as np

from repro.core import (
    EmpiricalThrottlingEstimator,
    KdeThrottlingEstimator,
    capacity_vector,
    demand_matrix,
)
from repro.telemetry import PerfDimension

from .conftest import make_sku, make_trace

DIMS2 = (PerfDimension.CPU, PerfDimension.MEMORY)


class TestDemandMatrix:
    def test_columns_follow_dimension_order(self):
        trace = make_trace(np.array([1.0, 2.0]), memory_gb=np.array([3.0, 4.0]))
        matrix = demand_matrix(trace, DIMS2)
        np.testing.assert_allclose(matrix[:, 0], [1.0, 2.0])
        np.testing.assert_allclose(matrix[:, 1], [3.0, 4.0])

    def test_latency_column_inverted(self):
        trace = make_trace(np.ones(2), io_latency_ms=np.array([2.0, 4.0]))
        matrix = demand_matrix(trace, (PerfDimension.IO_LATENCY,))
        np.testing.assert_allclose(matrix[:, 0], [0.5, 0.25])

    def test_capacity_vector_latency_inverted(self):
        sku = make_sku(4)  # GP -> 5 ms floor
        caps = capacity_vector(sku.limits, (PerfDimension.CPU, PerfDimension.IO_LATENCY))
        np.testing.assert_allclose(caps, [4.0, 0.2])


class TestEmpiricalEstimator:
    def test_zero_when_always_satisfied(self):
        trace = make_trace(np.full(10, 1.0), memory_gb=np.full(10, 5.0))
        sku = make_sku(4)
        p = EmpiricalThrottlingEstimator().probability(trace, sku, DIMS2)
        assert p == 0.0

    def test_one_when_always_violated(self):
        trace = make_trace(np.full(10, 100.0), memory_gb=np.full(10, 5.0))
        sku = make_sku(4)
        assert EmpiricalThrottlingEstimator().probability(trace, sku, DIMS2) == 1.0

    def test_counts_violating_fraction(self):
        cpu = np.array([1.0, 1.0, 9.0, 9.0])  # half the samples exceed 4 vCores
        trace = make_trace(cpu, memory_gb=np.full(4, 5.0))
        assert EmpiricalThrottlingEstimator().probability(trace, make_sku(4), DIMS2) == 0.5

    def test_union_semantics_not_sum(self):
        """A sample violating two dimensions counts once (eq. (1) is a union)."""
        cpu = np.array([9.0, 1.0])
        memory = np.array([99.0, 1.0])  # violates together with CPU
        trace = make_trace(cpu, memory_gb=memory)
        assert EmpiricalThrottlingEstimator().probability(trace, make_sku(4), DIMS2) == 0.5

    def test_joint_dependence_matters(self):
        """Correlated vs anti-correlated spikes give different unions."""
        correlated = make_trace(
            np.array([9.0, 1.0, 1.0, 1.0]), memory_gb=np.array([99.0, 1.0, 1.0, 1.0])
        )
        anti = make_trace(
            np.array([9.0, 1.0, 1.0, 1.0]), memory_gb=np.array([1.0, 99.0, 1.0, 1.0])
        )
        estimator = EmpiricalThrottlingEstimator()
        sku = make_sku(4)
        assert estimator.probability(correlated, sku, DIMS2) == 0.25
        assert estimator.probability(anti, sku, DIMS2) == 0.5

    def test_batch_matches_scalar(self):
        trace = make_trace(
            np.random.default_rng(0).uniform(0, 10, 50),
            memory_gb=np.random.default_rng(1).uniform(0, 40, 50),
        )
        skus = [make_sku(v) for v in (2, 4, 8, 16)]
        estimator = EmpiricalThrottlingEstimator()
        batch = estimator.probabilities(trace, skus, DIMS2)
        singles = [estimator.probability(trace, sku, DIMS2) for sku in skus]
        np.testing.assert_allclose(batch, singles)

    def test_iops_override_applied(self):
        trace = make_trace(np.ones(4), data_iops=np.full(4, 1000.0))
        sku = make_sku(2)  # 640 IOPS nominal
        dims = (PerfDimension.CPU, PerfDimension.IOPS)
        estimator = EmpiricalThrottlingEstimator()
        assert estimator.probabilities(trace, [sku], dims)[0] == 1.0
        with_override = estimator.probabilities(
            trace, [sku], dims, iops_overrides={sku.name: 1500.0}
        )
        assert with_override[0] == 0.0

    def test_bigger_sku_never_throttles_more(self):
        rng = np.random.default_rng(2)
        trace = make_trace(rng.uniform(0, 20, 200), memory_gb=rng.uniform(0, 80, 200))
        estimator = EmpiricalThrottlingEstimator()
        probs = estimator.probabilities(
            trace, [make_sku(v) for v in (2, 4, 8, 16, 32)], DIMS2
        )
        assert np.all(np.diff(probs) <= 1e-12)

    def test_empty_sku_list(self):
        trace = make_trace(np.ones(3))
        assert EmpiricalThrottlingEstimator().probabilities(trace, [], DIMS2).size == 0


class TestKdeEstimator:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        trace = make_trace(rng.uniform(1, 3, 300), memory_gb=rng.uniform(5, 15, 300))
        p = KdeThrottlingEstimator().probability(trace, make_sku(4), DIMS2)
        assert 0.0 <= p <= 1.0

    def test_agrees_with_empirical_in_clear_cases(self):
        rng = np.random.default_rng(1)
        trace = make_trace(rng.uniform(0.5, 1.0, 400), memory_gb=rng.uniform(2, 4, 400))
        empirical = EmpiricalThrottlingEstimator().probability(trace, make_sku(16), DIMS2)
        kde = KdeThrottlingEstimator().probability(trace, make_sku(16), DIMS2)
        assert empirical == 0.0
        assert kde < 0.05

    def test_monotone_in_sku_size(self):
        rng = np.random.default_rng(2)
        trace = make_trace(rng.uniform(0, 20, 200), memory_gb=rng.uniform(0, 80, 200))
        probs = KdeThrottlingEstimator().probabilities(
            trace, [make_sku(v) for v in (2, 8, 32)], DIMS2
        )
        assert probs[0] >= probs[1] >= probs[2]


class TestDegenerateLatencyCapacity:
    """Regression: zero/degenerate latency limits must floor, not blow up."""

    class ZeroLatencyLimits:
        """Duck-typed limits with a degenerate zero latency floor."""

        vcores = 4.0
        max_memory_gb = 20.0
        max_data_iops = 1280.0
        max_log_rate_mbps = 15.0
        max_data_size_gb = 1024.0
        min_io_latency_ms = 0.0

    def test_subnormal_latency_limit_inverts_to_the_floor(self):
        sku = make_sku(4, latency_ms=1e-320)  # positive, finite, absurd
        caps = capacity_vector(sku.limits, (PerfDimension.IO_LATENCY,))
        assert np.all(np.isfinite(caps))
        assert caps[0] == 1.0 / 1e-9  # same floor the demand side applies

    def test_zero_latency_capacity_does_not_divide_by_zero(self):
        caps = capacity_vector(self.ZeroLatencyLimits(), (PerfDimension.IO_LATENCY,))
        assert caps[0] == 1.0 / 1e-9

    def test_demand_and_capacity_floors_zero_latency(self):
        demand, capacity = PerfDimension.IO_LATENCY.demand_and_capacity(
            2.0, self.ZeroLatencyLimits()
        )
        assert demand == 0.5
        assert capacity == 1.0 / 1e-9

    def test_probabilities_stay_finite_and_bounded(self):
        trace = make_trace(np.ones(8), io_latency_ms=np.full(8, 3.0))
        p = EmpiricalThrottlingEstimator().probability(
            trace,
            make_sku(4, latency_ms=1e-320),
            (PerfDimension.CPU, PerfDimension.IO_LATENCY),
        )
        assert np.isfinite(p)
        assert 0.0 <= p <= 1.0
