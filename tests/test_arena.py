"""Shared-memory data plane and compiled violation kernel.

Two contracts under test.  First, the arena lifecycle
(:mod:`repro.fleet.arena`): every segment the parent publishes is
unlinked exactly once -- on normal drain, on an abandoned stream, and
after a SIGKILL'd worker -- so ``/dev/shm`` ends every pass exactly as
it started.  Second, kernel neutrality (:mod:`repro.core.throttling`):
``kernel="numpy"``, ``"numba"`` and ``"auto"`` are speed decisions
only; violation counts, and every recommendation derived from them,
are byte-identical across kernels, with ``"auto"`` falling back to
numpy cleanly when numba is not installed.
"""

from __future__ import annotations

import os
import pickle
import signal
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.catalog import DeploymentType, SkuCatalog
from repro.core import DopplerEngine
from repro.core import throttling
from repro.core.throttling import (
    KERNEL_KINDS,
    batch_violation_counts,
    numba_available,
    resolve_kernel,
    use_kernel,
    violation_counts,
)
from repro.fleet import FleetCustomer, FleetEngine
from repro.fleet.arena import (
    ArenaRegistry,
    ArrayDescriptor,
    ChunkPublisher,
    ShmChunk,
    leaked_segments,
)
from repro.simulation import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def module_catalog() -> SkuCatalog:
    return SkuCatalog.default()


@pytest.fixture(scope="module")
def records(module_catalog):
    config = FleetConfig.paper_db(12, duration_days=3.0, interval_minutes=60.0)
    return [
        customer.record for customer in simulate_fleet(config, module_catalog, rng=37)
    ]


@pytest.fixture(scope="module")
def customers(records):
    return [
        FleetCustomer.from_record(record, customer_id=f"c{index:03d}")
        for index, record in enumerate(records)
    ]


@pytest.fixture()
def numpy_kernel():
    """Pin the numpy kernel and restore the selector state afterwards."""
    use_kernel("numpy")
    yield
    use_kernel("numpy")


def result_key(result):
    recommendation = result.recommendation
    return (
        result.customer_id,
        recommendation.sku.name if recommendation else None,
        repr(recommendation.expected_throttling) if recommendation else None,
        result.over_provisioned,
        result.error,
    )


# ----------------------------------------------------------------------
# Registry + descriptors
# ----------------------------------------------------------------------
class TestArenaRegistry:
    def test_refcount_release_unlinks_on_last_reference(self):
        registry = ArenaRegistry()
        segment = registry.create(64)
        assert segment.name in leaked_segments()
        registry.acquire(segment.name)
        registry.release(segment.name)  # 2 -> 1: still live
        assert segment.name in leaked_segments()
        registry.release(segment.name)  # 1 -> 0: unlinked
        assert segment.name not in leaked_segments()
        assert len(registry) == 0

    def test_release_after_close_all_is_a_noop(self):
        registry = ArenaRegistry()
        segment = registry.create(64)
        registry.close_all()
        assert segment.name not in leaked_segments()
        registry.release(segment.name)  # force-released already; no raise

    def test_close_all_unlinks_everything(self):
        registry = ArenaRegistry()
        names = [registry.create(32).name for _ in range(3)]
        registry.acquire(names[0])
        registry.close_all()
        live = leaked_segments()
        assert all(name not in live for name in names)

    def test_descriptor_round_trip_preserves_bytes(self):
        registry = ArenaRegistry()
        try:
            values = np.arange(24, dtype=np.float64).reshape(4, 6) * np.pi
            segment = registry.create(8 + values.nbytes)
            descriptor = ArrayDescriptor(segment.name, 8, (4, 6))
            assert descriptor.nbytes == values.nbytes
            descriptor.view(segment.buf)[:] = values
            # A descriptor is what crosses the queue: pickle it, attach
            # fresh, and the view must be byte-identical to the source.
            reloaded = pickle.loads(pickle.dumps(descriptor))
            from multiprocessing import shared_memory

            attached = shared_memory.SharedMemory(name=reloaded.segment)
            try:
                assert reloaded.view(attached.buf).tobytes() == values.tobytes()
            finally:
                attached.close()
        finally:
            registry.close_all()


# ----------------------------------------------------------------------
# Publisher round-trip (in-process)
# ----------------------------------------------------------------------
class TestChunkRoundTrip:
    def test_packed_chunk_rebuilds_byte_identical_customers(
        self, module_catalog, customers
    ):
        parent = DopplerEngine(catalog=module_catalog)
        publisher = ChunkPublisher(parent.ppm, "recommend")
        try:
            chunk = customers[:4]
            payload, token = publisher.pack(chunk)
            assert isinstance(payload, ShmChunk)
            assert len(payload) == len(chunk)
            worker = DopplerEngine(catalog=module_catalog)
            with payload.mapped(worker.ppm) as rebuilt:
                for original, copy in zip(chunk, rebuilt):
                    assert copy.customer_id == original.customer_id
                    assert copy.deployment is original.deployment
                    assert copy.current_sku_name == original.current_sku_name
                    assert set(copy.trace.dimensions) == set(original.trace.dimensions)
                    for dimension in original.trace.dimensions:
                        theirs = copy.trace[dimension]
                        ours = original.trace[dimension]
                        assert theirs.values.tobytes() == ours.values.tobytes()
                        assert theirs.interval_minutes == ours.interval_minutes
            publisher.release(token)
        finally:
            publisher.close()
        assert len(publisher.registry) == 0

    def test_adopted_demand_and_caps_match_worker_built(
        self, module_catalog, customers
    ):
        parent = DopplerEngine(catalog=module_catalog)
        publisher = ChunkPublisher(parent.ppm, "recommend")
        try:
            payload, _token = publisher.pack(customers[:2])
            worker = DopplerEngine(catalog=module_catalog)
            reference = DopplerEngine(catalog=module_catalog)
            with payload.mapped(worker.ppm) as rebuilt:
                for original, copy in zip(customers[:2], rebuilt):
                    spec = next(
                        s for s in payload.items if s.customer_id == copy.customer_id
                    )
                    dims = spec.trace.demand_dims
                    assert dims is not None
                    # Adopted demand matrix is the pre-exported one.
                    adopted = copy.trace.demand_matrix(dims)
                    built = original.trace.demand_matrix(dims)
                    assert adopted.tobytes() == built.tobytes()
                    # Adopted capacity matrix equals a cold build.
                    theirs = worker.ppm.capacity_matrix_for(copy.deployment, dims)
                    ours = reference.ppm.capacity_matrix_for(original.deployment, dims)
                    assert theirs.tobytes() == ours.tobytes()
        finally:
            publisher.close()

    def test_publisher_rejects_unknown_task(self, module_catalog):
        engine = DopplerEngine(catalog=module_catalog)
        with pytest.raises(ValueError, match="unknown batch task"):
            ChunkPublisher(engine.ppm, "train")


# ----------------------------------------------------------------------
# End-to-end lifecycle through the process backend
# ----------------------------------------------------------------------
class TestZeroCopyLifecycle:
    def test_zero_copy_recommend_matches_pickle_and_serial(
        self, module_catalog, records, customers
    ):
        baseline = leaked_segments()
        serial = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        serial.fit_fleet(records)
        expected = [result_key(r) for r in serial.recommend_fleet(customers)]
        for zero_copy in (False, True):
            fleet = FleetEngine(
                engine=serial.engine,
                backend="process",
                max_workers=2,
                chunk_size=3,
                zero_copy=zero_copy,
            )
            got = [result_key(r) for r in fleet.recommend_fleet(customers)]
            assert got == expected, f"zero_copy={zero_copy} diverged from serial"
        assert leaked_segments() == baseline

    def test_abandoned_stream_leaks_nothing(self, module_catalog, records, customers):
        baseline = leaked_segments()
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="process",
            max_workers=2,
            chunk_size=3,
            zero_copy=True,
        )
        fleet.fit_fleet(records)
        stream = fleet.recommend_fleet(customers)
        next(stream)
        stream.close()  # abandon mid-pass: pump finally must clean up
        assert leaked_segments() == baseline

    def test_killed_worker_leaves_no_segments(
        self, monkeypatch, module_catalog, records, customers
    ):
        """SIGKILL a worker mid-chunk; /dev/shm must end clean.

        The worker is killed *after* rebuilding the chunk (so it holds
        live mappings when it dies) by a patched ``_rebuild_item`` that
        forked children inherit.  The parent sees BrokenProcessPool;
        its pump's ``finally`` force-releases the arena, and the dead
        worker's mappings evaporate with its address space.
        """
        from repro.fleet import arena

        original = arena._rebuild_item

        def rebuild_then_die(kind, item):
            result = original(kind, item)
            if getattr(item, "customer_id", "") == "c005":
                os.kill(os.getpid(), signal.SIGKILL)
            return result

        baseline = leaked_segments()
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="process",
            max_workers=2,
            chunk_size=3,
            zero_copy=True,
        )
        fleet.fit_fleet(records)
        monkeypatch.setattr(arena, "_rebuild_item", rebuild_then_die)
        with pytest.raises(BrokenProcessPool):
            list(fleet.recommend_fleet(customers))
        assert leaked_segments() == baseline


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_unknown_kernel_message_lists_choices(self, numpy_kernel):
        with pytest.raises(ValueError) as excinfo:
            use_kernel("fortran")
        message = str(excinfo.value)
        assert "unknown violation kernel 'fortran'" in message
        for kind in KERNEL_KINDS:
            assert repr(kind) in message

    def test_auto_resolves_cleanly_without_numba(self, numpy_kernel):
        use_kernel("auto")
        resolved = resolve_kernel()
        if numba_available():
            assert resolved in ("numpy", "numba")
        else:
            assert resolved == "numpy"

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_explicit_numba_without_dependency_raises(self, numpy_kernel):
        with pytest.raises(ValueError, match="numba is not installed"):
            use_kernel("numba")

    def test_fleet_engine_validates_kernel_eagerly(self, module_catalog):
        with pytest.raises(ValueError, match="unknown violation kernel"):
            FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="simd")
        if not numba_available():
            with pytest.raises(ValueError, match="numba is not installed"):
                FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="numba")

    def test_engine_validation_does_not_flip_process_kernel(self, module_catalog):
        use_kernel("numpy")
        FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="auto")
        assert throttling._REQUESTED_KERNEL == "numpy"


AVAILABLE_KERNELS = ("numpy", "numba") if numba_available() else ("numpy",)


class TestKernelByteIdentity:
    @pytest.fixture()
    def problem(self):
        rng = np.random.default_rng(5)
        demands = rng.uniform(0.0, 120.0, size=(512, 6))
        caps = rng.uniform(30.0, 100.0, size=(24, 6))
        return demands, caps

    @pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
    def test_violation_counts_identical_across_kernels(
        self, kernel, problem, numpy_kernel
    ):
        demands, caps = problem
        use_kernel("numpy")
        reference = violation_counts(demands, caps)
        use_kernel(kernel)
        counts = violation_counts(demands, caps)
        assert counts.dtype == reference.dtype
        assert counts.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
    def test_batch_counts_identical_across_kernels(self, kernel, problem, numpy_kernel):
        rng = np.random.default_rng(11)
        blocks = [
            rng.uniform(0.0, 120.0, size=(n, 6)) for n in (64, 200, 512, 31)
        ]
        _, caps = problem
        use_kernel("numpy")
        reference = batch_violation_counts(blocks, caps)
        use_kernel(kernel)
        counts = batch_violation_counts(blocks, caps)
        assert counts.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("kernel", ["auto"] + list(AVAILABLE_KERNELS))
    def test_recommendations_identical_across_kernels(
        self, kernel, module_catalog, records, customers, numpy_kernel
    ):
        use_kernel("numpy")
        reference_fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        reference_fleet.fit_fleet(records)
        expected = [result_key(r) for r in reference_fleet.recommend_fleet(customers)]
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="serial",
            kernel=kernel,
        )
        fleet.fit_fleet(records)
        got = [result_key(r) for r in fleet.recommend_fleet(customers)]
        assert got == expected


# ----------------------------------------------------------------------
# Streaming tick plane
# ----------------------------------------------------------------------
class TestTickPlane:
    """Unit contracts of the watch's double-buffered ring arenas."""

    def make_batch(self):
        from repro.fleet import FleetSample
        from repro.telemetry import PerfDimension

        return [
            (
                7,
                FleetSample(
                    customer_id="cust-a",
                    values={
                        PerfDimension.CPU: 1.5,
                        PerfDimension.STORAGE: 120.0,
                    },
                ),
            ),
            (
                9,
                FleetSample(
                    customer_id="cust-b",
                    values={PerfDimension.MEMORY: 8.25},
                    deployment=DeploymentType.SQL_MI,
                ),
            ),
            # Irregular row: a non-float value must travel verbatim so
            # worker-side validation raises exactly what serial would.
            (
                11,
                FleetSample(
                    customer_id="cust-c",
                    values={PerfDimension.CPU: "not-a-number"},
                ),
            ),
        ]

    def test_tick_frame_round_trip_preserves_batch(self):
        from repro.fleet.arena import TickPlane, unpack_tick

        plane = TickPlane(window=16)
        try:
            batch = self.make_batch()
            frame = plane.pack_tick(0, 0, batch)
            rebuilt = unpack_tick(frame)
            assert [seq for seq, _ in rebuilt] == [seq for seq, _ in batch]
            for (_, original), (_, copy) in zip(batch, rebuilt):
                assert copy.customer_id == original.customer_id
                assert copy.deployment == original.deployment
                assert copy.values == original.values
        finally:
            plane.close()
        assert leaked_segments() == []

    def test_slots_are_reused_across_ticks_not_recreated(self):
        from repro.fleet.arena import TickPlane

        plane = TickPlane(window=16)
        try:
            batch = self.make_batch()
            first = plane.pack_tick(0, 0, batch)
            # Same parity two ticks later: same segment, new generation.
            third = plane.pack_tick(0, 2, batch)
            assert third.segment == first.segment
            assert third.generation != first.generation
            # Opposite parity lives in the sibling buffer.
            second = plane.pack_tick(0, 1, batch)
            assert second.segment != first.segment
        finally:
            plane.close()

    def test_generation_tag_stops_a_slow_reader_on_recycled_slot(self):
        from repro.fleet.arena import TickPlane, unpack_tick

        plane = TickPlane(window=16)
        try:
            batch = self.make_batch()
            stale = plane.pack_tick(0, 0, batch)
            plane.pack_tick(0, 2, batch)  # recycles the parity-0 slot
            with pytest.raises(RuntimeError, match="recycled"):
                unpack_tick(stale)
        finally:
            plane.close()

    def test_result_columns_round_trip_and_memoized_recommendation(self):
        from repro.fleet import FleetLiveUpdate
        from repro.fleet.arena import TickPlane, write_result_columns
        from repro.streaming.drift import DriftReport
        from repro.streaming.live import LiveUpdate

        plane = TickPlane(window=16)
        try:
            batch = self.make_batch()[:2]
            recommendation = object()  # identity is what crosses ticks
            shipped: dict = {}

            def emissions_for(frame):
                return [
                    (
                        7,
                        FleetLiveUpdate(
                            customer_id="cust-a",
                            update=LiveUpdate(
                                n_seen=12,
                                n_window=12,
                                refreshed=True,
                                drift=DriftReport(
                                    max_divergence=0.25,
                                    worst_sku="GP_S_Gen5_2",
                                    threshold=0.1,
                                ),
                                recommendation=recommendation,
                            ),
                        ),
                    ),
                    (
                        9,
                        FleetLiveUpdate(
                            customer_id="cust-b",
                            update=None,
                            error="ValueError: boom",
                        ),
                    ),
                ]

            frame = plane.pack_tick(0, 0, batch)
            reply = write_result_columns(frame, emissions_for(frame), shipped)
            decoded = dict(plane.read_results(reply))
            update = decoded[7].update
            assert update.n_seen == 12 and update.refreshed
            assert update.drift.worst_sku == "GP_S_Gen5_2"
            assert update.recommendation is recommendation
            assert decoded[9].error == "ValueError: boom"
            assert decoded[9].update is None
            # Second tick: the unchanged recommendation crosses as a
            # token and resolves from the parent's memo by identity.
            frame2 = plane.pack_tick(0, 1, batch)
            reply2 = write_result_columns(frame2, emissions_for(frame2), shipped)
            assert reply2.sidecar[0][3] == 1  # token, not the object
            decoded2 = dict(plane.read_results(reply2))
            assert decoded2[7].update.recommendation is recommendation
        finally:
            plane.close()

    def test_read_results_of_a_dropped_shard_is_stale(self):
        from repro.fleet import FleetLiveUpdate
        from repro.fleet.arena import TickPlane, write_result_columns

        plane = TickPlane(window=16)
        try:
            batch = self.make_batch()[:1]
            frame = plane.pack_tick(3, 0, batch)
            reply = write_result_columns(
                frame,
                [(7, FleetLiveUpdate(customer_id="cust-a", update=None, error="x"))],
                {},
            )
            plane.drop_shard(3)
            assert plane.read_results(reply) is None
        finally:
            plane.close()

    def test_state_frame_round_trip_matches_plain_records(self, module_catalog):
        from repro.fleet.arena import TickPlane, adopt_state_frame, pack_state_records
        from repro.store import CustomerStateRecord
        from repro.streaming import LiveRecommender
        from repro.telemetry import PerfDimension

        engine = DopplerEngine(catalog=module_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=8, min_refresh_samples=4
        )
        rng = np.random.default_rng(3)
        for index in range(10):
            live.observe(
                {
                    PerfDimension.CPU: float(abs(rng.normal(1.5, 0.4))),
                    PerfDimension.MEMORY: float(abs(rng.normal(6.0, 1.0))),
                    PerfDimension.IOPS: float(abs(rng.normal(200.0, 50.0))),
                    PerfDimension.IO_LATENCY: float(abs(rng.normal(6.0, 0.5)) + 0.5),
                    PerfDimension.LOG_RATE: float(abs(rng.normal(2.0, 0.5))),
                    PerfDimension.STORAGE: 120.0,
                }
            )
        records = [
            CustomerStateRecord("cust-a", live.snapshot_state()),
            CustomerStateRecord("cust-q", None, quarantined=True),
        ]
        plane = TickPlane(window=8)
        try:
            spec = plane.offer_frame(len(records))
            frame = pack_state_records(records, spec)
            assert frame is not None
            rebuilt = adopt_state_frame(frame)
            assert [r.customer_id for r in rebuilt] == ["cust-a", "cust-q"]
            assert rebuilt[1].quarantined and rebuilt[1].state is None
            original, copy = records[0].state, rebuilt[0].state
            # Field-wise equality: whole-object pickle bytes can differ
            # by memoized sharing alone, so compare each field.
            from dataclasses import fields

            for field in fields(original):
                assert pickle.dumps(getattr(copy, field.name)) == pickle.dumps(
                    getattr(original, field.name)
                ), field.name
            plane.release(spec.segment)
        finally:
            plane.close()
        assert leaked_segments() == []

    def test_oversized_state_falls_back_to_plain(self, module_catalog):
        from repro.fleet.arena import StateFrameSpec, TickPlane, pack_state_records
        from repro.store import CustomerStateRecord
        from repro.streaming import LiveRecommender
        from repro.telemetry import PerfDimension

        engine = DopplerEngine(catalog=module_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=8, min_refresh_samples=4
        )
        for _ in range(6):
            live.observe(
                {
                    PerfDimension.CPU: 1.0,
                    PerfDimension.MEMORY: 4.0,
                    PerfDimension.IOPS: 100.0,
                    PerfDimension.IO_LATENCY: 5.0,
                    PerfDimension.LOG_RATE: 1.0,
                    PerfDimension.STORAGE: 120.0,
                }
            )
        records = [CustomerStateRecord("cust-a", live.snapshot_state())]
        plane = TickPlane(window=8)
        try:
            spec = plane.offer_frame(1)
            tiny = StateFrameSpec(segment=spec.segment, capacity=32)
            assert pack_state_records(records, tiny) is None
            plane.release(spec.segment)
        finally:
            plane.close()
