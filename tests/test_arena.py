"""Shared-memory data plane and compiled violation kernel.

Two contracts under test.  First, the arena lifecycle
(:mod:`repro.fleet.arena`): every segment the parent publishes is
unlinked exactly once -- on normal drain, on an abandoned stream, and
after a SIGKILL'd worker -- so ``/dev/shm`` ends every pass exactly as
it started.  Second, kernel neutrality (:mod:`repro.core.throttling`):
``kernel="numpy"``, ``"numba"`` and ``"auto"`` are speed decisions
only; violation counts, and every recommendation derived from them,
are byte-identical across kernels, with ``"auto"`` falling back to
numpy cleanly when numba is not installed.
"""

from __future__ import annotations

import os
import pickle
import signal
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.catalog import DeploymentType, SkuCatalog
from repro.core import DopplerEngine
from repro.core import throttling
from repro.core.throttling import (
    KERNEL_KINDS,
    batch_violation_counts,
    numba_available,
    resolve_kernel,
    use_kernel,
    violation_counts,
)
from repro.fleet import FleetCustomer, FleetEngine
from repro.fleet.arena import (
    ArenaRegistry,
    ArrayDescriptor,
    ChunkPublisher,
    ShmChunk,
    leaked_segments,
)
from repro.simulation import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def module_catalog() -> SkuCatalog:
    return SkuCatalog.default()


@pytest.fixture(scope="module")
def records(module_catalog):
    config = FleetConfig.paper_db(12, duration_days=3.0, interval_minutes=60.0)
    return [
        customer.record for customer in simulate_fleet(config, module_catalog, rng=37)
    ]


@pytest.fixture(scope="module")
def customers(records):
    return [
        FleetCustomer.from_record(record, customer_id=f"c{index:03d}")
        for index, record in enumerate(records)
    ]


@pytest.fixture()
def numpy_kernel():
    """Pin the numpy kernel and restore the selector state afterwards."""
    use_kernel("numpy")
    yield
    use_kernel("numpy")


def result_key(result):
    recommendation = result.recommendation
    return (
        result.customer_id,
        recommendation.sku.name if recommendation else None,
        repr(recommendation.expected_throttling) if recommendation else None,
        result.over_provisioned,
        result.error,
    )


# ----------------------------------------------------------------------
# Registry + descriptors
# ----------------------------------------------------------------------
class TestArenaRegistry:
    def test_refcount_release_unlinks_on_last_reference(self):
        registry = ArenaRegistry()
        segment = registry.create(64)
        assert segment.name in leaked_segments()
        registry.acquire(segment.name)
        registry.release(segment.name)  # 2 -> 1: still live
        assert segment.name in leaked_segments()
        registry.release(segment.name)  # 1 -> 0: unlinked
        assert segment.name not in leaked_segments()
        assert len(registry) == 0

    def test_release_after_close_all_is_a_noop(self):
        registry = ArenaRegistry()
        segment = registry.create(64)
        registry.close_all()
        assert segment.name not in leaked_segments()
        registry.release(segment.name)  # force-released already; no raise

    def test_close_all_unlinks_everything(self):
        registry = ArenaRegistry()
        names = [registry.create(32).name for _ in range(3)]
        registry.acquire(names[0])
        registry.close_all()
        live = leaked_segments()
        assert all(name not in live for name in names)

    def test_descriptor_round_trip_preserves_bytes(self):
        registry = ArenaRegistry()
        try:
            values = np.arange(24, dtype=np.float64).reshape(4, 6) * np.pi
            segment = registry.create(8 + values.nbytes)
            descriptor = ArrayDescriptor(segment.name, 8, (4, 6))
            assert descriptor.nbytes == values.nbytes
            descriptor.view(segment.buf)[:] = values
            # A descriptor is what crosses the queue: pickle it, attach
            # fresh, and the view must be byte-identical to the source.
            reloaded = pickle.loads(pickle.dumps(descriptor))
            from multiprocessing import shared_memory

            attached = shared_memory.SharedMemory(name=reloaded.segment)
            try:
                assert reloaded.view(attached.buf).tobytes() == values.tobytes()
            finally:
                attached.close()
        finally:
            registry.close_all()


# ----------------------------------------------------------------------
# Publisher round-trip (in-process)
# ----------------------------------------------------------------------
class TestChunkRoundTrip:
    def test_packed_chunk_rebuilds_byte_identical_customers(
        self, module_catalog, customers
    ):
        parent = DopplerEngine(catalog=module_catalog)
        publisher = ChunkPublisher(parent.ppm, "recommend")
        try:
            chunk = customers[:4]
            payload, token = publisher.pack(chunk)
            assert isinstance(payload, ShmChunk)
            assert len(payload) == len(chunk)
            worker = DopplerEngine(catalog=module_catalog)
            with payload.mapped(worker.ppm) as rebuilt:
                for original, copy in zip(chunk, rebuilt):
                    assert copy.customer_id == original.customer_id
                    assert copy.deployment is original.deployment
                    assert copy.current_sku_name == original.current_sku_name
                    assert set(copy.trace.dimensions) == set(original.trace.dimensions)
                    for dimension in original.trace.dimensions:
                        theirs = copy.trace[dimension]
                        ours = original.trace[dimension]
                        assert theirs.values.tobytes() == ours.values.tobytes()
                        assert theirs.interval_minutes == ours.interval_minutes
            publisher.release(token)
        finally:
            publisher.close()
        assert len(publisher.registry) == 0

    def test_adopted_demand_and_caps_match_worker_built(
        self, module_catalog, customers
    ):
        parent = DopplerEngine(catalog=module_catalog)
        publisher = ChunkPublisher(parent.ppm, "recommend")
        try:
            payload, _token = publisher.pack(customers[:2])
            worker = DopplerEngine(catalog=module_catalog)
            reference = DopplerEngine(catalog=module_catalog)
            with payload.mapped(worker.ppm) as rebuilt:
                for original, copy in zip(customers[:2], rebuilt):
                    spec = next(
                        s for s in payload.items if s.customer_id == copy.customer_id
                    )
                    dims = spec.trace.demand_dims
                    assert dims is not None
                    # Adopted demand matrix is the pre-exported one.
                    adopted = copy.trace.demand_matrix(dims)
                    built = original.trace.demand_matrix(dims)
                    assert adopted.tobytes() == built.tobytes()
                    # Adopted capacity matrix equals a cold build.
                    theirs = worker.ppm.capacity_matrix_for(copy.deployment, dims)
                    ours = reference.ppm.capacity_matrix_for(original.deployment, dims)
                    assert theirs.tobytes() == ours.tobytes()
        finally:
            publisher.close()

    def test_publisher_rejects_unknown_task(self, module_catalog):
        engine = DopplerEngine(catalog=module_catalog)
        with pytest.raises(ValueError, match="unknown batch task"):
            ChunkPublisher(engine.ppm, "train")


# ----------------------------------------------------------------------
# End-to-end lifecycle through the process backend
# ----------------------------------------------------------------------
class TestZeroCopyLifecycle:
    def test_zero_copy_recommend_matches_pickle_and_serial(
        self, module_catalog, records, customers
    ):
        baseline = leaked_segments()
        serial = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        serial.fit_fleet(records)
        expected = [result_key(r) for r in serial.recommend_fleet(customers)]
        for zero_copy in (False, True):
            fleet = FleetEngine(
                engine=serial.engine,
                backend="process",
                max_workers=2,
                chunk_size=3,
                zero_copy=zero_copy,
            )
            got = [result_key(r) for r in fleet.recommend_fleet(customers)]
            assert got == expected, f"zero_copy={zero_copy} diverged from serial"
        assert leaked_segments() == baseline

    def test_abandoned_stream_leaks_nothing(self, module_catalog, records, customers):
        baseline = leaked_segments()
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="process",
            max_workers=2,
            chunk_size=3,
            zero_copy=True,
        )
        fleet.fit_fleet(records)
        stream = fleet.recommend_fleet(customers)
        next(stream)
        stream.close()  # abandon mid-pass: pump finally must clean up
        assert leaked_segments() == baseline

    def test_killed_worker_leaves_no_segments(
        self, monkeypatch, module_catalog, records, customers
    ):
        """SIGKILL a worker mid-chunk; /dev/shm must end clean.

        The worker is killed *after* rebuilding the chunk (so it holds
        live mappings when it dies) by a patched ``_rebuild_item`` that
        forked children inherit.  The parent sees BrokenProcessPool;
        its pump's ``finally`` force-releases the arena, and the dead
        worker's mappings evaporate with its address space.
        """
        from repro.fleet import arena

        original = arena._rebuild_item

        def rebuild_then_die(kind, item):
            result = original(kind, item)
            if getattr(item, "customer_id", "") == "c005":
                os.kill(os.getpid(), signal.SIGKILL)
            return result

        baseline = leaked_segments()
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="process",
            max_workers=2,
            chunk_size=3,
            zero_copy=True,
        )
        fleet.fit_fleet(records)
        monkeypatch.setattr(arena, "_rebuild_item", rebuild_then_die)
        with pytest.raises(BrokenProcessPool):
            list(fleet.recommend_fleet(customers))
        assert leaked_segments() == baseline


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_unknown_kernel_message_lists_choices(self, numpy_kernel):
        with pytest.raises(ValueError) as excinfo:
            use_kernel("fortran")
        message = str(excinfo.value)
        assert "unknown violation kernel 'fortran'" in message
        for kind in KERNEL_KINDS:
            assert repr(kind) in message

    def test_auto_resolves_cleanly_without_numba(self, numpy_kernel):
        use_kernel("auto")
        resolved = resolve_kernel()
        if numba_available():
            assert resolved in ("numpy", "numba")
        else:
            assert resolved == "numpy"

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_explicit_numba_without_dependency_raises(self, numpy_kernel):
        with pytest.raises(ValueError, match="numba is not installed"):
            use_kernel("numba")

    def test_fleet_engine_validates_kernel_eagerly(self, module_catalog):
        with pytest.raises(ValueError, match="unknown violation kernel"):
            FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="simd")
        if not numba_available():
            with pytest.raises(ValueError, match="numba is not installed"):
                FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="numba")

    def test_engine_validation_does_not_flip_process_kernel(self, module_catalog):
        use_kernel("numpy")
        FleetEngine(engine=DopplerEngine(catalog=module_catalog), kernel="auto")
        assert throttling._REQUESTED_KERNEL == "numpy"


AVAILABLE_KERNELS = ("numpy", "numba") if numba_available() else ("numpy",)


class TestKernelByteIdentity:
    @pytest.fixture()
    def problem(self):
        rng = np.random.default_rng(5)
        demands = rng.uniform(0.0, 120.0, size=(512, 6))
        caps = rng.uniform(30.0, 100.0, size=(24, 6))
        return demands, caps

    @pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
    def test_violation_counts_identical_across_kernels(
        self, kernel, problem, numpy_kernel
    ):
        demands, caps = problem
        use_kernel("numpy")
        reference = violation_counts(demands, caps)
        use_kernel(kernel)
        counts = violation_counts(demands, caps)
        assert counts.dtype == reference.dtype
        assert counts.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
    def test_batch_counts_identical_across_kernels(self, kernel, problem, numpy_kernel):
        rng = np.random.default_rng(11)
        blocks = [
            rng.uniform(0.0, 120.0, size=(n, 6)) for n in (64, 200, 512, 31)
        ]
        _, caps = problem
        use_kernel("numpy")
        reference = batch_violation_counts(blocks, caps)
        use_kernel(kernel)
        counts = batch_violation_counts(blocks, caps)
        assert counts.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("kernel", ["auto"] + list(AVAILABLE_KERNELS))
    def test_recommendations_identical_across_kernels(
        self, kernel, module_catalog, records, customers, numpy_kernel
    ):
        use_kernel("numpy")
        reference_fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        reference_fleet.fit_fleet(records)
        expected = [result_key(r) for r in reference_fleet.recommend_fleet(customers)]
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="serial",
            kernel=kernel,
        )
        fleet.fit_fleet(records)
        got = [result_key(r) for r in fleet.recommend_fleet(customers)]
        assert got == expected
