"""Self-healing watch runtime: fault injection, recovery, quarantine.

The contract under test (ISSUE tentpole): a watch whose worker is
killed, hung, or silenced at a deterministic
:class:`~repro.faults.FaultPlan` coordinate restores the shard from
its last checkpoint (or in-parent snapshot), replays the
un-checkpointed feed suffix, and emits a stream **byte-identical** to
the uninterrupted run -- on every execution backend.  Past
``max_restarts`` the shard quarantines instead; a hung worker never
blocks teardown; corrupt store blobs quarantine one customer, not the
watch.  Degraded-mode serving tests live at the bottom; resume
byte-identity without faults is ``test_checkpoint_resume.py``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import (
    AdmissionError,
    DeploymentType,
    FaultPlan,
    FleetEngine,
    RecommendationService,
    ServeConfig,
)
from repro.core import DopplerEngine
from repro.fleet import (
    CheckpointConfig,
    FleetCustomer,
    FleetSample,
    SupervisionConfig,
    WatchConfig,
)
from repro.fleet import backends as backends_module
from repro.store import FleetStore, StoreCorruptionError

from .test_fleet_backends import canonical_updates, interleaved_feed, live_samples

#: Small ticks so short feeds still span many fault coordinates.
WATCH = WatchConfig(window=16, min_refresh_samples=8, tick_samples=8)


def make_fleet(small_catalog, backend="serial", max_workers=None):
    return FleetEngine(
        engine=DopplerEngine(catalog=small_catalog),
        backend=backend,
        max_workers=max_workers,
    )


def supervised(faults, **changes):
    defaults = dict(backoff_base_s=0.0, snapshot_every_ticks=2, faults=faults)
    defaults.update(changes)
    return SupervisionConfig(**defaults)


# ----------------------------------------------------------------------
# FaultPlan and SupervisionConfig units
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_noop_by_default(self):
        assert FaultPlan().is_noop()
        assert not FaultPlan(kill_worker=((0, 1),)).is_noop()
        assert not FaultPlan(corrupt_snapshots=("cust-1",)).is_noop()

    def test_coordinate_lookups(self):
        plan = FaultPlan(
            kill_worker=((1, 3),),
            delay_shard=((2, 4, 1.5),),
            drop_result=((0, 5),),
        )
        assert plan.kill_at(1, 3) and not plan.kill_at(1, 4)
        assert plan.delay_at(2, 4) == 1.5 and plan.delay_at(2, 5) == 0.0
        assert plan.drop_at(0, 5) and not plan.drop_at(1, 5)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(kill_worker=((-1, 0),))
        with pytest.raises(ValueError, match="delay seconds"):
            FaultPlan(delay_shard=((0, 0, 0.0),))

    def test_plans_are_picklable_by_value(self):
        import pickle

        plan = FaultPlan(kill_worker=[(1, 2)])  # list input normalized
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSupervisionConfig:
    def test_backoff_is_capped_exponential(self):
        config = SupervisionConfig(backoff_base_s=0.1, backoff_cap_s=0.5)
        assert config.backoff_delay(0) == 0.0
        assert config.backoff_delay(1) == pytest.approx(0.1)
        assert config.backoff_delay(2) == pytest.approx(0.2)
        assert config.backoff_delay(3) == pytest.approx(0.4)
        assert config.backoff_delay(4) == 0.5  # capped
        assert config.backoff_delay(50) == 0.5

    def test_zero_base_disables_backoff(self):
        config = SupervisionConfig(backoff_base_s=0.0, backoff_cap_s=1.0)
        assert config.backoff_delay(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisionConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff_cap_s"):
            SupervisionConfig(backoff_base_s=1.0, backoff_cap_s=0.5)
        with pytest.raises(ValueError, match="tick_deadline_s"):
            SupervisionConfig(tick_deadline_s=0.0)
        with pytest.raises(ValueError, match="snapshot_every_ticks"):
            SupervisionConfig(snapshot_every_ticks=0)
        with pytest.raises(ValueError, match="faults"):
            SupervisionConfig(faults="kill everything")

    def test_watch_config_validates_supervision(self):
        with pytest.raises(ValueError, match="supervision"):
            WatchConfig(supervision="yes please")


# ----------------------------------------------------------------------
# Kill-at-tick byte-identity, all backends
# ----------------------------------------------------------------------
class TestKillRecoveryIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_kill_at_random_tick_is_byte_identical(self, backend, small_catalog):
        """Property test: kill coordinates drawn per backend, output parity."""
        feed = interleaved_feed(6, 32, seed=11)
        baseline = canonical_updates(
            make_fleet(small_catalog).watch_fleet(feed, config=WATCH)
        )
        rng = np.random.default_rng(hash(backend) % 2**32)
        # Serial pools have one shard; thread/process watches get 3.
        shard_id = 0 if backend == "serial" else 1
        ticks = rng.integers(0, 4, size=2 if backend == "serial" else 1)
        for tick in ticks:
            fleet = make_fleet(small_catalog)
            config = WATCH.replace(
                backend=backend,
                max_workers=3,
                supervision=supervised(FaultPlan(kill_worker=((shard_id, int(tick)),))),
            )
            assert canonical_updates(fleet.watch_fleet(feed, config=config)) == baseline
            stats = fleet.watch_supervision_stats()
            assert stats is not None
            assert stats.n_restarts == 1
            assert stats.quarantined_shards == ()
            (event,) = [e for e in stats.events if e.kind == "worker_restart"]
            assert event.shard_id == shard_id
            assert event.reason in ("death", "killed")

    def test_checkpointed_kill_restores_from_the_store(self, small_catalog, tmp_path):
        """With a durable store attached, recovery baselines come from it
        and the restart lands in the event log."""
        feed = interleaved_feed(6, 32, seed=11)
        baseline = canonical_updates(
            make_fleet(small_catalog).watch_fleet(feed, config=WATCH)
        )
        store = FleetStore(str(tmp_path / "supervised.db"))
        fleet = make_fleet(small_catalog)
        config = WATCH.replace(
            backend="process",
            max_workers=3,
            checkpoint=CheckpointConfig(store=store, every_ticks=2),
            supervision=supervised(FaultPlan(kill_worker=((1, 2),))),
        )
        assert canonical_updates(fleet.watch_fleet(feed, config=config)) == baseline
        stats = fleet.watch_supervision_stats()
        assert stats.n_restarts == 1
        kinds = [event.kind for event in store.events()]
        assert kinds.count("worker_restart") == 1
        store.close()

    def test_healthy_watch_reports_zero_counters(self, small_catalog):
        feed = interleaved_feed(4, 16, seed=3)
        fleet = make_fleet(small_catalog)
        list(fleet.watch_fleet(feed, config=WATCH.replace(backend="process", max_workers=2)))
        stats = fleet.watch_supervision_stats()
        assert stats is not None
        assert stats.n_restarts == 0
        assert stats.n_deadline_kills == 0
        assert stats.n_replayed_ticks == 0
        assert stats.quarantined_shards == ()
        assert stats.events == ()


# ----------------------------------------------------------------------
# Deadlines: dropped results and hung workers
# ----------------------------------------------------------------------
class TestDeadlines:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_dropped_result_is_detected_by_deadline(self, backend, small_catalog):
        """A worker that processes but never replies is only visible as a
        deadline overrun; the restart must still keep byte-identity."""
        feed = interleaved_feed(6, 32, seed=11)
        baseline = canonical_updates(
            make_fleet(small_catalog).watch_fleet(feed, config=WATCH)
        )
        fleet = make_fleet(small_catalog)
        config = WATCH.replace(
            backend=backend,
            max_workers=3,
            supervision=supervised(
                FaultPlan(drop_result=((1, 1),)), tick_deadline_s=1.5
            ),
        )
        assert canonical_updates(fleet.watch_fleet(feed, config=config)) == baseline
        stats = fleet.watch_supervision_stats()
        assert stats.n_restarts == 1
        assert stats.n_deadline_kills == 1

    def test_hung_worker_never_blocks_teardown(
        self, small_catalog, monkeypatch
    ):
        """A worker sleeping far past its deadline is forcibly stopped
        (escalating join -> terminate -> kill) and the watch completes."""
        monkeypatch.setattr(backends_module, "_JOIN_TIMEOUT_S", 0.2)
        feed = interleaved_feed(6, 32, seed=11)
        baseline = canonical_updates(
            make_fleet(small_catalog).watch_fleet(feed, config=WATCH)
        )
        fleet = make_fleet(small_catalog)
        config = WATCH.replace(
            backend="process",
            max_workers=3,
            supervision=supervised(
                FaultPlan(delay_shard=((1, 1, 60.0),)), tick_deadline_s=1.0
            ),
        )
        assert canonical_updates(fleet.watch_fleet(feed, config=config)) == baseline
        stats = fleet.watch_supervision_stats()
        assert stats.n_deadline_kills == 1
        assert stats.n_forced_stops >= 1


# ----------------------------------------------------------------------
# Restart exhaustion: shard quarantine
# ----------------------------------------------------------------------
class TestShardQuarantine:
    def test_exhausted_restarts_quarantine_the_shard(self, small_catalog, tmp_path):
        feed = interleaved_feed(6, 32, seed=11)
        store = FleetStore(str(tmp_path / "quarantine.db"))
        fleet = make_fleet(small_catalog)
        kills = tuple((1, tick) for tick in range(64))
        config = WATCH.replace(
            backend="process",
            max_workers=3,
            checkpoint=CheckpointConfig(store=store, every_ticks=2),
            supervision=supervised(
                FaultPlan(kill_worker=kills), max_restarts=2, snapshot_every_ticks=1
            ),
        )
        updates = list(fleet.watch_fleet(feed, config=config))
        stats = fleet.watch_supervision_stats()
        assert stats.n_restarts == 2  # budget consumed...
        assert stats.quarantined_shards == (1,)  # ...then quarantine
        errors = [u for u in updates if u.error and "quarantined" in u.error]
        assert errors  # in-flight customers got an answer, not silence
        assert all("after 2 worker restarts" in u.error for u in errors)
        kinds = [event.kind for event in stats.events]
        assert kinds == ["worker_restart", "worker_restart", "shard_quarantine"]
        store_kinds = [event.kind for event in store.events()]
        assert store_kinds.count("shard_quarantine") == 1
        store.close()

    def test_other_shards_keep_streaming_after_quarantine(self, small_catalog):
        feed = interleaved_feed(6, 32, seed=11)
        fleet = make_fleet(small_catalog)
        kills = tuple((1, tick) for tick in range(64))
        config = WATCH.replace(
            backend="thread",
            max_workers=3,
            supervision=supervised(
                FaultPlan(kill_worker=kills), max_restarts=1, snapshot_every_ticks=1
            ),
        )
        updates = list(fleet.watch_fleet(feed, config=config))
        healthy = [u for u in updates if u.update is not None]
        assert healthy  # the un-quarantined shards' customers still emit


# ----------------------------------------------------------------------
# Store corruption: per-customer quarantine, not watch abort
# ----------------------------------------------------------------------
class TestCorruptionQuarantine:
    def run_checkpointed(self, small_catalog, store, feed):
        config = WATCH.replace(
            checkpoint=CheckpointConfig(store=store, every_ticks=2)
        )
        return list(make_fleet(small_catalog).watch_fleet(feed, config=config))

    def test_corrupt_blob_quarantines_one_customer_on_resume(
        self, small_catalog, tmp_path
    ):
        feed = interleaved_feed(4, 24, seed=5)
        store = FleetStore(str(tmp_path / "corrupt.db"))
        self.run_checkpointed(small_catalog, store, feed)
        plan = FaultPlan(corrupt_snapshots=("cust-1",))
        assert plan.corrupt_store(store) == 1
        with pytest.raises(StoreCorruptionError):
            store.load_customer_state("cust-1")
        # Resume must survive the bad blob: cust-1 quarantines with an
        # audit event, everyone else restores normally.
        config = WATCH.replace(checkpoint=CheckpointConfig(store=store, every_ticks=2))
        resumed = list(
            make_fleet(small_catalog).watch_fleet(feed, config=config, resume_from=store)
        )
        assert resumed == []  # the killed run had already drained the feed
        quarantines = [
            event
            for event in store.events()
            if event.kind == "quarantine" and event.customer_id == "cust-1"
        ]
        assert quarantines
        assert "corrupt_state" in quarantines[-1].detail  # JSON detail blob
        store.close()

    def test_corrupt_customer_state_returns_false_for_unknown(self, tmp_path):
        store = FleetStore(str(tmp_path / "empty.db"))
        assert store.corrupt_customer_state("nobody") is False
        store.close()

    def test_iter_customer_states_callback_skips_corrupt_rows(
        self, small_catalog, tmp_path
    ):
        feed = interleaved_feed(3, 24, seed=5)
        store = FleetStore(str(tmp_path / "iter.db"))
        self.run_checkpointed(small_catalog, store, feed)
        FaultPlan(corrupt_snapshots=("cust-0",)).corrupt_store(store)
        seen, bad = [], []
        for record in store.iter_customer_states(
            on_corrupt=lambda cid, exc: bad.append(cid)
        ):
            seen.append(record.customer_id)
        assert bad == ["cust-0"]
        assert "cust-0" not in seen and "cust-1" in seen
        # Without the callback the iterator propagates the error.
        with pytest.raises(StoreCorruptionError):
            list(store.iter_customer_states())
        store.close()


# ----------------------------------------------------------------------
# Degraded-mode serving
# ----------------------------------------------------------------------
class TestDegradedServing:
    WATCH = WatchConfig(window=8, min_refresh_samples=4)

    def make_service(self, small_catalog, store=None, **overrides):
        config = ServeConfig(
            n_shards=1,
            max_batch=8,
            max_delay_ms=2.0,
            queue_limit=4096,
            slo_ms=60_000.0,
            watch=self.WATCH,
            **overrides,
        )
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog))
        return RecommendationService(fleet, config, store=store)

    def warm_samples(self, n, seed=3):
        rng = np.random.default_rng(seed)
        return [
            FleetSample(customer_id="alpha", values=values)
            for values in live_samples(n, rng)
        ]

    def break_shard(self, service, shard_id=0):
        def boom(batch):
            raise RuntimeError("injected shard failure")

        service._shards[shard_id].process = boom

    def test_failed_flush_defers_and_restore_replays(self, small_catalog, tmp_path):
        store = FleetStore(str(tmp_path / "serve.db"))
        service = self.make_service(small_catalog, store=store)
        samples = self.warm_samples(8)

        async def scenario():
            async with service:
                for sample in samples[:6]:
                    update = await service.observe(sample)
                    assert not update.deferred
                await service.checkpoint()
                self.break_shard(service)
                deferred = await service.observe(samples[6])
                assert deferred.deferred and not deferred.ok
                assert "buffered" in deferred.error
                # Further observes short-circuit into the replay buffer.
                also_deferred = await service.observe(samples[7])
                assert also_deferred.deferred
                stats = service.stats()
                assert stats["degraded"]["shards"] == [0]
                assert stats["degraded"]["replay_buffered"] == 2
                assert stats["observe"]["shards"][0]["degraded"] is True
                replayed = await service.restore_shard(0)
                assert replayed == 2
                healed = service.stats()["degraded"]
                assert healed["shards"] == []
                assert healed["n_shard_restores"] == 1
                # Normal service resumes on the rebuilt shard.
                update = await service.observe(samples[6])
                assert update.ok and not update.deferred
                return service._shards[0].recommenders

        recommenders = asyncio.run(scenario())
        assert "alpha" in recommenders  # members restored from the store
        store.close()

    def make_customer(self, customer_id="alpha"):
        from .conftest import full_trace

        return FleetCustomer(
            customer_id=customer_id,
            trace=full_trace(n=64, entity_id=customer_id),
            deployment=DeploymentType.SQL_DB,
        )

    def test_degraded_recommend_serves_stale_from_store(
        self, small_catalog, tmp_path
    ):
        store = FleetStore(str(tmp_path / "stale.db"))
        service = self.make_service(small_catalog, store=store)
        samples = self.warm_samples(8)
        customer = self.make_customer()

        async def scenario():
            async with service:
                for sample in samples[:6]:
                    await service.observe(sample)
                await service.checkpoint()
                fresh = await service.recommend(customer)
                assert not fresh.stale and fresh.retry_after_s is None
                self.break_shard(service)
                await service.observe(samples[6])  # trips degraded mode
                stale = await service.recommend(customer)
                assert stale.stale is True
                assert stale.retry_after_s is not None and stale.retry_after_s > 0
                assert stale.recommendation is not None
                assert service.stats()["degraded"]["n_stale_served"] == 1
                await service.restore_shard(0)
                again = await service.recommend(customer)
                assert not again.stale

        asyncio.run(scenario())
        store.close()

    def test_degraded_recommend_without_store_sheds(self, small_catalog):
        service = self.make_service(small_catalog)  # no store attached
        samples = self.warm_samples(8)
        customer = self.make_customer()

        async def scenario():
            async with service:
                for sample in samples[:4]:
                    await service.observe(sample)
                self.break_shard(service)
                await service.observe(samples[4])
                with pytest.raises(AdmissionError, match="no stored recommendation"):
                    await service.recommend(customer)

        asyncio.run(scenario())

    def test_full_replay_buffer_sheds_observes(self, small_catalog):
        service = self.make_service(small_catalog, replay_limit=2)
        samples = self.warm_samples(8)

        async def scenario():
            async with service:
                for sample in samples[:3]:
                    await service.observe(sample)
                self.break_shard(service)
                await service.observe(samples[3])  # buffered (1/2)
                await service.observe(samples[4])  # buffered (2/2)
                with pytest.raises(AdmissionError, match="replay buffer full"):
                    await service.observe(samples[5])
                assert service.stats()["degraded"]["replay_buffered"] == 2

        asyncio.run(scenario())

    def test_corrupt_blob_on_readmission_quarantines_customer(
        self, small_catalog, tmp_path
    ):
        store = FleetStore(str(tmp_path / "readmit.db"))
        service = self.make_service(small_catalog, store=store)
        samples = self.warm_samples(8)
        # A second customer keeps the shard populated so alpha is
        # evictable (evict_cold keeps the most recently observed).
        rng = np.random.default_rng(9)
        beta = [
            FleetSample(customer_id="beta", values=values)
            for values in live_samples(6, rng)
        ]

        async def scenario():
            async with service:
                for sample in samples[:6]:
                    await service.observe(sample)
                for sample in beta:
                    await service.observe(sample)
                await service.checkpoint()
                # Evict alpha so its next observe takes the readmission
                # path, then corrupt its stored blob.
                evicted = await service.evict_cold(1)
                assert evicted == 1  # alpha (least recently observed)
                FaultPlan(corrupt_snapshots=("alpha",)).corrupt_store(store)
                update = await service.observe(samples[6])
                assert not update.ok and "quarantined" in update.error
                stats = service.stats()
                assert stats["degraded"]["n_corrupt_quarantined"] == 1
                assert stats["degraded"]["shards"] == []  # shard stays up
                # The quarantine is audited in the store's event log.
                kinds = [
                    (event.kind, event.customer_id) for event in store.events()
                ]
                assert ("quarantine", "alpha") in kinds

        asyncio.run(scenario())
        store.close()


# ----------------------------------------------------------------------
# Probation: quarantined shards re-enter service after a cool-down
# ----------------------------------------------------------------------
class TestShardProbation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_quarantined_shard_reenters_after_cooldown(
        self, backend, small_catalog, tmp_path
    ):
        feed = interleaved_feed(6, 48, seed=11)
        store = FleetStore(str(tmp_path / "probation.db"))
        fleet = make_fleet(small_catalog)
        # Kill shard 1 on its first few ticks only: the restart budget
        # exhausts, the shard quarantines, then the cool-down elapses
        # with no further faults and probation readmits it.  (Several
        # coordinates because the pipelined watch replays in-flight
        # ticks without their directives.)
        config = WATCH.replace(
            backend=backend,
            max_workers=3,
            checkpoint=CheckpointConfig(store=store, every_ticks=2),
            supervision=supervised(
                FaultPlan(kill_worker=tuple((1, tick) for tick in range(4))),
                max_restarts=1,
                snapshot_every_ticks=1,
                probation_ticks=2,
            ),
        )
        list(fleet.watch_fleet(feed, config=config))
        stats = fleet.watch_supervision_stats()
        kinds = [event.kind for event in stats.events]
        assert "shard_quarantine" in kinds
        assert "shard_probation" in kinds
        assert kinds.index("shard_quarantine") < kinds.index("shard_probation")
        probation = [e for e in stats.events if e.kind == "shard_probation"]
        assert probation[0].shard_id == 1
        assert probation[0].reason == "cooldown elapsed"
        # Readmitted: the shard is no longer quarantined at drain time,
        # and its restart budget is back for the next incident.
        assert stats.quarantined_shards == ()
        # The readmission is audited durably too.
        store_kinds = [event.kind for event in store.events()]
        assert store_kinds.count("shard_probation") >= 1
        store.close()

    def test_probation_disabled_by_default(self, small_catalog):
        feed = interleaved_feed(6, 32, seed=11)
        fleet = make_fleet(small_catalog)
        kills = tuple((1, tick) for tick in range(64))
        config = WATCH.replace(
            backend="thread",
            max_workers=3,
            supervision=supervised(
                FaultPlan(kill_worker=kills), max_restarts=1, snapshot_every_ticks=1
            ),
        )
        list(fleet.watch_fleet(feed, config=config))
        stats = fleet.watch_supervision_stats()
        assert stats.quarantined_shards == (1,)  # no cool-down configured
        assert all(event.kind != "shard_probation" for event in stats.events)

    def test_probation_ticks_validated(self):
        with pytest.raises(ValueError, match="probation_ticks"):
            SupervisionConfig(probation_ticks=0)


# ----------------------------------------------------------------------
# Zero-copy plane hygiene under faults
# ----------------------------------------------------------------------
class TestZeroCopyFaultHygiene:
    def test_sigkill_recovery_is_identical_and_leaves_shm_clean(
        self, small_catalog
    ):
        from repro.fleet.arena import leaked_segments

        baseline_segments = leaked_segments()
        feed = interleaved_feed(6, 32, seed=11)
        baseline = canonical_updates(
            make_fleet(small_catalog).watch_fleet(feed, config=WATCH)
        )
        fleet = make_fleet(small_catalog)
        config = WATCH.replace(
            backend="process",
            max_workers=3,
            zero_copy=True,
            supervision=supervised(FaultPlan(kill_worker=((1, 1),))),
        )
        assert canonical_updates(fleet.watch_fleet(feed, config=config)) == baseline
        assert fleet.watch_supervision_stats().n_restarts == 1
        # The killed worker only ever *attached* arena segments; the
        # parent owns them all, so nothing survives teardown.
        assert leaked_segments() == baseline_segments

    def test_quarantine_under_zero_copy_leaves_shm_clean(self, small_catalog):
        from repro.fleet.arena import leaked_segments

        baseline_segments = leaked_segments()
        feed = interleaved_feed(6, 32, seed=11)
        fleet = make_fleet(small_catalog)
        kills = tuple((1, tick) for tick in range(64))
        config = WATCH.replace(
            backend="process",
            max_workers=3,
            zero_copy=True,
            supervision=supervised(
                FaultPlan(kill_worker=kills), max_restarts=1, snapshot_every_ticks=1
            ),
        )
        updates = list(fleet.watch_fleet(feed, config=config))
        stats = fleet.watch_supervision_stats()
        assert stats.quarantined_shards == (1,)
        assert [u for u in updates if u.update is not None]
        assert leaked_segments() == baseline_segments
