"""Online serving tier: microbatching, admission control, identity, HTTP.

The load-bearing contract is the serving identity gate: a
recommendation served through the asyncio tier -- microbatched into
``recommend_batch`` on an executor -- must be byte-identical to the
same customer's result from a direct ``recommend_fleet`` pass, and an
observe stream answered by the service must match the watch path's
update stream sample for sample.  Everything else (backpressure,
flush triggers, the HTTP front end) protects the tail latency of that
same machinery under load.

No pytest-asyncio in the environment: coroutine scenarios run under
``asyncio.run`` inside plain sync tests.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro
from repro.catalog import DeploymentType
from repro.core import DopplerEngine
from repro.fleet import (
    FleetCustomer,
    FleetEngine,
    FleetLiveUpdate,
    WatchConfig,
)
from repro.serve import (
    AdmissionError,
    BatchStats,
    LatencyRecorder,
    MicroBatcher,
    RecommendationService,
    ServeConfig,
    serve,
)
from repro.serve.http import _handle_one
from repro.serve.service import _Lane
from repro.telemetry.serialize import trace_to_dict

from .conftest import full_trace
from .test_fleet_backends import canonical_updates, interleaved_feed

#: Watch parameters small enough that refreshes happen within a short
#: test feed; shared by every service in this module.
WATCH = WatchConfig(window=16, min_refresh_samples=8)

#: A service configuration that never rejects and flushes fast: the
#: correctness tests want identity, not backpressure.
WIDE_OPEN = ServeConfig(
    n_shards=1,
    max_batch=8,
    max_delay_ms=2.0,
    queue_limit=4096,
    slo_ms=60_000.0,
    watch=WATCH,
)


def make_fleet(small_catalog) -> FleetEngine:
    return FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")


def make_customers(n: int) -> list[FleetCustomer]:
    return [
        FleetCustomer(
            customer_id=f"serve-{index:02d}",
            trace=full_trace(
                cpu_level=0.8 + 0.3 * index, entity_id=f"serve-{index:02d}", rng=index
            ),
            deployment=DeploymentType.SQL_DB,
        )
        for index in range(n)
    ]


def canonical_recommendations(results) -> str:
    """Byte-comparable projection of recommendation results."""
    lines = []
    for result in results:
        recommendation = result.recommendation
        if recommendation is None:
            lines.append(f"{result.customer_id}|ERROR|{result.error}")
            continue
        lines.append(
            f"{result.customer_id}|{recommendation.sku.name}"
            f"|{recommendation.monthly_price!r}|{recommendation.expected_throttling!r}"
            f"|{recommendation.target_probability!r}|{recommendation.strategy}"
            f"|{result.over_provisioned}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# ServeConfig
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_are_valid_and_replace_works(self):
        config = ServeConfig()
        assert config.n_shards == 2
        varied = config.replace(n_shards=4, slo_ms=100.0)
        assert (varied.n_shards, varied.slo_ms) == (4, 100.0)
        assert config.n_shards == 2  # frozen original untouched

    @pytest.mark.parametrize(
        ("field", "value", "message"),
        [
            ("n_shards", 0, "n_shards must be >= 1"),
            ("max_batch", 0, "max_batch must be >= 1"),
            ("max_delay_ms", -1.0, "max_delay_ms must be >= 0"),
            ("queue_limit", 0, "queue_limit must be >= 1"),
            ("slo_ms", 0.0, "slo_ms must be positive"),
            ("watch", "fast", "watch must be a WatchConfig"),
        ],
    )
    def test_validation(self, field, value, message):
        with pytest.raises(ValueError, match=message):
            ServeConfig(**{field: value})

    def test_bad_watch_parameters_fail_at_service_construction(self, small_catalog):
        config = ServeConfig(watch=WatchConfig(window=4, min_refresh_samples=64))
        with pytest.raises(ValueError, match="window"):
            RecommendationService(make_fleet(small_catalog), config)

    def test_service_rejects_non_config(self, small_catalog):
        with pytest.raises(ValueError, match="ServeConfig"):
            RecommendationService(make_fleet(small_catalog), {"n_shards": 2})


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_size_trigger_flushes_full_batches(self):
        batches: list[list[int]] = []

        async def flush(items):
            batches.append(list(items))
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_delay=5.0)
            batcher.start()
            results = await asyncio.gather(*(batcher.submit(i) for i in range(8)))
            await batcher.stop()
            return results

        results = asyncio.run(scenario())
        assert results == [i * 2 for i in range(8)]
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_deadline_trigger_flushes_partial_batch(self):
        async def flush(items):
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_delay=0.02)
            batcher.start()
            results = await asyncio.gather(*(batcher.submit(i) for i in range(3)))
            stats = batcher.stats
            await batcher.stop()
            return results, stats

        results, stats = asyncio.run(scenario())
        assert results == [0, 1, 2]
        assert stats.n_deadline_flushes == 1
        assert stats.n_size_flushes == 0
        assert stats.max_batch == 3

    def test_stats_split_size_vs_deadline(self):
        """One full batch flushes on size, the 2-item remainder on deadline."""

        async def flush(items):
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_delay=0.02)
            batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(6)))
            stats = batcher.stats
            await batcher.stop()
            return stats

        stats = asyncio.run(scenario())
        assert stats.n_size_flushes == 1
        assert stats.n_deadline_flushes == 1
        assert stats.n_flushes == 2
        assert stats.n_items == 6
        assert stats.mean_batch == pytest.approx(3.0)

    def test_flush_error_fails_batch_not_loop(self):
        async def flush(items):
            if "boom" in items:
                raise ValueError("flush exploded")
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_delay=0.01)
            batcher.start()
            failed = await asyncio.gather(
                batcher.submit("boom"), batcher.submit("rider"), return_exceptions=True
            )
            survivor = await batcher.submit("ok")
            await batcher.stop()
            return failed, survivor

        failed, survivor = asyncio.run(scenario())
        assert all(isinstance(outcome, ValueError) for outcome in failed)
        assert survivor == "ok"

    def test_misaligned_flush_is_an_error(self):
        async def flush(items):
            return []

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=1, max_delay=0.0)
            batcher.start()
            try:
                with pytest.raises(RuntimeError, match="flush returned 0 results"):
                    await batcher.submit("x")
            finally:
                await batcher.stop()

        asyncio.run(scenario())

    def test_submit_requires_running_batcher(self):
        async def flush(items):
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_delay=0.0)
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit("early")
            batcher.start()
            await batcher.stop()
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit("late")

        asyncio.run(scenario())

    def test_parameter_validation(self):
        async def flush(items):
            return list(items)

        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(flush, max_batch=0, max_delay=1.0)
        with pytest.raises(ValueError, match="max_delay"):
            MicroBatcher(flush, max_batch=1, max_delay=-0.1)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_latency_recorder_reports_ms_percentiles(self):
        recorder = LatencyRecorder()
        for index in range(1, 201):
            recorder.record(index / 1000.0)  # 1ms .. 200ms
        summary = recorder.summary()
        assert summary["count"] == 200
        assert summary["max_ms"] == pytest.approx(200.0)
        assert summary["mean_ms"] == pytest.approx(100.5)
        assert summary["p50_ms"] == pytest.approx(100.0, rel=0.05)
        assert summary["p99_ms"] == pytest.approx(198.0, rel=0.05)

    def test_empty_recorder_is_all_zeros(self):
        summary = LatencyRecorder().summary()
        assert summary == {
            "count": 0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_batch_stats_accounting(self):
        stats = BatchStats()
        stats.record(4, "size")
        stats.record(2, "deadline")
        assert stats.summary() == {
            "n_flushes": 2,
            "n_items": 6,
            "n_size_flushes": 1,
            "n_deadline_flushes": 1,
            "mean_batch": 3.0,
            "max_batch": 4,
        }


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestLaneAdmission:
    def make_lane(self, **overrides) -> _Lane:
        async def flush(items):
            return list(items)

        config = ServeConfig(queue_limit=2, slo_ms=100.0, watch=WATCH, **overrides)
        return _Lane("observe[0]", MicroBatcher(flush, 4, 0.01), config)

    def test_queue_bound_rejects_with_lane_name(self):
        lane = self.make_lane()
        lane.admit()
        lane.admit()
        with pytest.raises(AdmissionError, match=r"observe\[0\] saturated \(queue full\)"):
            lane.admit()
        assert lane.inflight == 2  # the rejected request never counted
        assert lane.max_inflight == 2
        assert lane.n_rejected == 1

    def test_slo_budget_rejects_with_retry_after(self):
        lane = self.make_lane()
        lane.ewma_s_per_item = 0.5  # 500ms/request measured, 100ms budget
        with pytest.raises(AdmissionError, match="SLO budget exceeded") as excinfo:
            lane.admit()
        assert excinfo.value.lane == "observe[0]"
        assert excinfo.value.retry_after_s == pytest.approx(0.5)

    def test_cold_lane_admits_until_queue_bound(self):
        # With no latency estimate yet the SLO term cannot reject.
        lane = self.make_lane()
        lane.admit()
        lane.release()
        assert lane.inflight == 0

    def test_ewma_warms_then_smooths(self):
        lane = self.make_lane()
        lane.observe_flush(busy_seconds=0.4, batch_size=4)  # first: direct set
        assert lane.ewma_s_per_item == pytest.approx(0.1)
        lane.observe_flush(busy_seconds=1.2, batch_size=4)  # then: EWMA fold
        assert lane.ewma_s_per_item == pytest.approx(0.1 + 0.2 * (0.3 - 0.1))
        lane.observe_flush(busy_seconds=9.9, batch_size=0)  # degenerate: ignored
        assert lane.ewma_s_per_item == pytest.approx(0.14)


# ----------------------------------------------------------------------
# The service: identity, quarantine, backpressure
# ----------------------------------------------------------------------
class TestServiceIdentity:
    def test_served_recommendations_match_direct_fleet_pass(self, small_catalog):
        fleet = make_fleet(small_catalog)
        customers = make_customers(6)

        async def scenario():
            async with RecommendationService(fleet, WIDE_OPEN) as service:
                return await asyncio.gather(
                    *(service.recommend(customer) for customer in customers)
                )

        served = asyncio.run(scenario())
        direct = list(fleet.recommend_fleet(customers))
        assert canonical_recommendations(served) == canonical_recommendations(direct)
        assert canonical_recommendations(served)  # non-degenerate

    def test_served_observe_stream_matches_watch(self, small_catalog):
        feed = interleaved_feed(4, 12, seed=7)
        served_fleet = make_fleet(small_catalog)

        async def scenario():
            config = WIDE_OPEN.replace(n_shards=2)
            async with RecommendationService(served_fleet, config) as service:
                updates = []
                for sample in feed:
                    updates.append(await service.observe(sample))
                return updates

        served = asyncio.run(scenario())
        direct = list(
            make_fleet(small_catalog).watch_fleet(
                feed, config=WATCH.replace(refreshes_only=False)
            )
        )
        assert canonical_updates(served) == canonical_updates(direct)
        assert len(served) == len(feed)

    def test_quarantined_customer_answers_with_error(self, small_catalog):
        # The poisoned customer fails at its first refresh (sample 8,
        # min_refresh_samples), so feed enough samples to get there
        # plus a post-quarantine tail.
        feed = interleaved_feed(3, 12, seed=3, poison=("cust-1",))
        fleet = make_fleet(small_catalog)

        async def scenario():
            async with RecommendationService(fleet, WIDE_OPEN) as service:
                updates = []
                for sample in feed:
                    updates.append(await service.observe(sample))
                stats = service.stats()
                return updates, stats

        served, stats = asyncio.run(scenario())
        poisoned = [update for update in served if update.customer_id == "cust-1"]
        assert len(poisoned) == 12  # every sample answered, none dropped
        first_error = next(
            index for index, update in enumerate(poisoned) if update.update is None
        )
        assert poisoned[first_error].error  # the real assessment failure
        assert poisoned[first_error].error != "customer is quarantined"
        assert first_error < 11  # failed before the feed ran out
        for update in poisoned[first_error + 1 :]:
            assert update.update is None
            assert update.error == "customer is quarantined"
        assert stats["observe"]["shards"][0]["n_quarantined"] == 1
        # The direct watch stream is the served stream minus the
        # quarantine fillers (the watch drops quarantined samples).
        direct = list(
            make_fleet(small_catalog).watch_fleet(
                feed, config=WATCH.replace(refreshes_only=False)
            )
        )
        answered = [
            update for update in served if update.error != "customer is quarantined"
        ]
        assert canonical_updates(answered) == canonical_updates(direct)

    def test_endpoints_require_started_service(self, small_catalog):
        service = RecommendationService(make_fleet(small_catalog), WIDE_OPEN)

        async def scenario():
            with pytest.raises(RuntimeError, match="not running"):
                await service.observe(interleaved_feed(1, 1, seed=0)[0])
            with pytest.raises(RuntimeError, match="not running"):
                await service.recommend(make_customers(1)[0])

        asyncio.run(scenario())


class TestBackpressure:
    def test_saturated_lane_rejects_and_recovers(self, small_catalog):
        config = ServeConfig(
            n_shards=1,
            max_batch=4,
            max_delay_ms=30.0,
            queue_limit=2,
            slo_ms=60_000.0,
            watch=WATCH,
        )
        feed = interleaved_feed(1, 8, seed=11)
        fleet = make_fleet(small_catalog)

        async def scenario():
            async with RecommendationService(fleet, config) as service:
                tasks = [
                    asyncio.get_running_loop().create_task(service.observe(sample))
                    for sample in feed
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                stats = service.stats()
                # The lane drains after the burst: admission recovers.
                recovered = await service.observe(feed[0])
                return outcomes, stats, recovered

        outcomes, stats, recovered = asyncio.run(scenario())
        rejected = [o for o in outcomes if isinstance(o, AdmissionError)]
        answered = [o for o in outcomes if isinstance(o, FleetLiveUpdate)]
        assert len(rejected) + len(answered) == len(feed)
        assert len(answered) >= 2  # the admitted window was served
        assert rejected  # the burst overflowed a 2-deep lane
        for error in rejected:
            assert error.lane == "observe[0]"
            assert error.retry_after_s >= 0.0
            assert "queue full" in str(error)
        assert stats["observe"]["n_rejected"] == len(rejected)
        assert stats["observe"]["latency"]["count"] == len(answered)
        assert isinstance(recovered, FleetLiveUpdate)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
async def _http_request(port: int, method: str, path: str, body: dict | None = None):
    """One HTTP/1.1 exchange against localhost; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_raw) if body_raw else {}


OBSERVE_BODY = {
    "customer_id": "http-cust",
    "values": {
        "CPU": 1.5,
        "MEMORY": 6.0,
        "IOPS": 200.0,
        "IO_LATENCY": 6.0,
        "LOG_RATE": 2.0,
        "STORAGE": 120.0,
    },
}


class TestHttpFrontEnd:
    def run_server(self, small_catalog, scenario):
        fleet = make_fleet(small_catalog)

        async def body():
            async with RecommendationService(fleet, WIDE_OPEN) as service:
                server = await serve(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    return await scenario(port)
                finally:
                    server.close()
                    await server.wait_closed()

        return asyncio.run(body())

    def test_observe_and_stats_round_trip(self, small_catalog):
        async def scenario(port):
            observed = await _http_request(port, "POST", "/observe", OBSERVE_BODY)
            stats = await _http_request(port, "GET", "/stats")
            return observed, stats

        observed, stats = self.run_server(small_catalog, scenario)
        status, _, document = observed
        assert status == 200
        assert document["customer_id"] == "http-cust"
        assert document["ok"] is True
        assert document["n_seen"] == 1
        status, _, body = stats
        assert status == 200
        assert body["running"] is True
        assert body["observe"]["latency"]["count"] == 1

    def test_recommend_round_trip(self, small_catalog):
        request = {
            "customer_id": "http-rec",
            "trace": trace_to_dict(full_trace(entity_id="http-rec")),
        }

        async def scenario(port):
            return await _http_request(port, "POST", "/recommend", request)

        status, _, document = self.run_server(small_catalog, scenario)
        assert status == 200
        assert document["ok"] is True
        assert document["recommendation"]["sku"]
        assert document["recommendation"]["monthly_price"] > 0

    def test_malformed_requests_answer_4xx(self, small_catalog):
        async def scenario(port):
            return (
                await _http_request(port, "POST", "/observe", {"customer_id": "x"}),
                await _http_request(
                    port,
                    "POST",
                    "/observe",
                    {"customer_id": "x", "values": {"WARP": 9.0}},
                ),
                await _http_request(port, "GET", "/nowhere"),
            )

        missing, unknown_dim, lost = self.run_server(small_catalog, scenario)
        assert missing[0] == 400
        assert "customer_id" in missing[2]["error"]
        assert unknown_dim[0] == 400
        assert "WARP" in unknown_dim[2]["error"]
        assert lost[0] == 404

    def test_admission_rejection_maps_to_429_with_retry_after(self):
        class SaturatedService:
            async def observe(self, sample):
                raise AdmissionError("observe[0]", 0.25, "queue full")

        async def scenario():
            return await _handle_one(
                SaturatedService(),
                "POST",
                "/observe",
                json.dumps(OBSERVE_BODY).encode("utf-8"),
            )

        raw = asyncio.run(scenario())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 0.250" in head
        document = json.loads(body)
        assert document["lane"] == "observe[0]"
        assert document["retry_after_s"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# WatchConfig shim parity
# ----------------------------------------------------------------------
class TestWatchConfigShim:
    def test_legacy_kwargs_are_a_type_error_pointing_at_watch_config(
        self, small_catalog
    ):
        fleet = make_fleet(small_catalog)
        with pytest.raises(TypeError, match=r"pass config=WatchConfig\(\.\.\.\) instead"):
            fleet.watch_fleet([], window=16, min_refresh_samples=8)

    def test_legacy_kwargs_rejected_even_alongside_config(self, small_catalog):
        fleet = make_fleet(small_catalog)
        with pytest.raises(TypeError, match="'window'"):
            fleet.watch_fleet([], config=WatchConfig(), window=16)

    def test_legacy_kwargs_raise_without_consuming_the_feed(self, small_catalog):
        def poisoned():
            raise AssertionError("feed must not be consumed on a rejected call")
            yield  # pragma: no cover

        fleet = make_fleet(small_catalog)
        with pytest.raises(TypeError, match="legacy per-watch keyword form"):
            fleet.watch_fleet(poisoned(), window=16)

    def test_unknown_kwarg_is_a_type_error(self, small_catalog):
        fleet = make_fleet(small_catalog)
        with pytest.raises(
            TypeError, match="unexpected keyword arguments: 'cadence'"
        ):
            fleet.watch_fleet([], cadence=5)

    def test_non_config_object_rejected(self, small_catalog):
        fleet = make_fleet(small_catalog)
        with pytest.raises(ValueError, match="must be a WatchConfig"):
            fleet.watch_fleet([], config={"window": 16})

    def test_watch_config_field_names_cover_legacy_surface(self):
        names = WatchConfig.field_names()
        for legacy in (
            "window",
            "backend",
            "max_workers",
            "refreshes_only",
            "rebalance",
            "on_rebalance",
            "tick_samples",
            "profile_mode",
        ):
            assert legacy in names


# ----------------------------------------------------------------------
# Public facade
# ----------------------------------------------------------------------
class TestPublicFacade:
    def test_serving_tier_exported_at_top_level(self):
        assert repro.RecommendationService is RecommendationService
        assert repro.ServeConfig is ServeConfig
        assert repro.AdmissionError is AdmissionError
        assert repro.WatchConfig is WatchConfig
        for name in (
            "RecommendationService",
            "ServeConfig",
            "AdmissionError",
            "WatchConfig",
            "serve",
        ):
            assert name in repro.__all__

    def test_serve_package_all_is_importable(self):
        import repro.serve as serve_pkg

        for name in serve_pkg.__all__:
            assert hasattr(serve_pkg, name)
