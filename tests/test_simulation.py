"""Unit tests for the customer-population simulation substrate."""

import numpy as np
import pytest

from repro.catalog import DeploymentType, SkuCatalog
from repro.core import PricePerformanceCurve
from repro.simulation import (
    PAPER_MONTHS,
    ExpertChoiceModel,
    FleetConfig,
    simulate_adoption_log,
    simulate_fleet,
    simulate_onprem_estate,
    simulate_sku_change_customers,
)
from repro.telemetry import PerfDimension

from .conftest import make_sku


@pytest.fixture(scope="module")
def db_fleet(default_catalog_module):
    config = FleetConfig.paper_db(40, duration_days=3, interval_minutes=30)
    return simulate_fleet(config, default_catalog_module, rng=7)


@pytest.fixture(scope="module")
def default_catalog_module():
    return SkuCatalog.default()


def curve_from(probs, vcores=(2, 4, 8, 16, 32)):
    skus = [make_sku(v) for v in vcores]
    return PricePerformanceCurve.from_probabilities(skus, np.asarray(probs, dtype=float))


class TestExpertChoiceModel:
    def test_negotiable_customer_tolerates_throttling(self):
        model = ExpertChoiceModel(upgrade_noise=0.0)
        curve = curve_from([0.3, 0.12, 0.04, 0.0, 0.0])
        # Three negotiable dims -> tolerance in [0.09, 0.24].
        point = model.choose(curve, (True, True, True), rng=0)
        assert 1.0 - point.score > 0.0

    def test_strict_customer_near_full_performance(self):
        model = ExpertChoiceModel(upgrade_noise=0.0)
        curve = curve_from([0.3, 0.12, 0.04, 0.0, 0.0])
        point = model.choose(curve, (False, False, False), rng=0)
        assert point.score >= 0.999

    def test_flat_curve_strict_customer_picks_cheapest(self):
        model = ExpertChoiceModel(upgrade_noise=0.0)
        curve = curve_from([0.0] * 5)
        assert model.choose(curve, (False, False, False), rng=0).sku.vcores == 2

    def test_over_provisioned_choice_far_up_the_curve(self):
        model = ExpertChoiceModel()
        curve = curve_from([0.0] * 5)
        point = model.choose(curve, (False, False, False), over_provisioned=True, rng=0)
        assert curve.position_of(point.sku.name) >= 3

    def test_tolerance_scales_with_negotiable_count(self):
        model = ExpertChoiceModel()
        few = model.throttling_tolerance((True, False, False), rng=0)
        many = model.throttling_tolerance((True, True, True), rng=0)
        assert many > few

    def test_nothing_within_tolerance_takes_best(self):
        model = ExpertChoiceModel(upgrade_noise=0.0)
        curve = curve_from([0.9, 0.8, 0.75, 0.7, 0.65])
        point = model.choose(curve, (False, False, False), rng=0)
        assert point.sku.vcores == 32


class TestFleet:
    def test_fleet_size_and_determinism(self, default_catalog_module):
        config = FleetConfig.paper_db(10, duration_days=2, interval_minutes=30)
        a = simulate_fleet(config, default_catalog_module, rng=3)
        b = simulate_fleet(config, default_catalog_module, rng=3)
        assert len(a) == 10
        assert [c.chosen_sku_name for c in a] == [c.chosen_sku_name for c in b]

    def test_chosen_skus_exist_in_catalog(self, db_fleet, default_catalog_module):
        for customer in db_fleet:
            default_catalog_module.by_name(customer.chosen_sku_name)  # no raise

    def test_deployment_consistency(self, db_fleet):
        assert all(
            c.record.deployment is DeploymentType.SQL_DB for c in db_fleet
        )

    def test_traces_have_profiling_dimensions(self, db_fleet):
        for customer in db_fleet:
            for dim in (
                PerfDimension.CPU,
                PerfDimension.MEMORY,
                PerfDimension.IOPS,
                PerfDimension.LOG_RATE,
            ):
                assert dim in customer.record.trace

    def test_flat_majority(self, db_fleet):
        flat = sum(1 for c in db_fleet if c.archetype == "flat")
        assert flat / len(db_fleet) > 0.5

    def test_non_complex_customers_are_strict(self, db_fleet):
        for customer in db_fleet:
            if customer.archetype != "complex":
                assert customer.true_negotiable == tuple(
                    False for _ in customer.true_negotiable
                )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(deployment=DeploymentType.SQL_DB, n_customers=0)
        with pytest.raises(ValueError):
            FleetConfig(
                deployment=DeploymentType.SQL_DB,
                n_customers=1,
                flat_fraction=0.9,
                simple_fraction=0.2,
            )

    def test_mi_preset_dimensions(self):
        config = FleetConfig.paper_mi(5)
        assert len(config.profiling_dimensions) == 3


class TestSkuChangeCustomers:
    def test_upgrades_move_to_pricier_skus(self, default_catalog_module):
        customers = simulate_sku_change_customers(
            6, default_catalog_module, duration_days=2, interval_minutes=30,
            upgrade_fraction=1.0, rng=0,
        )
        for customer in customers:
            assert customer.direction == "upgrade"
            before = default_catalog_module.by_name(customer.before_sku_name)
            after = default_catalog_module.by_name(customer.after_sku_name)
            assert after.monthly_price > before.monthly_price

    def test_stale_sku_would_throttle(self, default_catalog_module):
        """Figure 11: keeping the old SKU on the new workload throttles."""
        customers = simulate_sku_change_customers(
            4, default_catalog_module, duration_days=2, interval_minutes=30,
            upgrade_fraction=1.0, rng=1,
        )
        assert all(c.stale_sku_throttling() > 0.2 for c in customers)

    def test_downgrade_direction(self, default_catalog_module):
        customers = simulate_sku_change_customers(
            4, default_catalog_module, duration_days=2, interval_minutes=30,
            upgrade_fraction=0.0, rng=2,
        )
        assert all(c.direction == "downgrade" for c in customers)


class TestOnPrem:
    def test_estate_structure(self):
        servers = simulate_onprem_estate(
            n_servers=3, databases_per_server=(2, 4), duration_days=1,
            interval_minutes=30, rng=0,
        )
        assert len(servers) == 3
        for server in servers:
            assert 2 <= len(server.databases) <= 4

    def test_mostly_idle(self):
        servers = simulate_onprem_estate(
            n_servers=6, duration_days=1, interval_minutes=30, rng=1
        )
        activities = [db.activity for s in servers for db in s.databases]
        assert activities.count("idle") / len(activities) > 0.5

    def test_latency_sensitive_dbs_have_low_latency(self):
        servers = simulate_onprem_estate(
            n_servers=8, duration_days=1, interval_minutes=30, rng=2,
            idle_fraction=0.5, latency_sensitive_fraction=0.3,
        )
        sensitive = [
            db for s in servers for db in s.databases if db.activity == "latency_sensitive"
        ]
        assert sensitive
        for db in sensitive:
            assert db.trace[PerfDimension.IO_LATENCY].quantile(0.05) < 5.0

    def test_instance_rollup(self):
        servers = simulate_onprem_estate(
            n_servers=1, databases_per_server=(3, 3), duration_days=1,
            interval_minutes=30, rng=3,
        )
        instance = servers[0].instance_trace()
        db_cpu_sum = sum(
            db.trace[PerfDimension.CPU].values.sum() for db in servers[0].databases
        )
        assert instance[PerfDimension.CPU].values.sum() == pytest.approx(db_cpu_sum)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            simulate_onprem_estate(idle_fraction=0.9, latency_sensitive_fraction=0.3)


class TestAdoption:
    def test_paper_months_present(self):
        assert [m.label for m in PAPER_MONTHS] == ["Oct-21", "Nov-21", "Dec-21", "Jan-22"]

    def test_log_matches_profile_scale(self):
        log = simulate_adoption_log(volume_scale=0.2, rng=0)
        by_month = {}
        for request in log:
            by_month.setdefault(request.month, []).append(request)
        for month in PAPER_MONTHS:
            requests = by_month[month.label]
            assert len(requests) == max(1, round(month.unique_instances * 0.2))
            databases = sum(r.n_databases for r in requests)
            expected = month.databases_per_instance * len(requests)
            assert databases == pytest.approx(expected, rel=0.3)

    def test_recommendations_exceed_databases(self):
        """Table 1: recommendation counts exceed database counts."""
        log = simulate_adoption_log(volume_scale=0.3, rng=1)
        assert sum(r.n_recommendations for r in log) >= sum(r.n_databases for r in log)

    def test_deterministic(self):
        a = simulate_adoption_log(volume_scale=0.1, rng=5)
        b = simulate_adoption_log(volume_scale=0.1, rng=5)
        assert [(r.month, r.n_databases) for r in a] == [(r.month, r.n_databases) for r in b]
