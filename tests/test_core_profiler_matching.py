"""Unit tests for the Customer Profiler and group-score matching."""

import numpy as np
import pytest

from repro.core import (
    CustomerProfiler,
    GroupObservation,
    GroupScoreModel,
    PricePerformanceCurve,
    group_key_to_label,
)
from repro.telemetry import (
    PROFILING_DB_DIMENSIONS,
    PROFILING_MI_DIMENSIONS,
    PerfDimension,
    PerformanceTrace,
    TimeSeries,
)
from repro.workloads import PlateauPattern, SpikyPattern

from .conftest import make_sku

N = 1008


def mixed_trace(negotiable_flags, dims=PROFILING_MI_DIMENSIONS, seed=0):
    """Trace whose dimensions are spiky (negotiable) or plateau."""
    rng = np.random.default_rng(seed)
    series = {}
    for dim, negotiable in zip(dims, negotiable_flags):
        if negotiable:
            pattern = SpikyPattern(base=1.0, peak=6.0, spike_probability=0.006)
        else:
            pattern = PlateauPattern(level=3.0)
        series[dim] = TimeSeries(values=pattern.generate(N, 10.0, rng=rng))
    return PerformanceTrace(series=series, entity_id="mixed")


class TestProfiler:
    def test_group_key_encoding_follows_table3(self):
        """0 = negotiable, 1 = non-negotiable (paper Table 3)."""
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        profile = profiler.profile(mixed_trace((True, False, True)))
        assert profile.group_key == (0, 1, 0)
        assert profile.negotiable == (True, False, True)

    def test_group_count(self):
        assert CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS).n_groups == 8
        assert CustomerProfiler(dimensions=PROFILING_DB_DIMENSIONS).n_groups == 16

    def test_group_label(self):
        assert group_key_to_label((0, 1, 1)) == "011"

    def test_negotiable_dimensions_listed(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        profile = profiler.profile(mixed_trace((True, False, False)))
        assert profile.negotiable_dimensions() == (PerfDimension.CPU,)

    def test_describe_readable(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        text = profiler.profile(mixed_trace((True, False, False))).describe()
        assert "CPU=negotiable" in text
        assert "MEMORY=non-negotiable" in text

    def test_missing_dimension_raises(self):
        profiler = CustomerProfiler(dimensions=PROFILING_DB_DIMENSIONS)
        with pytest.raises(KeyError):
            profiler.profile(mixed_trace((True, False, True)))  # no LOG_RATE

    def test_feature_matrix_shape(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        traces = [mixed_trace((True, False, True), seed=s) for s in range(4)]
        assert profiler.feature_matrix(traces).shape == (4, 3)

    def test_enumeration_clustering_labels(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        traces = [
            mixed_trace((True, True, True)),
            mixed_trace((False, False, False)),
        ]
        labels = profiler.cluster(traces, method="enumeration")
        assert labels.tolist() == [0, 7]  # 000 -> 0, 111 -> 7

    @pytest.mark.parametrize("method", ["kmeans", "hierarchical"])
    def test_generic_clustering_separates_extremes(self, method):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        spiky = [mixed_trace((True, True, True), seed=s) for s in range(3)]
        steady = [mixed_trace((False, False, False), seed=s) for s in range(3)]
        labels = profiler.cluster(spiky + steady, method=method, n_clusters=2, rng=0)
        assert len(set(labels[:3].tolist())) == 1
        assert len(set(labels[3:].tolist())) == 1
        assert labels[0] != labels[3]

    def test_unknown_method_rejected(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        with pytest.raises(ValueError, match="unknown clustering"):
            profiler.cluster([mixed_trace((True, True, True))], method="dbscan")

    def test_empty_inputs_rejected(self):
        profiler = CustomerProfiler(dimensions=PROFILING_MI_DIMENSIONS)
        with pytest.raises(ValueError):
            profiler.cluster([], method="enumeration")
        with pytest.raises(ValueError):
            CustomerProfiler(dimensions=())


def curve_from(probs, vcores=(2, 4, 8, 16, 32)):
    skus = [make_sku(v) for v in vcores]
    return PricePerformanceCurve.from_probabilities(skus, np.asarray(probs, dtype=float))


class TestGroupScoreModel:
    def fit_model(self):
        observations = [
            GroupObservation((0, 0, 0), 0.15),
            GroupObservation((0, 0, 0), 0.17),
            GroupObservation((1, 1, 1), 0.0),
            GroupObservation((1, 1, 1), 0.004),
        ]
        return GroupScoreModel.fit(observations)

    def test_group_means(self):
        model = self.fit_model()
        assert model.target_probability((0, 0, 0)) == pytest.approx(0.16)
        assert model.target_probability((1, 1, 1)) == pytest.approx(0.002)

    def test_table3_score_columns(self):
        model = self.fit_model()
        stats = model.statistics_for((0, 0, 0))
        assert stats.score_mean == pytest.approx(0.84)
        assert stats.count == 2

    def test_unseen_group_uses_fallback(self):
        model = self.fit_model()
        pooled = np.mean([0.15, 0.17, 0.0, 0.004])
        assert model.target_probability((0, 1, 0)) == pytest.approx(pooled)

    def test_recommend_respects_constraint(self):
        """Equation (6): P(SKU) <= P_g."""
        model = self.fit_model()
        curve = curve_from([0.4, 0.2, 0.1, 0.05, 0.0])
        point = model.recommend(curve, (0, 0, 0))  # target 0.16
        assert 1.0 - point.score <= 0.16 + 1e-9
        # Closest-below-target is the 0.1 point (8 vCores).
        assert point.sku.vcores == 8

    def test_recommend_strict_group_goes_full_performance(self):
        model = self.fit_model()
        curve = curve_from([0.4, 0.2, 0.1, 0.05, 0.0])
        point = model.recommend(curve, (1, 1, 1))  # target 0.002
        assert point.sku.vcores == 32

    def test_recommend_flat_curve_picks_cheapest(self):
        model = self.fit_model()
        curve = curve_from([0.0, 0.0, 0.0, 0.0, 0.0])
        assert model.recommend(curve, (0, 0, 0)).sku.vcores == 2

    def test_recommend_infeasible_falls_back_to_closest(self):
        model = self.fit_model()
        curve = curve_from([0.9, 0.8, 0.7, 0.6, 0.5])
        point = model.recommend(curve, (1, 1, 1))  # nothing <= 0.002
        assert point.sku.vcores == 32  # closest overall

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            GroupScoreModel.fit([])

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            GroupObservation((0,), 1.5)

    def test_describe_contains_groups(self):
        text = self.fit_model().describe()
        assert "000" in text and "111" in text
