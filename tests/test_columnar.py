"""Columnar fleet-assessment kernel: equality with the serial path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import DeploymentType, ServiceTier, SkuCatalog
from repro.core import DopplerEngine, EmpiricalThrottlingEstimator
from repro.core.throttling import (
    batch_violation_counts,
    capacity_matrix,
    demand_matrix,
    violation_counts,
)
from repro.fleet import FleetCustomer, FleetEngine
from repro.simulation import FleetConfig, simulate_fleet
from repro.telemetry import PerfDimension
from repro.telemetry.counters import DB_DIMENSIONS, MI_DIMENSIONS

from .conftest import full_trace, make_sku, make_trace

# ----------------------------------------------------------------------
# Hypothesis strategies: random traces / catalogs / overrides
# ----------------------------------------------------------------------
DIMS3 = (PerfDimension.CPU, PerfDimension.MEMORY, PerfDimension.IOPS)

positive = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)


@st.composite
def random_trace(draw, index: int = 0):
    n = draw(st.integers(min_value=2, max_value=60))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    return make_trace(
        np.abs(rng.normal(4.0, 3.0, n)) + 1e-3,
        memory_gb=np.abs(rng.normal(20.0, 10.0, n)) + 1e-3,
        data_iops=np.abs(rng.normal(800.0, 600.0, n)) + 1e-3,
        entity_id=f"prop-{index}",
    )


@st.composite
def random_skus(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    skus = []
    for index in range(n):
        vcores = draw(st.floats(min_value=0.5, max_value=64.0, allow_nan=False))
        skus.append(
            make_sku(
                vcores,
                iops_per_vcore=draw(st.floats(min_value=10.0, max_value=500.0)),
                name=f"prop-sku-{index}",
            )
        )
    return skus


class TestColumnarKernelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        traces=st.lists(random_trace(), min_size=1, max_size=5),
        skus=random_skus(),
        override_scale=st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
        ),
    )
    def test_batch_matches_per_trace_estimates(self, traces, skus, override_scale):
        """probabilities_batch == stacked per-trace probabilities, exactly."""
        estimator = EmpiricalThrottlingEstimator()
        overrides = None
        if override_scale is not None:
            overrides = {
                sku.name: sku.limits.max_data_iops * override_scale
                for sku in skus[::2]
            }
        batch = estimator.probabilities_batch(traces, skus, DIMS3, overrides)
        serial = np.stack(
            [estimator.probabilities(t, skus, DIMS3, overrides) for t in traces]
        )
        assert batch.shape == (len(traces), len(skus))
        np.testing.assert_array_equal(batch, serial)

    @settings(max_examples=40, deadline=None)
    @given(traces=st.lists(random_trace(), min_size=1, max_size=4), skus=random_skus())
    def test_memory_cap_never_changes_counts(self, traces, skus):
        """Chunked kernels agree bit-for-bit at any memory cap."""
        caps = capacity_matrix(skus, DIMS3)
        blocks = [demand_matrix(t, DIMS3) for t in traces]
        generous = batch_violation_counts(blocks, caps, memory_cap_mb=64.0)
        # ~1 KB cap: every trace splits into many chunks/groups.
        tiny = batch_violation_counts(blocks, caps, memory_cap_mb=0.001)
        np.testing.assert_array_equal(generous, tiny)
        for block, expected in zip(blocks, generous):
            np.testing.assert_array_equal(
                violation_counts(block, caps, memory_cap_mb=0.001), expected
            )

    def test_single_customer_estimator_respects_memory_cap(self):
        """The satellite memory fix: capped estimator equals the default."""
        trace = full_trace(n=512, cpu_level=3.0)
        skus = [make_sku(v) for v in (1, 2, 4, 8, 16)]
        default = EmpiricalThrottlingEstimator().probabilities(
            trace, skus, DB_DIMENSIONS
        )
        capped = EmpiricalThrottlingEstimator(memory_cap_mb=0.001).probabilities(
            trace, skus, DB_DIMENSIONS
        )
        np.testing.assert_array_equal(default, capped)

    def test_memory_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="memory cap"):
            violation_counts(np.ones((3, 2)), np.ones((2, 2)), memory_cap_mb=0.0)


class TestDemandMatrixCache:
    def test_demand_matrix_memoized_per_dimension_tuple(self):
        trace = full_trace(n=32)
        first = trace.demand_matrix(DB_DIMENSIONS)
        assert trace.demand_matrix(DB_DIMENSIONS) is first
        assert trace.demand_matrix(MI_DIMENSIONS) is not first

    def test_demand_matrix_is_read_only_and_inverted(self):
        trace = full_trace(n=16)
        matrix = trace.demand_matrix(DB_DIMENSIONS)
        assert not matrix.flags.writeable
        latency_col = DB_DIMENSIONS.index(PerfDimension.IO_LATENCY)
        expected = 1.0 / np.maximum(
            trace[PerfDimension.IO_LATENCY].values, 1e-9
        )
        np.testing.assert_array_equal(matrix[:, latency_col], expected)

    def test_module_level_demand_matrix_delegates_to_cache(self):
        trace = full_trace(n=16)
        assert demand_matrix(trace, DB_DIMENSIONS) is trace.demand_matrix(DB_DIMENSIONS)


@pytest.fixture(scope="module")
def module_catalog() -> SkuCatalog:
    return SkuCatalog.default()


@pytest.fixture(scope="module")
def db_traces():
    rng = np.random.default_rng(42)
    traces = []
    for index in range(12):
        n = 48
        traces.append(
            make_trace(
                np.abs(rng.normal(3.0, 2.0, n)) + 0.1,
                memory_gb=np.abs(rng.normal(12.0, 6.0, n)) + 0.1,
                data_iops=np.abs(rng.normal(700.0, 400.0, n)) + 1.0,
                io_latency_ms=np.abs(rng.normal(6.0, 2.0, n)) + 0.2,
                log_rate_mbps=np.abs(rng.normal(4.0, 2.0, n)) + 0.1,
                data_size_gb=np.full(n, float(rng.uniform(20.0, 800.0))),
                entity_id=f"db-{index}",
            )
        )
    return traces


class TestBuildCurvesBatch:
    def test_db_curves_match_serial_construction(self, module_catalog, db_traces):
        ppm = DopplerEngine(catalog=module_catalog).ppm
        batch = ppm.build_curves_batch(db_traces, DeploymentType.SQL_DB)
        for trace, outcome in zip(db_traces, batch):
            serial = ppm.build_curve(trace, DeploymentType.SQL_DB)
            assert not isinstance(outcome, Exception)
            assert outcome.entity_id == serial.entity_id
            assert len(outcome.points) == len(serial.points)
            for got, expected in zip(outcome.points, serial.points):
                assert got == expected  # exact float + SKU equality

    def test_mi_curves_match_serial_including_overrides(self, module_catalog, db_traces):
        ppm = DopplerEngine(catalog=module_catalog).ppm
        sizes = [None if index % 2 else (40.0, 25.0) for index in range(len(db_traces))]
        batch = ppm.build_curves_batch(db_traces, DeploymentType.SQL_MI, sizes)
        for trace, trace_sizes, outcome in zip(db_traces, sizes, batch):
            serial = ppm.build_curve(
                trace,
                DeploymentType.SQL_MI,
                file_sizes_gib=list(trace_sizes) if trace_sizes else None,
            )
            assert not isinstance(outcome, Exception)
            assert tuple(outcome.points) == tuple(serial.points)

    def test_storage_misfit_reproduces_serial_error(self, module_catalog):
        ppm = DopplerEngine(catalog=module_catalog).ppm
        monster = make_trace(
            np.full(8, 2.0), data_size_gb=np.full(8, 1e9), entity_id="monster"
        )
        fine = full_trace(n=8)
        with pytest.raises(ValueError) as excinfo:
            ppm.build_curve(monster, DeploymentType.SQL_DB)
        outcomes = ppm.build_curves_batch([monster, fine], DeploymentType.SQL_DB)
        assert isinstance(outcomes[0], ValueError)
        assert str(outcomes[0]) == str(excinfo.value)
        assert not isinstance(outcomes[1], Exception)

    def test_non_empirical_estimator_falls_back(self, module_catalog, db_traces):
        from repro.core import KdeThrottlingEstimator

        engine = DopplerEngine(
            catalog=module_catalog, estimator=KdeThrottlingEstimator()
        )
        trace = db_traces[0]
        outcome = engine.ppm.build_curves_batch([trace], DeploymentType.SQL_DB)[0]
        serial = engine.ppm.build_curve(trace, DeploymentType.SQL_DB)
        assert tuple(outcome.points) == tuple(serial.points)


def result_projection(result):
    recommendation = result.recommendation
    return (
        result.customer_id,
        recommendation.sku.name if recommendation else None,
        recommendation.strategy if recommendation else None,
        recommendation.expected_throttling if recommendation else None,
        recommendation.target_probability if recommendation else None,
        result.over_provisioned,
        result.error,
    )


class TestFleetColumnarPath:
    @pytest.fixture(scope="class")
    def records(self, module_catalog):
        config = FleetConfig.paper_db(16, duration_days=3.0, interval_minutes=60.0)
        return [c.record for c in simulate_fleet(config, module_catalog, rng=3)]

    @pytest.fixture(scope="class")
    def module_catalog(self):
        return SkuCatalog.default()

    def test_fit_and_recommend_identical_to_per_customer(self, module_catalog, records):
        customers = [
            FleetCustomer.from_record(record, customer_id=f"c{index:03d}")
            for index, record in enumerate(records)
        ]
        outcomes = {}
        for columnar in (False, True):
            fleet = FleetEngine(
                engine=DopplerEngine(catalog=module_catalog),
                backend="serial",
                columnar=columnar,
            )
            report = fleet.fit_fleet(records)
            results = [result_projection(r) for r in fleet.recommend_fleet(customers)]
            outcomes[columnar] = (report, results)
        assert outcomes[False] == outcomes[True]

    def test_columnar_failure_containment_matches(self, module_catalog):
        bad = FleetCustomer(
            customer_id="bad",
            trace=make_trace(np.full(8, 1.0), data_size_gb=np.full(8, 1e9)),
            deployment=DeploymentType.SQL_DB,
        )
        good = FleetCustomer(
            customer_id="good", trace=full_trace(n=16), deployment=DeploymentType.SQL_DB
        )
        per_path = {}
        for columnar in (False, True):
            fleet = FleetEngine(
                engine=DopplerEngine(catalog=module_catalog),
                backend="serial",
                columnar=columnar,
            )
            per_path[columnar] = [
                result_projection(r) for r in fleet.recommend_fleet([bad, good])
            ]
        assert per_path[False] == per_path[True]
        assert per_path[True][0][0] == "bad"
        assert per_path[True][0][-1] is not None  # contained error string
        assert per_path[True][1][-1] is None

    def test_mi_customers_take_columnar_path(self, module_catalog, records):
        customers = [
            FleetCustomer(
                customer_id=f"mi{index}",
                trace=record.trace,
                deployment=DeploymentType.SQL_MI,
                file_sizes_gib=(64.0, 32.0) if index % 2 else None,
            )
            for index, record in enumerate(records[:6])
        ]
        per_path = {}
        for columnar in (False, True):
            fleet = FleetEngine(
                engine=DopplerEngine(catalog=module_catalog),
                backend="serial",
                columnar=columnar,
            )
            per_path[columnar] = [
                result_projection(r) for r in fleet.recommend_fleet(customers)
            ]
        assert per_path[False] == per_path[True]

    def test_columnar_chunk_probes_cache_in_batches(self, module_catalog, records):
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        fleet.fit_fleet(records)
        after_fit = fleet.cache_stats()
        assert after_fit.misses > 0 and after_fit.hits == 0
        customers = [
            FleetCustomer.from_record(record, customer_id=f"c{index:03d}")
            for index, record in enumerate(records)
        ]
        list(fleet.recommend_fleet(customers))
        after_recommend = fleet.cache_stats()
        assert after_recommend.hits >= after_fit.misses

    def test_duplicate_customers_share_one_build(self, module_catalog):
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog), backend="serial"
        )
        customer = FleetCustomer(
            customer_id="dup", trace=full_trace(n=16), deployment=DeploymentType.SQL_DB
        )
        results = list(fleet.recommend_fleet([customer, customer, customer]))
        assert all(r.ok for r in results)
        stats = fleet.cache_stats()
        # Same counters a sequential get_or_build loop would produce:
        # one build, the duplicates served as hits.
        assert stats.misses == 1
        assert stats.hits == 2
        assert len({result_projection(r)[1:] for r in results}) == 1

    def test_duplicate_failing_customers_count_misses_like_serial(self, module_catalog):
        """Counter parity on the failure path: duplicates re-miss."""
        bad = FleetCustomer(
            customer_id="bad",
            trace=make_trace(np.full(8, 1.0), data_size_gb=np.full(8, 1e9)),
            deployment=DeploymentType.SQL_DB,
        )
        per_path = {}
        for columnar in (False, True):
            fleet = FleetEngine(
                engine=DopplerEngine(catalog=module_catalog),
                backend="serial",
                columnar=columnar,
            )
            results = list(fleet.recommend_fleet([bad, bad]))
            stats = fleet.cache_stats()
            per_path[columnar] = (stats.hits, stats.misses)
            assert not any(r.ok for r in results)
        assert per_path[False] == per_path[True] == (0, 2)


class TestMiOverrideGrouping:
    def test_gp_override_applied_to_capacity_matrix(self, module_catalog=None):
        """Columnar override grouping equals per-trace with_iops overrides."""
        skus = [
            make_sku(2, ServiceTier.GENERAL_PURPOSE, deployment=DeploymentType.SQL_MI, name="gp"),
            make_sku(
                4,
                ServiceTier.BUSINESS_CRITICAL,
                deployment=DeploymentType.SQL_MI,
                iops_per_vcore=4000.0,
                name="bc",
            ),
        ]
        catalog = SkuCatalog.from_skus(skus)
        ppm = DopplerEngine(catalog=catalog).ppm
        rng = np.random.default_rng(0)
        n = 32
        trace = make_trace(
            np.abs(rng.normal(1.0, 0.5, n)) + 0.05,
            memory_gb=np.abs(rng.normal(6.0, 2.0, n)) + 0.1,
            # Modest IOPS demand: the planned layout covers >= 95 %,
            # so GP SKUs stay candidates and inherit the override.
            data_iops=np.abs(rng.normal(100.0, 40.0, n)) + 1.0,
            io_latency_ms=np.abs(rng.normal(5.0, 1.0, n)) + 0.2,
            data_size_gb=np.full(n, 100.0),
            entity_id="mi-override",
        )
        assert ppm.plan_mi_storage(trace).gp_allowed
        outcome = ppm.build_curves_batch([trace], DeploymentType.SQL_MI)[0]
        serial = ppm.build_curve(trace, DeploymentType.SQL_MI)
        assert tuple(outcome.points) == tuple(serial.points)
        # The GP point's probability must reflect the layout override,
        # not the SKU's nominal IOPS limit.
        plan = ppm.plan_mi_storage(trace)
        estimator = EmpiricalThrottlingEstimator()
        expected = estimator.probabilities(
            trace,
            skus,
            MI_DIMENSIONS,
            iops_overrides={"gp": plan.layout.total_iops},
        )
        got = {p.sku.name: p.throttling_probability for p in outcome.points}
        np.testing.assert_allclose(
            [got["gp"], got["bc"]], expected, rtol=0, atol=0
        )
