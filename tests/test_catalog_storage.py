"""Unit tests for repro.catalog.storage (MI premium-disk tiers)."""

import pytest

from repro.catalog import (
    PREMIUM_DISK_TIERS,
    FileLayout,
    plan_file_layout,
    tier_for_file_size,
)


class TestTierTable:
    def test_table2_anchor_rows(self):
        # Paper Table 2: P10 / P20 / P50 / P60 limits.
        by_name = {tier.name: tier for tier in PREMIUM_DISK_TIERS}
        assert by_name["P10"].iops == 500 and by_name["P10"].throughput_mibps == 100
        assert by_name["P20"].iops == 2300 and by_name["P20"].throughput_mibps == 150
        assert by_name["P50"].iops == 7500 and by_name["P50"].throughput_mibps == 250
        assert by_name["P60"].iops == 12500 and by_name["P60"].throughput_mibps == 480

    def test_tiers_sorted_by_capacity(self):
        sizes = [tier.max_file_size_gib for tier in PREMIUM_DISK_TIERS]
        assert sizes == sorted(sizes)

    def test_iops_monotone_with_capacity(self):
        iops = [tier.iops for tier in PREMIUM_DISK_TIERS]
        assert iops == sorted(iops)


class TestTierForFileSize:
    def test_small_file_gets_p10(self):
        assert tier_for_file_size(50.0).name == "P10"

    def test_boundary_is_inclusive(self):
        # Table 2: P10 covers [0, 128] GiB.
        assert tier_for_file_size(128.0).name == "P10"
        assert tier_for_file_size(128.0001).name == "P15"

    def test_multi_tib_file(self):
        assert tier_for_file_size(3000.0).name == "P50"
        assert tier_for_file_size(5000.0).name == "P60"

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            tier_for_file_size(0.0)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError, match="exceeds"):
            tier_for_file_size(40000.0)


class TestFileLayout:
    def test_one_disk_per_file(self):
        layout = plan_file_layout([100.0, 400.0, 3000.0])
        assert [tier.name for tier in layout.tiers] == ["P10", "P20", "P50"]

    def test_total_iops_is_sum(self):
        layout = plan_file_layout([100.0, 100.0, 100.0])
        assert layout.total_iops == 3 * 500.0

    def test_total_throughput_is_sum(self):
        layout = plan_file_layout([100.0, 400.0])
        assert layout.total_throughput_mibps == 100.0 + 150.0

    def test_total_capacity(self):
        layout = plan_file_layout([100.0, 400.0])
        assert layout.total_capacity_gib == 128.0 + 512.0

    def test_covers_uses_95_percent_rule(self):
        layout = plan_file_layout([100.0])  # 500 IOPS, 100 MiB/s
        # 520 IOPS demand: 500 >= 0.95 * 520 = 494 -> covered.
        assert layout.covers(520.0, 50.0)
        # 600 IOPS demand: 500 < 570 -> not covered.
        assert not layout.covers(600.0, 50.0)

    def test_covers_checks_throughput_too(self):
        layout = plan_file_layout([100.0])
        assert not layout.covers(100.0, 200.0)

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            plan_file_layout([])

    def test_layout_paper_example_three_128gb_files(self):
        # Paper: "a customer can choose an MI SKU that creates 3 files
        # that can each fit within a 128GB disk".
        layout = plan_file_layout([128.0, 128.0, 128.0])
        assert all(tier.name == "P10" for tier in layout.tiers)
        assert layout.total_iops == 1500.0
