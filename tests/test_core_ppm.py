"""Unit tests for the Price-Performance Modeler (incl. MI two-step)."""

import numpy as np
import pytest

from repro.catalog import DeploymentType, ServiceTier, SkuCatalog
from repro.core import PricePerformanceModeler
from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries

from .conftest import full_trace, make_sku


def mi_catalog():
    skus = []
    for vcores in (4, 8, 16, 32):
        skus.append(
            make_sku(vcores, ServiceTier.GENERAL_PURPOSE, DeploymentType.SQL_MI,
                     iops_per_vcore=400.0, storage_gb=2048.0,
                     price_per_vcore_hour=0.274)
        )
        skus.append(
            make_sku(vcores, ServiceTier.BUSINESS_CRITICAL, DeploymentType.SQL_MI,
                     iops_per_vcore=2750.0, storage_gb=2048.0,
                     price_per_vcore_hour=0.735)
        )
    return SkuCatalog.from_skus(skus)


def mi_trace(cpu_level=2.0, iops_level=300.0, latency=6.0, storage=100.0, n=288):
    rng = np.random.default_rng(0)

    def jitter(level):
        return np.abs(rng.normal(1.0, 0.02, n)) * level

    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(jitter(cpu_level)),
            PerfDimension.MEMORY: TimeSeries(jitter(cpu_level * 4)),
            PerfDimension.IOPS: TimeSeries(jitter(iops_level)),
            PerfDimension.IO_LATENCY: TimeSeries(jitter(latency)),
            PerfDimension.STORAGE: TimeSeries(jitter(storage)),
        },
        entity_id="mi-test",
    )


class TestDbCurve:
    def test_curve_covers_fitting_skus(self, small_catalog, steady_trace):
        ppm = PricePerformanceModeler(catalog=small_catalog)
        curve = ppm.build_curve(steady_trace, DeploymentType.SQL_DB)
        assert len(curve) == len(small_catalog)

    def test_small_steady_workload_gets_flat_curve(self, small_catalog, steady_trace):
        ppm = PricePerformanceModeler(catalog=small_catalog)
        curve = ppm.build_curve(steady_trace, DeploymentType.SQL_DB)
        assert curve.shape().value == "flat"

    def test_storage_misfit_skus_dropped(self, small_catalog):
        trace = full_trace(cpu_level=1.0)
        big_storage = PerformanceTrace(
            series={
                **{dim: trace[dim] for dim in trace.dimensions if dim is not PerfDimension.STORAGE},
                PerfDimension.STORAGE: trace[PerfDimension.STORAGE].with_values(
                    np.full(trace.n_samples, 4000.0)
                ),
            },
            entity_id="big",
        )
        ppm = PricePerformanceModeler(catalog=small_catalog)
        with pytest.raises(ValueError, match="hold"):
            ppm.build_curve(big_storage, DeploymentType.SQL_DB)

    def test_missing_all_dimensions_rejected(self, small_catalog):
        trace = PerformanceTrace(
            series={PerfDimension.STORAGE: TimeSeries(np.full(10, 10.0))}
        )
        ppm = PricePerformanceModeler(catalog=small_catalog)
        with pytest.raises(ValueError, match="MI performance dimensions"):
            ppm.build_curve(trace, DeploymentType.SQL_MI)

    def test_big_workload_throttles_small_skus(self, small_catalog):
        trace = full_trace(cpu_level=10.0)
        ppm = PricePerformanceModeler(catalog=small_catalog)
        curve = ppm.build_curve(trace, DeploymentType.SQL_DB)
        assert curve.points[0].throttling_probability > 0.9
        assert curve.points[-1].score == pytest.approx(1.0)


class TestMiStorageStep:
    def test_plan_defaults_to_single_file(self):
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        plan = ppm.plan_mi_storage(mi_trace(storage=100.0))
        assert len(plan.layout.tiers) == 1
        assert plan.layout.tiers[0].name == "P10"

    def test_explicit_file_layout(self):
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        plan = ppm.plan_mi_storage(mi_trace(), file_sizes_gib=[100.0, 100.0, 100.0])
        assert plan.layout.total_iops == 1500.0

    def test_gp_allowed_when_layout_covers_demand(self):
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        plan = ppm.plan_mi_storage(mi_trace(iops_level=300.0, storage=100.0))
        assert plan.gp_allowed  # P10 = 500 IOPS >= 0.95 * ~310

    def test_gp_excluded_when_layout_cannot_cover(self):
        """Step 1: IOPS demand beyond the layout -> BC-only candidates."""
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        trace = mi_trace(iops_level=3000.0, storage=100.0)  # P10 = 500 IOPS
        plan = ppm.plan_mi_storage(trace)
        assert not plan.gp_allowed
        curve = ppm.build_curve(trace, DeploymentType.SQL_MI)
        tiers = {point.sku.tier for point in curve}
        assert tiers == {ServiceTier.BUSINESS_CRITICAL}

    def test_gp_iops_limit_from_layout_not_nominal(self):
        """Step 2: the GP IOPS cap is the summed file-disk limit."""
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        # 450 IOPS demand: below P10's 500 (layout) but above nothing
        # nominal -- GP 4 cores nominal would be 1600.  Use a demand
        # *between* layout (500) and nominal (1600) to expose the
        # difference: 1000 IOPS.
        trace = mi_trace(iops_level=1000.0, storage=100.0)
        plan = ppm.plan_mi_storage(trace)
        # Layout covers 95%? 500 < 0.95*~1010 -> GP excluded entirely.
        assert not plan.gp_allowed

    def test_gp_throttles_on_layout_limit(self):
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        # Demand ~480 IOPS: layout P10=500 covers >=95 % (Step 1 passes),
        # but spikes above 500 throttle under the layout limit even
        # though every GP SKU's nominal limit (>=1600) would not.
        rng = np.random.default_rng(1)
        n = 288
        iops = np.full(n, 400.0)
        iops[::20] = 520.0  # 5% of samples above the 500 layout cap
        trace = PerformanceTrace(
            series={
                PerfDimension.CPU: TimeSeries(np.full(n, 1.0)),
                PerfDimension.MEMORY: TimeSeries(np.full(n, 4.0)),
                PerfDimension.IOPS: TimeSeries(iops),
                PerfDimension.IO_LATENCY: TimeSeries(np.full(n, 6.0)),
                PerfDimension.STORAGE: TimeSeries(np.full(n, 100.0)),
            },
            entity_id="gp-layout",
        )
        curve = ppm.build_curve(trace, DeploymentType.SQL_MI)
        cheapest_gp = next(
            point for point in curve if point.sku.tier is ServiceTier.GENERAL_PURPOSE
        )
        assert cheapest_gp.throttling_probability > 0.0


class TestMiCurve:
    def test_instance_curve_built(self):
        ppm = PricePerformanceModeler(catalog=mi_catalog())
        curve = ppm.build_curve(mi_trace(), DeploymentType.SQL_MI)
        assert len(curve) > 0
        assert all(p.sku.deployment is DeploymentType.SQL_MI for p in curve)
