"""Unit tests for the catalog generator, pricing model and catalog API."""

import pytest

from repro.catalog import (
    DEFAULT_PRICING,
    DeploymentType,
    HardwareGeneration,
    PricingModel,
    ServiceTier,
    SkuCatalog,
    default_catalog_skus,
    generate_skus,
)

from .conftest import make_sku


class TestPricing:
    def test_figure1_db_gp_2core_anchor(self):
        """Figure 1: DB GP 2 vCores listed at $0.51/h (compute only)."""
        compute = 2 * DEFAULT_PRICING.db_gp_vcore_hour
        assert compute == pytest.approx(0.505, abs=0.01)

    def test_figure1_db_bc_2core_anchor(self):
        compute = 2 * DEFAULT_PRICING.db_bc_vcore_hour
        assert compute == pytest.approx(1.36, abs=0.01)

    def test_bc_costs_more_than_gp(self):
        sku_gp = make_sku(4, ServiceTier.GENERAL_PURPOSE)
        limits = sku_gp.limits
        for deployment in DeploymentType:
            gp = DEFAULT_PRICING.price_per_hour(
                deployment, ServiceTier.GENERAL_PURPOSE, HardwareGeneration.GEN5, limits
            )
            bc = DEFAULT_PRICING.price_per_hour(
                deployment, ServiceTier.BUSINESS_CRITICAL, HardwareGeneration.GEN5, limits
            )
            assert bc > gp

    def test_price_scales_with_vcores(self):
        small = make_sku(2, storage_gb=32.0).limits
        big = make_sku(8, storage_gb=32.0).limits
        p_small = DEFAULT_PRICING.price_per_hour(
            DeploymentType.SQL_DB, ServiceTier.GENERAL_PURPOSE, HardwareGeneration.GEN5, small
        )
        p_big = DEFAULT_PRICING.price_per_hour(
            DeploymentType.SQL_DB, ServiceTier.GENERAL_PURPOSE, HardwareGeneration.GEN5, big
        )
        assert p_big > p_small * 3.5

    def test_storage_surcharge_applies_beyond_allowance(self):
        pricing = PricingModel()
        small = make_sku(2, storage_gb=32.0).limits
        big = make_sku(2, storage_gb=2048.0).limits
        p_small = pricing.price_per_hour(
            DeploymentType.SQL_DB, ServiceTier.GENERAL_PURPOSE, HardwareGeneration.GEN5, small
        )
        p_big = pricing.price_per_hour(
            DeploymentType.SQL_DB, ServiceTier.GENERAL_PURPOSE, HardwareGeneration.GEN5, big
        )
        assert p_big > p_small


class TestGenerator:
    def test_catalog_exceeds_200_skus(self):
        """The paper: Azure has 'over 200 different PaaS cloud SKUs'."""
        assert len(default_catalog_skus()) > 200

    def test_deterministic_order(self):
        assert [sku.name for sku in generate_skus()] == [
            sku.name for sku in generate_skus()
        ]

    def test_unique_names(self):
        names = [sku.name for sku in generate_skus()]
        assert len(names) == len(set(names))

    def test_both_deployments_and_tiers_present(self):
        skus = default_catalog_skus()
        combos = {(sku.deployment, sku.tier) for sku in skus}
        assert len(combos) == 4

    def test_figure1_db_gp_2core_limits(self):
        """Figure 1 anchor row: GP 2 vCores -> 10.4 GB mem, 640 IOPS, 7.5 MBps."""
        match = [
            sku
            for sku in default_catalog_skus()
            if sku.deployment is DeploymentType.SQL_DB
            and sku.tier is ServiceTier.GENERAL_PURPOSE
            and sku.hardware is HardwareGeneration.GEN5
            and sku.limits.vcores == 2
        ]
        assert match
        sku = match[0]
        assert sku.limits.max_memory_gb == pytest.approx(10.4)
        assert sku.limits.max_data_iops == pytest.approx(640)
        assert sku.limits.max_log_rate_mbps == pytest.approx(7.5)
        assert sku.limits.min_io_latency_ms == 5.0

    def test_figure1_db_bc_2core_limits(self):
        match = [
            sku
            for sku in default_catalog_skus()
            if sku.deployment is DeploymentType.SQL_DB
            and sku.tier is ServiceTier.BUSINESS_CRITICAL
            and sku.hardware is HardwareGeneration.GEN5
            and sku.limits.vcores == 2
        ]
        sku = match[0]
        assert sku.limits.max_data_iops == pytest.approx(8000)
        assert sku.limits.max_log_rate_mbps == pytest.approx(24.0)
        assert sku.limits.min_io_latency_ms == 1.0

    def test_log_rate_capped(self):
        for sku in default_catalog_skus():
            assert sku.limits.max_log_rate_mbps <= 96.0


class TestSkuCatalog:
    def test_sorted_by_price(self, default_catalog):
        prices = [sku.monthly_price for sku in default_catalog]
        assert prices == sorted(prices)

    def test_cheapest(self, small_catalog):
        assert small_catalog.cheapest().vcores == 2

    def test_for_deployment_filters(self, default_catalog):
        db_only = default_catalog.for_deployment(DeploymentType.SQL_DB)
        assert all(sku.deployment is DeploymentType.SQL_DB for sku in db_only)
        assert len(db_only) < len(default_catalog)

    def test_for_tier_filters(self, small_catalog):
        bc = small_catalog.for_tier(ServiceTier.BUSINESS_CRITICAL)
        assert len(bc) == 5
        assert all(sku.tier is ServiceTier.BUSINESS_CRITICAL for sku in bc)

    def test_fitting_storage(self, default_catalog):
        fitted = default_catalog.fitting_storage(3000.0)
        assert all(sku.limits.max_data_size_gb >= 3000.0 for sku in fitted)
        assert len(fitted) > 0

    def test_by_name_roundtrip(self, small_catalog):
        sku = small_catalog[3]
        assert small_catalog.by_name(sku.name) is sku

    def test_by_name_missing_raises(self, small_catalog):
        with pytest.raises(KeyError):
            small_catalog.by_name("nope")

    def test_duplicate_names_rejected(self):
        sku = make_sku(2, name="dup")
        with pytest.raises(ValueError, match="duplicate"):
            SkuCatalog.from_skus([sku, make_sku(4, name="dup")])

    def test_empty_catalog_cheapest_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SkuCatalog.from_skus([]).cheapest()

    def test_price_range(self, small_catalog):
        lo, hi = small_catalog.price_range()
        assert lo < hi
