"""Unit tests for ECDF, AUC, scaling, outliers and bootstrap."""

import numpy as np
import pytest

from repro.ml import (
    block_bootstrap_indices,
    bootstrap_indices,
    ecdf,
    ecdf_auc,
    ecdf_auc_by_integration,
    max_scale,
    minmax_scale,
    outlier_fraction,
    resolve_rng,
)


class TestEcdf:
    def test_monotone_and_ends_at_one(self):
        distribution = ecdf(np.array([3.0, 1.0, 2.0, 2.0]))
        probs = distribution.probabilities
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_evaluation(self):
        distribution = ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert distribution(0.5) == 0.0
        assert distribution(2.0) == pytest.approx(0.5)
        assert distribution(10.0) == 1.0

    def test_vectorised_evaluation(self):
        distribution = ecdf(np.array([1.0, 2.0]))
        np.testing.assert_allclose(distribution(np.array([0.0, 1.5, 3.0])), [0.0, 0.5, 1.0])

    def test_quantile(self):
        distribution = ecdf(np.arange(1.0, 101.0))
        assert distribution.quantile(0.5) == pytest.approx(50.0)
        assert distribution.quantile(1.0) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([1.0, np.nan]))


class TestAuc:
    def test_spiky_sample_has_high_auc(self):
        # Mostly idle with one spike at the top of the range.
        values = np.concatenate([np.full(99, 0.01), [1.0]])
        assert ecdf_auc(values) > 0.9

    def test_steady_high_sample_has_low_auc(self):
        values = np.full(100, 0.95)
        assert ecdf_auc(values) < 0.1

    def test_uniform_sample_auc_half(self):
        values = np.linspace(0.0, 1.0, 1001)
        assert ecdf_auc(values) == pytest.approx(0.5, abs=0.01)

    def test_matches_reference_integration(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            values = rng.random(50)
            assert ecdf_auc(values) == pytest.approx(
                ecdf_auc_by_integration(values), abs=1e-12
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="normalized"):
            ecdf_auc(np.array([0.5, 1.5]))


class TestScaling:
    def test_minmax_range(self):
        scaled = minmax_scale(np.array([2.0, 4.0, 6.0]))
        assert scaled.min() == 0.0 and scaled.max() == 1.0

    def test_minmax_constant_is_zero(self):
        np.testing.assert_array_equal(minmax_scale(np.full(5, 3.0)), np.zeros(5))

    def test_max_scale(self):
        scaled = max_scale(np.array([2.0, 4.0]))
        np.testing.assert_allclose(scaled, [0.5, 1.0])

    def test_max_scale_all_zero(self):
        np.testing.assert_array_equal(max_scale(np.zeros(3)), np.zeros(3))


class TestOutliers:
    def test_constant_has_none(self):
        assert outlier_fraction(np.full(100, 5.0)) == 0.0

    def test_spike_detected(self):
        values = np.concatenate([np.zeros(999), [100.0]])
        assert outlier_fraction(values) == pytest.approx(0.001)

    def test_gaussian_has_few(self):
        rng = np.random.default_rng(0)
        assert outlier_fraction(rng.normal(size=100_000)) < 0.01

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            outlier_fraction(np.ones(3), n_sigma=0.0)


class TestBootstrap:
    def test_resolve_rng_passthrough(self):
        generator = np.random.default_rng(5)
        assert resolve_rng(generator) is generator

    def test_resolve_rng_seed_deterministic(self):
        assert resolve_rng(3).random() == resolve_rng(3).random()

    def test_iid_shapes(self):
        rounds = list(bootstrap_indices(100, 5, rng=0))
        assert len(rounds) == 5
        assert all(r.shape == (100,) for r in rounds)
        assert all(r.min() >= 0 and r.max() < 100 for r in rounds)

    def test_iid_sample_fraction(self):
        rounds = list(bootstrap_indices(100, 2, rng=0, sample_fraction=0.5))
        assert all(r.shape == (50,) for r in rounds)

    def test_block_windows_are_contiguous(self):
        for indices in block_bootstrap_indices(100, 8, window=20, rng=1):
            assert indices.shape == (20,)
            assert np.all(np.diff(indices) == 1)

    def test_block_window_clipped_to_series(self):
        rounds = list(block_bootstrap_indices(10, 3, window=50, rng=2))
        assert all(r.shape == (10,) for r in rounds)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(bootstrap_indices(0, 1))
        with pytest.raises(ValueError):
            list(bootstrap_indices(10, 0))
        with pytest.raises(ValueError):
            list(bootstrap_indices(10, 1, sample_fraction=0.0))
        with pytest.raises(ValueError):
            list(block_bootstrap_indices(10, 1, window=0))

    def test_determinism_with_seed(self):
        a = [r.tolist() for r in bootstrap_indices(50, 3, rng=7)]
        b = [r.tolist() for r in bootstrap_indices(50, 3, rng=7)]
        assert a == b
