"""Unified execution-backend layer: routing, parity, state handoff.

The contract under test is *serial identity*: every backend -- batch
or streaming -- must produce result sequences byte-identical to the
serial backend's, including per-customer failure containment and
quarantine ordering, because customers' state is confined to exactly
one shard and emissions are reassembled into feed order.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import DopplerEngine
from repro.core.negotiability import (
    CombinedSummarizer,
    MaxAucSummarizer,
    MinMaxAucSummarizer,
    OutlierSummarizer,
    StlSummarizer,
    ThresholdingSummarizer,
)
from repro.core.profiler import CustomerProfiler
from repro.dma import AssessmentPipeline
from repro.fleet import (
    BACKEND_NAMES,
    FleetEngine,
    FleetSample,
    WatchConfig,
    make_backend,
)
from repro.simulation import FleetConfig, simulate_fleet
from repro.streaming import LiveRecommender
from repro.telemetry import PerfDimension, TimeSeries
from repro.telemetry.counters import PROFILING_DB_DIMENSIONS
from repro.telemetry.streaming import StreamingSeriesStats

from .conftest import full_trace

WATCH_CONFIG = WatchConfig(window=16, min_refresh_samples=8)


def live_samples(n, rng, scale=1.0, storage=120.0):
    """Six-dimension samples sized for the small catalog's SKU ladder."""
    return [
        {
            PerfDimension.CPU: float(scale * abs(rng.normal(1.5, 0.4))),
            PerfDimension.MEMORY: float(scale * abs(rng.normal(6.0, 1.0))),
            PerfDimension.IOPS: float(scale * abs(rng.normal(200.0, 50.0))),
            PerfDimension.IO_LATENCY: float(abs(rng.normal(6.0, 0.5)) + 0.5),
            PerfDimension.LOG_RATE: float(scale * abs(rng.normal(2.0, 0.5))),
            PerfDimension.STORAGE: storage,
        }
        for _ in range(n)
    ]


def interleaved_feed(n_customers, n_each, seed, poison=()):
    """A fleet feed interleaving ``n_customers`` streams round-robin.

    Customers named in ``poison`` get a storage footprint no SKU
    holds, so their first assessment fails and quarantines them.
    """
    rng = np.random.default_rng(seed)
    streams = {}
    for index in range(n_customers):
        customer_id = f"cust-{index}"
        storage = 1e9 if customer_id in poison else 120.0
        streams[customer_id] = live_samples(
            n_each, rng, scale=1.0 + 0.4 * index, storage=storage
        )
    feed = []
    for position in range(n_each):
        for customer_id, samples in streams.items():
            feed.append(FleetSample(customer_id=customer_id, values=samples[position]))
    return feed


def canonical_updates(updates):
    """Byte-comparable projection of a fleet watch's update stream."""
    lines = []
    for update in updates:
        if update.update is None:
            lines.append(f"{update.customer_id}|ERROR|{update.error}")
            continue
        live = update.update
        rec = live.recommendation
        drift = (
            "-"
            if live.drift is None
            else f"{live.drift.max_divergence!r}:{live.drift.worst_sku}"
        )
        throttling = repr(rec.expected_throttling) if rec else None
        lines.append(
            f"{update.customer_id}|{live.n_seen}|{live.n_window}|{live.refreshed}"
            f"|{drift}|{rec.sku.name if rec else None}|{throttling}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_factory_builds_every_advertised_backend(self):
        for name in BACKEND_NAMES:
            assert make_backend(name).name == name

    def test_unknown_backend_message_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            make_backend("mpi")
        message = str(excinfo.value)
        assert "unknown fleet backend 'mpi'" in message
        for name in BACKEND_NAMES:
            assert repr(name) in message

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            make_backend("thread", max_workers=0)

    def test_fleet_engine_validates_backend_eagerly(self, small_catalog):
        with pytest.raises(ValueError, match="unknown fleet backend"):
            FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="mpi")
        with pytest.raises(ValueError, match="max_workers"):
            FleetEngine(
                engine=DopplerEngine(catalog=small_catalog),
                backend="thread",
                max_workers=-1,
            )

    def test_watch_fleet_validates_backend_at_call_time(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        # A plain function returning a generator: the error must fire
        # here, not at first iteration.
        with pytest.raises(ValueError, match="unknown fleet backend"):
            fleet.watch_fleet([], config=WatchConfig(backend="gpu"))
        with pytest.raises(ValueError, match="min_refresh_samples"):
            fleet.watch_fleet([], config=WatchConfig(window=4, min_refresh_samples=12))
        with pytest.raises(ValueError, match="profile mode"):
            fleet.watch_fleet([], config=WatchConfig(profile_mode="psychic"))

    def test_streaming_profile_mode_checked_against_summarizer(self, small_catalog):
        class OpaqueSummarizer(StlSummarizer):
            name = "opaque"
            supports_streaming = False

        engine = DopplerEngine(catalog=small_catalog, summarizer=OpaqueSummarizer())
        fleet = FleetEngine(engine=engine, backend="serial")
        with pytest.raises(ValueError, match="no streaming"):
            fleet.watch_fleet([], config=WatchConfig(profile_mode="streaming"))

    def test_stl_summarizer_accepted_in_streaming_mode(self, small_catalog):
        # Incremental STL landed: all six paper summarizers stream.
        engine = DopplerEngine(catalog=small_catalog, summarizer=StlSummarizer())
        fleet = FleetEngine(engine=engine, backend="serial")
        assert (
            list(fleet.watch_fleet([], config=WatchConfig(profile_mode="streaming")))
            == []
        )


# ----------------------------------------------------------------------
# Streaming parity across backends
# ----------------------------------------------------------------------
class TestWatchParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sharded_watch_equals_serial(self, backend, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(7, 24, seed=60)
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        sharded = canonical_updates(
            fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(backend=backend, max_workers=3))
        )
        assert sharded == serial

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_quarantine_ordering_survives_sharding(self, backend, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(6, 20, seed=61, poison=("cust-1", "cust-4"))
        serial = list(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        sharded = list(
            fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(backend=backend, max_workers=3))
        )
        assert canonical_updates(sharded) == canonical_updates(serial)
        failures = [update for update in sharded if not update.ok]
        assert {update.customer_id for update in failures} == {"cust-1", "cust-4"}
        # Quarantined exactly once each, then silence.
        assert len(failures) == 2

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_every_sample_mode_equals_serial(self, backend, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(5, 12, seed=62)
        serial = list(fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(refreshes_only=False)))
        assert len(serial) == len(feed)  # one emission per sample
        sharded = list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend=backend, max_workers=2, refreshes_only=False
                ),
            )
        )
        assert canonical_updates(sharded) == canonical_updates(serial)

    def test_process_single_worker_equals_serial(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(4, 16, seed=63)
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        one = canonical_updates(
            fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(backend="process", max_workers=1))
        )
        assert one == serial

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_watch_cache_accounting_survives_sharding(self, backend, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(6, 16, seed=64)
        assert fleet.watch_cache_stats() is None  # no watch yet
        updates = list(
            fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(backend=backend, max_workers=3))
        )
        stats = fleet.watch_cache_stats()
        # Every refresh built (or looked up) a curve in a watch-scoped
        # cache; aggregated counters must cover all of them.
        assert stats is not None
        assert stats.hits + stats.misses == len(updates)
        # The batch cache stays untouched by watches.
        assert fleet.cache_stats().misses == 0

    def test_abandoned_process_watch_tears_down(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(4, 16, seed=65)
        stream = fleet.watch_fleet(
            feed, config=WATCH_CONFIG.replace(backend="process", max_workers=2)
        )
        next(stream)
        stream.close()  # must not hang or leak worker processes

    def test_pipeline_watch_fleet_passes_backend_through(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        feed = interleaved_feed(4, 16, seed=66)
        serial = canonical_updates(pipeline.watch_fleet(feed, config=WATCH_CONFIG))
        threaded = canonical_updates(
            pipeline.watch_fleet(feed, config=WATCH_CONFIG.replace(backend="thread", max_workers=2))
        )
        assert threaded == serial
        with pytest.raises(ValueError, match="unknown fleet backend"):
            pipeline.watch_fleet(feed, config=WatchConfig(backend="quantum"))


# ----------------------------------------------------------------------
# Batch passes through the backend layer
# ----------------------------------------------------------------------
class TestBatchThroughBackends:
    @pytest.fixture(scope="class")
    def trained(self, default_catalog):
        config = FleetConfig.paper_db(10, duration_days=3.0, interval_minutes=60.0)
        return [
            customer.record for customer in simulate_fleet(config, default_catalog, rng=19)
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_fit_fleet_parity_across_backends(self, backend, default_catalog, trained):
        serial_engine = DopplerEngine(catalog=default_catalog)
        FleetEngine(engine=serial_engine, backend="serial").fit_fleet(trained)
        parallel_engine = DopplerEngine(catalog=default_catalog)
        FleetEngine(
            engine=parallel_engine, backend=backend, max_workers=2, chunk_size=3
        ).fit_fleet(trained)
        deployment = DeploymentType.SQL_DB
        serial_model = serial_engine.group_model(deployment)
        parallel_model = parallel_engine.group_model(deployment)
        assert serial_model is not None and parallel_model is not None
        assert set(parallel_model.groups) == set(serial_model.groups)
        for key, stats in serial_model.groups.items():
            other = parallel_model.groups[key]
            assert other.count == stats.count
            assert other.p_mean == stats.p_mean
        assert parallel_model.fallback.p_mean == serial_model.fallback.p_mean


# ----------------------------------------------------------------------
# Live-state snapshot / restore (worker handoff)
# ----------------------------------------------------------------------
class TestLiveStateHandoff:
    def drive(self, live, samples):
        return [live.observe(sample) for sample in samples]

    def outcome(self, updates):
        return [
            (
                update.n_seen,
                update.refreshed,
                update.recommendation.sku.name if update.recommendation else None,
                repr(update.recommendation.expected_throttling)
                if update.recommendation
                else None,
            )
            for update in updates
        ]

    @pytest.mark.parametrize("profile_mode", ["exact", "streaming"])
    def test_restored_assessment_continues_identically(
        self, profile_mode, small_catalog
    ):
        engine = DopplerEngine(catalog=small_catalog)
        rng = np.random.default_rng(70)
        feed = live_samples(16, rng) + live_samples(16, rng, scale=4.0)

        def fresh():
            return LiveRecommender(
                engine,
                DeploymentType.SQL_DB,
                window=16,
                min_refresh_samples=8,
                profile_mode=profile_mode,
            )

        reference = fresh()
        expected = self.outcome(self.drive(reference, feed))

        source = fresh()
        head = self.drive(source, feed[:16])
        state = pickle.loads(pickle.dumps(source.snapshot_state()))
        target = fresh()
        target.restore_state(state)
        resumed = head + self.drive(target, feed[16:])
        assert self.outcome(resumed) == expected
        assert target.n_refreshes == reference.n_refreshes
        assert target.builder.entity_id == source.builder.entity_id

    def test_snapshot_is_frozen_against_further_updates(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=16, min_refresh_samples=8
        )
        rng = np.random.default_rng(71)
        self.drive(live, live_samples(12, rng))
        state = live.snapshot_state()
        n_seen = state.builder["n_seen"]
        self.drive(live, live_samples(6, rng))
        assert state.builder["n_seen"] == n_seen  # deep copy, not a view

    def test_mismatched_restore_is_rejected(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=16, min_refresh_samples=8
        )
        self.drive(live, live_samples(8, np.random.default_rng(72)))
        state = live.snapshot_state()
        other_window = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=24, min_refresh_samples=8
        )
        with pytest.raises(ValueError, match="window"):
            other_window.restore_state(state)
        other_mode = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=16,
            min_refresh_samples=8,
            profile_mode="streaming",
        )
        with pytest.raises(ValueError, match="profile_mode"):
            other_mode.restore_state(state)

    def test_whole_recommender_pickles(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=16, min_refresh_samples=8
        )
        rng = np.random.default_rng(73)
        feed = live_samples(24, rng)
        self.drive(live, feed[:12])
        clone = pickle.loads(pickle.dumps(live))
        tail = self.outcome(self.drive(live, feed[12:]))
        assert self.outcome(self.drive(clone, feed[12:])) == tail


# ----------------------------------------------------------------------
# Columnar fit-aggregation tail
# ----------------------------------------------------------------------
class TestProfileBatch:
    def traces(self, lengths, seed=5):
        return [
            full_trace(n=length, cpu_level=1.0 + 0.3 * index, entity_id=f"t{index}", rng=seed + index)
            for index, length in enumerate(lengths)
        ]

    def test_batch_profiles_are_byte_identical(self):
        profiler = CustomerProfiler(
            dimensions=PROFILING_DB_DIMENSIONS, summarizer=ThresholdingSummarizer()
        )
        traces = self.traces([96, 96, 96, 96])
        batch = profiler.profile_batch(traces)
        for trace, profile in zip(traces, batch):
            reference = profiler.profile(trace)
            assert profile.group_key == reference.group_key
            assert profile.negotiable == reference.negotiable
            assert profile.entity_id == reference.entity_id
            assert profile.features.tobytes() == reference.features.tobytes()

    def test_mixed_window_lengths_split_into_shape_groups(self):
        profiler = CustomerProfiler(
            dimensions=PROFILING_DB_DIMENSIONS, summarizer=ThresholdingSummarizer()
        )
        traces = self.traces([64, 96, 64, 128, 96])
        batch = profiler.profile_batch(traces)
        assert [profile.entity_id for profile in batch] == [
            trace.entity_id for trace in traces
        ]
        for trace, profile in zip(traces, batch):
            reference = profiler.profile(trace)
            assert profile.group_key == reference.group_key
            assert profile.features.tobytes() == reference.features.tobytes()

    def test_unbatchable_summarizer_falls_back_to_per_trace(self):
        profiler = CustomerProfiler(
            dimensions=PROFILING_DB_DIMENSIONS, summarizer=StlSummarizer()
        )
        traces = self.traces([64, 64])
        assert not getattr(profiler.summarizer, "supports_batch", False)
        batch = profiler.profile_batch(traces)
        for trace, profile in zip(traces, batch):
            reference = profiler.profile(trace)
            assert profile.group_key == reference.group_key
            assert profile.features.tobytes() == reference.features.tobytes()

    def test_thresholding_batch_matches_scalar_path(self):
        summarizer = ThresholdingSummarizer()
        rng = np.random.default_rng(9)
        matrix = np.abs(rng.normal(5.0, 2.0, size=(12, 200)))
        matrix[3] = 7.25  # constant row: the spread == 0 branch
        features, negotiable = summarizer.summarize_batch(matrix)
        for row in range(matrix.shape[0]):
            series = TimeSeries(values=matrix[row], interval_minutes=10.0)
            ref_features, ref_negotiable = summarizer.summarize(series)
            assert features[row].tobytes() == ref_features.tobytes()
            assert bool(negotiable[row]) == ref_negotiable

    @pytest.mark.parametrize(
        "summarizer",
        [MinMaxAucSummarizer(), MaxAucSummarizer(), CombinedSummarizer()],
        ids=lambda s: s.name,
    )
    def test_auc_batch_matches_scalar_path_bytewise(self, summarizer):
        """AUC batch rows replicate ``ecdf_auc`` bit-for-bit.

        The matrix exercises every scaling branch: noisy rows, a
        constant row (minmax's zero-spread branch), and an all-zero
        row (max's non-positive-peak branch).
        """
        assert summarizer.supports_batch
        rng = np.random.default_rng(10)
        matrix = np.abs(rng.normal(5.0, 2.0, size=(10, 160)))
        matrix[2] = 4.5  # constant
        matrix[6] = 0.0  # all idle
        features, negotiable = summarizer.summarize_batch(matrix)
        for row in range(matrix.shape[0]):
            series = TimeSeries(values=matrix[row], interval_minutes=10.0)
            ref_features, ref_negotiable = summarizer.summarize(series)
            assert features[row].tobytes() == ref_features.tobytes()
            assert bool(negotiable[row]) == ref_negotiable

    @pytest.mark.parametrize(
        "summarizer",
        [MinMaxAucSummarizer(), MaxAucSummarizer(), CombinedSummarizer()],
        ids=lambda s: s.name,
    )
    def test_auc_summarizers_ride_profile_batch(self, summarizer):
        profiler = CustomerProfiler(
            dimensions=PROFILING_DB_DIMENSIONS, summarizer=summarizer
        )
        traces = self.traces([64, 96, 64, 128])
        batch = profiler.profile_batch(traces)
        for trace, profile in zip(traces, batch):
            reference = profiler.profile(trace)
            assert profile.group_key == reference.group_key
            assert profile.features.tobytes() == reference.features.tobytes()

    def test_max_auc_batch_rejects_negatives_like_serial(self):
        summarizer = MaxAucSummarizer()
        matrix = np.abs(np.random.default_rng(11).normal(5.0, 2.0, size=(4, 50)))
        matrix[1, 7] = -3.0
        series = TimeSeries(values=matrix[1], interval_minutes=10.0)
        with pytest.raises(ValueError, match="normalized into"):
            summarizer.summarize(series)
        with pytest.raises(ValueError, match="normalized into"):
            summarizer.summarize_batch(matrix)

    @pytest.mark.parametrize(
        "summarizer",
        [MinMaxAucSummarizer(), MaxAucSummarizer()],
        ids=lambda s: s.name,
    )
    def test_auc_batch_propagates_nan_instead_of_reading_idle(self, summarizer):
        """A NaN row must not silently read as negotiable in batch.

        Traces cannot carry NaN (`TimeSeries` rejects non-finite
        samples at construction), but ``summarize_batch`` accepts raw
        matrices; a NaN row must propagate NaN through the scaling
        branches -- exactly what the elementwise scale/clip/mean
        pipeline does on a 1-D array -- rather than match the
        constant/idle branch and come out as AUC 1.0 (negotiable).
        """
        from repro.ml.auc import ecdf_auc
        from repro.ml.scaling import max_scale, minmax_scale

        rng = np.random.default_rng(12)
        matrix = np.abs(rng.normal(5.0, 2.0, size=(3, 40)))
        matrix[1, 3] = np.nan
        features, negotiable = summarizer.summarize_batch(matrix)
        scale = minmax_scale if isinstance(summarizer, MinMaxAucSummarizer) else max_scale
        assert np.isnan(ecdf_auc(scale(matrix[1])))  # the 1-D pipeline's call
        assert np.isnan(features[1, 0])
        assert not negotiable[1]
        # Finite rows are untouched by the NaN neighbour.
        for row in (0, 2):
            assert features[row, 0] == ecdf_auc(scale(matrix[row]))

    def test_fit_fleet_columnar_tail_matches_per_record(self, default_catalog):
        config = FleetConfig.paper_db(12, duration_days=3.0, interval_minutes=60.0)
        records = [
            customer.record
            for customer in simulate_fleet(config, default_catalog, rng=23)
        ]
        columnar_engine = DopplerEngine(catalog=default_catalog)
        FleetEngine(engine=columnar_engine, backend="serial", columnar=True).fit_fleet(
            records
        )
        reference_engine = DopplerEngine(catalog=default_catalog)
        FleetEngine(
            engine=reference_engine, backend="serial", columnar=False
        ).fit_fleet(records)
        deployment = DeploymentType.SQL_DB
        columnar_model = columnar_engine.group_model(deployment)
        reference_model = reference_engine.group_model(deployment)
        assert columnar_model is not None and reference_model is not None
        assert set(columnar_model.groups) == set(reference_model.groups)
        for key, stats in reference_model.groups.items():
            other = columnar_model.groups[key]
            assert other.count == stats.count
            assert other.p_mean == stats.p_mean
        assert columnar_model.fallback.p_mean == reference_model.fallback.p_mean


# ----------------------------------------------------------------------
# Streaming outlier summarizer
# ----------------------------------------------------------------------
class TestOutlierStreaming:
    def test_supports_streaming_flag(self):
        # Since the incremental STL evaluation landed, every built-in
        # summarizer streams.
        for summarizer in (
            OutlierSummarizer,
            StlSummarizer,
            ThresholdingSummarizer,
            MaxAucSummarizer,
            MinMaxAucSummarizer,
            CombinedSummarizer,
        ):
            assert summarizer.supports_streaming, summarizer.name

    def test_matches_batch_within_sketch_tolerance(self):
        rng = np.random.default_rng(80)
        window = 512
        values = np.abs(rng.normal(10.0, 2.0, size=window))
        values[rng.choice(window, size=6, replace=False)] *= 5.0  # spikes
        summarizer = OutlierSummarizer()
        stats = StreamingSeriesStats(window=window)
        stats.extend(values)
        series = TimeSeries(values=values, interval_minutes=10.0)
        batch_features, batch_negotiable = summarizer.summarize(series)
        stream_features, stream_negotiable = summarizer.summarize_streaming(stats)
        # Documented sketch rank error (1/63) plus block overhang slack.
        assert abs(stream_features[0] - batch_features[0]) < 0.05
        assert stream_negotiable == batch_negotiable

    def test_constant_window_has_zero_outliers(self):
        stats = StreamingSeriesStats(window=64)
        stats.extend(np.full(64, 3.5))
        summarizer = OutlierSummarizer()
        features, negotiable = summarizer.summarize_streaming(stats)
        assert features[0] == 0.0
        assert not negotiable

    def test_drives_live_streaming_profile_mode(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog, summarizer=OutlierSummarizer())
        live = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=16,
            min_refresh_samples=8,
            profile_mode="streaming",
        )
        rng = np.random.default_rng(81)
        updates = [live.observe(sample) for sample in live_samples(16, rng)]
        assert updates[-1].recommendation is not None


# ----------------------------------------------------------------------
# Zero-copy streaming tick plane
# ----------------------------------------------------------------------
class TestZeroCopyTickPlane:
    """The arena-backed watch data plane: identity, handoff, hygiene."""

    def test_zero_copy_watch_matches_serial(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(7, 24, seed=70, poison=("cust-3",))
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        zero_copy = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="process", max_workers=3, zero_copy=True
                ),
            )
        )
        assert zero_copy == serial

    def test_every_sample_mode_matches_serial_under_zero_copy(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(5, 16, seed=71)
        serial = canonical_updates(
            fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(refreshes_only=False))
        )
        zero_copy = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="process",
                    max_workers=3,
                    refreshes_only=False,
                    zero_copy=True,
                ),
            )
        )
        assert zero_copy == serial

    def test_zero_copy_defaults_on_for_process_backend(self, small_catalog, monkeypatch):
        from repro.fleet import backends as backends_module

        created = []
        original = backends_module.TickPlane

        class CountingPlane(original):
            def __init__(self, window):
                created.append(window)
                super().__init__(window)

        monkeypatch.setattr(backends_module, "TickPlane", CountingPlane)
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(3, 8, seed=72)
        list(
            fleet.watch_fleet(
                feed, config=WATCH_CONFIG.replace(backend="process", max_workers=2)
            )
        )
        assert len(created) == 1  # auto-enabled, allocated once per watch
        list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="process", max_workers=2, zero_copy=False
                ),
            )
        )
        assert len(created) == 1  # opt-out respected
        list(
            fleet.watch_fleet(
                feed, config=WATCH_CONFIG.replace(backend="thread", max_workers=2)
            )
        )
        assert len(created) == 1  # same-address-space backends never pay

    def test_migration_during_watch_rides_state_frames(self, small_catalog):
        from repro.fleet.rebalance import Migration, RebalanceDecision, ScheduledRebalancePolicy

        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(8, 24, seed=73, poison=("cust-2",))
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        schedule = {
            1: RebalanceDecision(
                migrations=(Migration("cust-0", 2), Migration("cust-5", 1))
            ),
            3: RebalanceDecision(migrations=(Migration("cust-1", 0),), resize_to=2),
            5: RebalanceDecision(resize_to=4),
        }
        migrated = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="process",
                    max_workers=3,
                    zero_copy=True,
                    tick_samples=4,
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                ),
            )
        )
        assert migrated == serial
        stats = fleet.watch_rebalance_stats()
        assert stats.n_migrations >= 3  # the handoff actually ran

    def test_drained_watch_leaves_shm_clean(self, small_catalog):
        from repro.fleet.arena import leaked_segments

        baseline = leaked_segments()
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(4, 12, seed=74)
        list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="process", max_workers=2, zero_copy=True
                ),
            )
        )
        assert leaked_segments() == baseline

    def test_abandoned_watch_leaves_shm_clean(self, small_catalog):
        from repro.fleet.arena import leaked_segments

        baseline = leaked_segments()
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(4, 20, seed=75)
        stream = fleet.watch_fleet(
            feed,
            config=WATCH_CONFIG.replace(
                backend="process", max_workers=2, zero_copy=True, refreshes_only=False
            ),
        )
        next(stream)
        stream.close()  # abandon mid-watch: teardown must clean up
        assert leaked_segments() == baseline
