"""Unit tests for benchmark signatures and trace generation."""

import numpy as np
import pytest

from repro.telemetry import PerfDimension
from repro.workloads import (
    STANDARD_BENCHMARKS,
    TPCC,
    TPCH,
    YCSB,
    BenchmarkPiece,
    SpikyPattern,
    SteadyPattern,
    WorkloadSpec,
    generate_trace,
)


class TestBenchmarkSignatures:
    def test_four_standard_benchmarks(self):
        names = {bench.name for bench in STANDARD_BENCHMARKS}
        assert names == {"TPC-C", "TPC-H", "TPC-DS", "YCSB"}

    def test_demand_has_all_dimensions(self):
        demand = TPCC.demand()
        assert set(demand) == set(PerfDimension)

    def test_concurrency_scales_throughput_not_memory(self):
        one = TPCC.demand(concurrency=1)
        ten = TPCC.demand(concurrency=10)
        assert ten[PerfDimension.CPU] == pytest.approx(10 * one[PerfDimension.CPU])
        assert ten[PerfDimension.IOPS] == pytest.approx(10 * one[PerfDimension.IOPS])
        assert ten[PerfDimension.MEMORY] == one[PerfDimension.MEMORY]

    def test_scale_factor_grows_storage_linearly(self):
        assert TPCH.demand(scale_factor=10)[PerfDimension.STORAGE] == pytest.approx(
            10 * TPCH.demand(scale_factor=1)[PerfDimension.STORAGE]
        )

    def test_scale_factor_grows_memory_sublinearly(self):
        small = TPCH.demand(scale_factor=1)[PerfDimension.MEMORY]
        big = TPCH.demand(scale_factor=10)[PerfDimension.MEMORY]
        assert small < big < 10 * small

    def test_query_frequency_multiplies_rates(self):
        base = YCSB.demand(query_frequency=1.0)
        double = YCSB.demand(query_frequency=2.0)
        assert double[PerfDimension.IOPS] == pytest.approx(2 * base[PerfDimension.IOPS])

    def test_workload_characters(self):
        # OLTP writes logs hard; analytics barely.
        assert TPCC.demand()[PerfDimension.LOG_RATE] > 10 * TPCH.demand()[PerfDimension.LOG_RATE]
        # Key-value serving is IOPS-heavy per unit CPU.
        assert (
            YCSB.demand()[PerfDimension.IOPS] / YCSB.demand()[PerfDimension.CPU]
            > TPCH.demand()[PerfDimension.IOPS] / TPCH.demand()[PerfDimension.CPU]
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TPCC.demand(scale_factor=0.0)
        with pytest.raises(ValueError):
            TPCC.demand(concurrency=0)
        with pytest.raises(ValueError):
            TPCC.demand(query_frequency=0.0)

    def test_piece_describe(self):
        piece = BenchmarkPiece(signature=TPCC, scale_factor=2.0, concurrency=3)
        assert "TPC-C" in piece.describe()
        assert "clients=3" in piece.describe()


class TestGenerateTrace:
    def spec(self):
        return WorkloadSpec(
            patterns={
                PerfDimension.CPU: SteadyPattern(level=2.0),
                PerfDimension.IOPS: SpikyPattern(base=100.0, peak=800.0),
            },
            storage_gb=50.0,
            base_latency_ms=2.0,
            entity_id="gen-test",
        )

    def test_sample_count_from_duration(self):
        trace = generate_trace(self.spec(), duration_days=1.0, rng=0)
        assert trace.n_samples == 144

    def test_implicit_dimensions_added(self):
        trace = generate_trace(self.spec(), duration_days=1.0, rng=0)
        assert PerfDimension.STORAGE in trace
        assert PerfDimension.IO_LATENCY in trace

    def test_storage_near_footprint(self):
        trace = generate_trace(self.spec(), duration_days=1.0, rng=0)
        assert trace[PerfDimension.STORAGE].mean() == pytest.approx(50.0, rel=0.05)

    def test_latency_correlates_with_iops_pressure(self):
        spec = WorkloadSpec(
            patterns={
                PerfDimension.CPU: SteadyPattern(level=1.0),
                PerfDimension.IOPS: SpikyPattern(
                    base=100.0, peak=4500.0, spike_probability=0.05, noise=0.0
                ),
            },
            storage_gb=50.0,
            base_latency_ms=2.0,
            saturation_iops=5000.0,
        )
        trace = generate_trace(spec, duration_days=2.0, rng=0)
        iops = trace[PerfDimension.IOPS].values
        latency = trace[PerfDimension.IO_LATENCY].values
        assert latency[iops > 4000].mean() > latency[iops < 500].mean()

    def test_explicit_dimension_selection(self):
        trace = generate_trace(
            self.spec(), duration_days=1.0, rng=0, dimensions=(PerfDimension.CPU,)
        )
        assert trace.dimensions == (PerfDimension.CPU,)

    def test_deterministic(self):
        a = generate_trace(self.spec(), duration_days=1.0, rng=5)
        b = generate_trace(self.spec(), duration_days=1.0, rng=5)
        np.testing.assert_array_equal(
            a[PerfDimension.CPU].values, b[PerfDimension.CPU].values
        )

    def test_unsatisfiable_dimension_rejected(self):
        with pytest.raises(ValueError, match="no pattern supplied"):
            generate_trace(
                self.spec(),
                duration_days=1.0,
                dimensions=(PerfDimension.CPU, PerfDimension.MEMORY),
            )

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            generate_trace(self.spec(), duration_days=0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(patterns={})
        with pytest.raises(ValueError):
            WorkloadSpec(
                patterns={PerfDimension.CPU: SteadyPattern(level=1.0)}, storage_gb=0.0
            )
