"""Consistent-hash shard ring: minimal movement, determinism, overrides.

The ring is the watch router, so its contract is load-bearing for the
elastic watch: growth must strand almost no customers (every stranded
customer is a live-state migration), routing must be identical across
processes (parents and workers agree on ownership without ever
comparing notes), and explicit overrides must win over arcs (that is
how hot customers get pinned).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sharding import DEFAULT_RING_REPLICAS, ShardRing

#: A fixed, deterministic population large enough for arc shares to
#: concentrate; the hypothesis strategies vary topology and id prefix,
#: not individual ids (single adversarial ids cannot indict a hash).
POPULATION = 1500


def population(prefix: str) -> list[str]:
    return [f"{prefix}-{index}" for index in range(POPULATION)]


class TestRingBasics:
    def test_routes_are_deterministic_and_in_range(self):
        ring = ShardRing(5)
        for index in range(200):
            shard = ring.route(f"cust-{index}")
            assert 0 <= shard < 5
            assert shard == ring.route(f"cust-{index}")

    def test_every_shard_gets_customers(self):
        ring = ShardRing(6)
        owners = {ring.route(customer_id) for customer_id in population("spread")}
        assert owners == set(range(6))

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRing(0)
        with pytest.raises(ValueError, match="replicas"):
            ShardRing(3, replicas=0)
        with pytest.raises(ValueError, match="n_shards"):
            ShardRing(3).resize(0)

    def test_resize_reports_changed_ids(self):
        ring = ShardRing(3)
        assert ring.resize(5) == (3, 4)
        assert ring.n_shards == 5
        assert ring.resize(5) == ()
        assert ring.resize(2) == (2, 3, 4)
        assert ring.shard_ids == (0, 1)


class TestMinimalMovement:
    @settings(max_examples=30, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=10),
        prefix=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
        ),
    )
    def test_growth_moves_at_most_about_one_over_n(self, n_shards, prefix):
        """Ring growth N -> N+1 re-routes ~1/(N+1) of customers.

        The bound is 2/N: the expected share is 1/(N+1) and with
        :data:`DEFAULT_RING_REPLICAS` virtual nodes the realized share
        concentrates within a few percent of it, so twice the nominal
        share is many standard deviations of slack -- while a modulo
        router would move ~N/(N+1), failing for every N >= 2.
        """
        before = ShardRing(n_shards)
        after = ShardRing(n_shards + 1)
        customers = population(prefix)
        moved = sum(
            1
            for customer_id in customers
            if before.route(customer_id) != after.route(customer_id)
        )
        assert moved / len(customers) <= 2.0 / n_shards

    @settings(max_examples=20, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=8),
        growth=st.integers(min_value=1, max_value=4),
        prefix=st.text(alphabet="abcdef", min_size=1, max_size=6),
    )
    def test_growth_only_strands_customers_onto_new_shards(
        self, n_shards, growth, prefix
    ):
        """No customer ever moves *between surviving shards* on a resize.

        Growth adds ring points without touching existing ones, so a
        route either survives or lands on a new shard; symmetrically,
        shrink only re-routes the removed shards' residents.  This is
        the structural form of the minimal-movement guarantee.
        """
        small = ShardRing(n_shards)
        large = ShardRing(n_shards + growth)
        added = set(range(n_shards, n_shards + growth))
        for customer_id in population(prefix)[:400]:
            before, after = small.route(customer_id), large.route(customer_id)
            if before != after:
                assert after in added  # grow: movers land on new shards only
            if after not in added:
                assert before == after  # shrink view: survivors keep residents

    def test_resize_in_place_matches_fresh_ring(self):
        ring = ShardRing(3)
        ring.resize(7)
        fresh = ShardRing(7)
        for customer_id in population("inplace")[:300]:
            assert ring.route(customer_id) == fresh.route(customer_id)


class TestOverrides:
    def test_override_wins_over_arc_and_clears(self):
        ring = ShardRing(4)
        customer = next(
            customer_id
            for customer_id in population("pin")
            if ring.route(customer_id) != 2
        )
        ring.set_override(customer, 2)
        assert ring.route(customer) == 2
        assert ring.overrides == {customer: 2}
        ring.clear_override(customer)
        assert ring.route(customer) != 2
        ring.clear_override(customer)  # idempotent

    def test_override_to_unknown_shard_rejected(self):
        ring = ShardRing(3)
        with pytest.raises(ValueError, match="unknown shard"):
            ring.set_override("cust", 3)

    def test_shrink_drops_overrides_to_removed_shards(self):
        ring = ShardRing(4)
        ring.set_override("kept", 0)
        ring.set_override("dropped", 3)
        ring.resize(2)
        assert ring.overrides == {"kept": 0}
        assert 0 <= ring.route("dropped") < 2

    def test_assignments_batches_routes(self):
        ring = ShardRing(3)
        customers = population("batch")[:50]
        assert ring.assignments(customers) == {
            customer_id: ring.route(customer_id) for customer_id in customers
        }


class TestCrossProcessDeterminism:
    def test_routing_ignores_pythonhashseed(self):
        """Routes agree across interpreters with different hash seeds.

        The watch parent and its workers never exchange routing tables
        -- they both hash.  A dependence on the per-process builtin
        ``hash`` salt would desynchronize them silently.
        """
        script = (
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.fleet.sharding import ShardRing\n"
            "ring = ShardRing(5)\n"
            "ids = [f'cust-{i}' for i in range(64)]\n"
            "print(json.dumps({'ring': [ring.route(i) for i in ids]}))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for seed in ("0", "424242"):
            result = subprocess.run(
                [sys.executable, "-c", script, src],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1]
        # And the in-process router agrees with both.
        ring = ShardRing(5)
        assert outputs[0]["ring"] == [ring.route(f"cust-{i}") for i in range(64)]


class TestRemovedShim:
    def test_route_customer_shim_is_gone(self):
        """The deprecated free-function router completed its removal cycle."""
        import repro.fleet.sharding as sharding

        assert not hasattr(sharding, "route_customer")
        assert "route_customer" not in sharding.__all__

    def test_default_replica_count_is_documented_constant(self):
        assert ShardRing(2).replicas == DEFAULT_RING_REPLICAS
