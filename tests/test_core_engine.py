"""Unit tests for the DopplerEngine facade."""

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import CloudCustomerRecord, DopplerEngine
from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries
from repro.workloads import PlateauPattern, SpikyPattern

from .conftest import full_trace

N = 1008


def db_trace(flags=(False, False, False, False), scale=1.0, latency=6.0, seed=0):
    """DB-dimension trace; spiky where flag True, plateau otherwise."""
    rng = np.random.default_rng(seed)
    dims = (
        PerfDimension.CPU,
        PerfDimension.MEMORY,
        PerfDimension.IOPS,
        PerfDimension.LOG_RATE,
    )
    peaks = {
        PerfDimension.CPU: 6.0 * scale,
        PerfDimension.MEMORY: 20.0 * scale,
        PerfDimension.IOPS: 1200.0 * scale,
        PerfDimension.LOG_RATE: 10.0 * scale,
    }
    series = {}
    for dim, negotiable in zip(dims, flags):
        if negotiable:
            pattern = SpikyPattern(base=peaks[dim] * 0.2, peak=peaks[dim], spike_probability=0.006)
        else:
            pattern = PlateauPattern(level=peaks[dim])
        series[dim] = TimeSeries(values=pattern.generate(N, 10.0, rng=rng))
    series[PerfDimension.IO_LATENCY] = TimeSeries(
        values=np.abs(rng.normal(latency, 0.3, N)) + 0.1
    )
    series[PerfDimension.STORAGE] = TimeSeries(values=np.full(N, 120.0))
    return PerformanceTrace(series=series, entity_id=f"db-{seed}")


class TestColdStart:
    def test_recommend_without_fit_uses_fallback(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        result = engine.recommend(full_trace(cpu_level=1.0), DeploymentType.SQL_DB)
        assert result.strategy == "cheapest_full_performance"
        assert result.sku.vcores == 2
        assert "heuristic fallback" in " ".join(result.notes)

    def test_explain_renders(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        result = engine.recommend(full_trace(), DeploymentType.SQL_DB)
        text = result.explain()
        assert "Recommended SKU" in text
        assert "Workload profile" in text


class TestFitAndRecommend:
    def make_training(self, small_catalog, n=6):
        """Strict customers settled on the cheapest 100 % SKU."""
        engine = DopplerEngine(catalog=small_catalog)
        records = []
        for seed in range(n):
            trace = db_trace(scale=0.5, seed=seed)
            curve = engine.ppm.build_curve(trace, DeploymentType.SQL_DB)
            full = curve.cheapest_full_performance() or curve.points[-1]
            records.append(
                CloudCustomerRecord(
                    trace=trace,
                    deployment=DeploymentType.SQL_DB,
                    chosen_sku_name=full.sku.name,
                )
            )
        return engine, records

    def test_fit_learns_group_model(self, small_catalog):
        engine, records = self.make_training(small_catalog)
        engine.fit(records)
        assert engine.group_model(DeploymentType.SQL_DB) is not None
        assert engine.group_model(DeploymentType.SQL_MI) is None

    def test_recommend_matches_strict_training(self, small_catalog):
        engine, records = self.make_training(small_catalog)
        engine.fit(records)
        result = engine.recommend(db_trace(scale=0.5, seed=99), DeploymentType.SQL_DB)
        assert result.strategy == "profile_match"
        curve = result.curve
        full = curve.cheapest_full_performance()
        assert result.sku.name == full.sku.name

    def test_unsettled_records_ignored(self, small_catalog):
        engine, records = self.make_training(small_catalog)
        short = [
            CloudCustomerRecord(
                trace=r.trace,
                deployment=r.deployment,
                chosen_sku_name=r.chosen_sku_name,
                days_on_sku=10.0,
            )
            for r in records
        ]
        engine.fit(short)
        assert engine.group_model(DeploymentType.SQL_DB) is None

    def test_unknown_chosen_sku_skipped(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        record = CloudCustomerRecord(
            trace=db_trace(),
            deployment=DeploymentType.SQL_DB,
            chosen_sku_name="not-in-catalog",
        )
        engine.fit([record])
        assert engine.group_model(DeploymentType.SQL_DB) is None

    def test_confidence_attached_when_requested(self, small_catalog):
        engine, records = self.make_training(small_catalog, n=3)
        engine.fit(records)
        result = engine.recommend(
            db_trace(scale=0.5, seed=42),
            DeploymentType.SQL_DB,
            with_confidence=True,
            confidence_rounds=4,
            rng=0,
        )
        assert result.confidence is not None
        assert result.confidence.n_rounds == 4
        assert 0.0 <= result.confidence.score <= 1.0


class TestOverProvisioning:
    def test_detects_over_provisioned_customer(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        trace = full_trace(cpu_level=1.0)  # fits the 2-vCore SKU
        expensive = small_catalog[-1]
        report = engine.assess_over_provisioning(
            trace, DeploymentType.SQL_DB, expensive.name
        )
        assert report.is_over_provisioned
        assert report.recommended_sku.vcores == 2
        assert report.monthly_savings > 0
        assert report.annual_savings == pytest.approx(report.monthly_savings * 12)

    def test_right_sized_customer_not_flagged(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        trace = full_trace(cpu_level=1.0)
        cheapest = small_catalog.cheapest()
        report = engine.assess_over_provisioning(
            trace, DeploymentType.SQL_DB, cheapest.name
        )
        assert not report.is_over_provisioned
        assert report.monthly_savings == 0.0

    def test_utilization_ratio(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        trace = full_trace(cpu_level=1.0)
        sku_16 = next(s for s in small_catalog if s.vcores == 16)
        report = engine.assess_over_provisioning(trace, DeploymentType.SQL_DB, sku_16.name)
        assert report.utilization_ratio < 0.2

    def test_unknown_sku_raises(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        with pytest.raises(KeyError):
            engine.assess_over_provisioning(full_trace(), DeploymentType.SQL_DB, "nope")


class TestRecommendationReporting:
    """Regression: reported throttling must be the raw curve probability.

    The monotonicity adjustment can lift `score` above
    ``1 - throttling_probability``, and even for unlifted points
    ``1.0 - (1.0 - p)`` drifts from ``p`` in floats; the report fields
    must come from ``point.throttling_probability`` directly.
    """

    def test_cold_start_reports_raw_curve_probability(self, small_catalog):
        from repro.core import PricePerformanceCurve

        engine = DopplerEngine(catalog=small_catalog)
        skus = sorted(
            small_catalog.for_deployment(DeploymentType.SQL_DB),
            key=lambda sku: (sku.monthly_price, sku.vcores),
        )
        probabilities = np.full(len(skus), 0.5)
        probabilities[0] = 1.0 / 300.0  # full performance; 1-(1-p) != p
        assert 1.0 - (1.0 - probabilities[0]) != probabilities[0]
        curve = PricePerformanceCurve.from_probabilities(
            skus, probabilities, entity_id="reporting"
        )
        result = engine.recommend(full_trace(), DeploymentType.SQL_DB, curve=curve)
        assert result.strategy == "cheapest_full_performance"
        point = result.curve.point_for(result.sku.name)
        assert result.expected_throttling == point.throttling_probability
        assert result.target_probability == point.throttling_probability
        assert result.expected_throttling == probabilities[0]

    def test_lifted_point_keeps_raw_probability_distinct_from_score(self, small_catalog):
        from repro.core import PricePerformanceCurve

        skus = sorted(
            small_catalog.for_deployment(DeploymentType.SQL_DB),
            key=lambda sku: (sku.monthly_price, sku.vcores),
        )[:2]
        curve = PricePerformanceCurve.from_probabilities(skus, np.array([0.2, 0.6]))
        lifted = curve.points[1]
        assert lifted.score == 0.8  # lifted by the cheaper, better SKU
        assert lifted.throttling_probability == 0.6  # the real risk

    def test_training_observation_records_raw_risk_of_lifted_choice(self, small_catalog):
        from repro.core import PricePerformanceCurve

        engine = DopplerEngine(catalog=small_catalog)
        skus = sorted(
            small_catalog.for_deployment(DeploymentType.SQL_DB),
            key=lambda sku: (sku.monthly_price, sku.vcores),
        )[:2]
        curve = PricePerformanceCurve.from_probabilities(skus, np.array([0.2, 0.6]))
        record = CloudCustomerRecord(
            trace=full_trace(),
            deployment=DeploymentType.SQL_DB,
            chosen_sku_name=skus[1].name,  # the lifted point
            days_on_sku=60.0,
        )
        observation = engine.training_observation(
            record, exclude_over_provisioned=False, curve=curve
        )
        assert observation.throttling_probability == 0.6  # raw, not 1 - 0.8
