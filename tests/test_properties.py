"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    EmpiricalThrottlingEstimator,
    GroupObservation,
    GroupScoreModel,
    PricePerformanceCurve,
)
from repro.ml import (
    agglomerative,
    ecdf,
    ecdf_auc,
    ecdf_auc_by_integration,
    kmeans,
    loess_smooth,
    max_scale,
    minmax_scale,
    outlier_fraction,
)
from repro.telemetry import PerfDimension, TimeSeries

from .conftest import make_sku, make_trace

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)

samples = arrays(np.float64, st.integers(2, 80), elements=finite_floats)
positive_samples = arrays(np.float64, st.integers(2, 80), elements=positive_floats)
unit_samples = arrays(
    np.float64,
    st.integers(1, 80),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestEcdfProperties:
    @given(samples)
    def test_ecdf_is_a_cdf(self, values):
        distribution = ecdf(values)
        probs = distribution.probabilities
        assert np.all(probs > 0)
        assert probs[-1] == pytest.approx(1.0)
        assert np.all(np.diff(probs) >= 0)

    @given(samples, finite_floats)
    def test_ecdf_evaluation_in_unit_interval(self, values, x):
        assert 0.0 <= ecdf(values)(x) <= 1.0

    @given(unit_samples)
    def test_auc_identities(self, values):
        auc = ecdf_auc(values)
        assert 0.0 <= auc <= 1.0
        assert auc == pytest.approx(ecdf_auc_by_integration(values), abs=1e-9)
        assert auc == pytest.approx(1.0 - values.mean(), abs=1e-9)


class TestScalingProperties:
    @given(samples)
    def test_minmax_bounds(self, values):
        scaled = minmax_scale(values)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    @given(positive_samples)
    def test_max_scale_preserves_ratios(self, values):
        scaled = max_scale(values)
        assert scaled.max() == pytest.approx(1.0)
        ratio = values / values.max()
        np.testing.assert_allclose(scaled, ratio, atol=1e-12)

    @given(samples)
    def test_outlier_fraction_bounded(self, values):
        assert 0.0 <= outlier_fraction(values) <= 0.5


class TestCurveProperties:
    @given(
        arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    def test_curve_always_monotone(self, probabilities):
        skus = [make_sku(2 * (i + 1)) for i in range(probabilities.size)]
        curve = PricePerformanceCurve.from_probabilities(skus, probabilities)
        scores = curve.scores()
        assert np.all(np.diff(scores) >= -1e-12)
        assert np.all((scores >= 0.0) & (scores <= 1.0))
        # Monotone adjustment never lowers a score below 1 - raw P.
        for point in curve:
            assert point.score >= 1.0 - point.throttling_probability - 1e-12

    @given(
        arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_group_matching_satisfies_constraint_when_feasible(
        self, probabilities, target
    ):
        skus = [make_sku(2 * (i + 1)) for i in range(probabilities.size)]
        curve = PricePerformanceCurve.from_probabilities(skus, probabilities)
        model = GroupScoreModel.fit([GroupObservation((0,), target)])
        point = model.recommend(curve, (0,))
        feasible = [p for p in curve if 1.0 - p.score <= target + 1e-12]
        if feasible:
            assert 1.0 - point.score <= target + 1e-12
            best_gap = min(abs(1.0 - p.score - target) for p in feasible)
            assert abs(1.0 - point.score - target) == pytest.approx(best_gap, abs=1e-9)


class TestThrottlingProperties:
    @settings(max_examples=25)
    @given(
        arrays(np.float64, 30, elements=st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
        arrays(np.float64, 30, elements=st.floats(min_value=0.0, max_value=200.0, allow_nan=False)),
    )
    def test_probability_bounds_and_monotonicity(self, cpu, memory):
        trace = make_trace(cpu, memory_gb=memory)
        estimator = EmpiricalThrottlingEstimator()
        dims = (PerfDimension.CPU, PerfDimension.MEMORY)
        skus = [make_sku(v) for v in (2, 4, 8, 16, 32, 64)]
        probs = estimator.probabilities(trace, skus, dims)
        assert np.all((probs >= 0.0) & (probs <= 1.0))
        assert np.all(np.diff(probs) <= 1e-12)  # bigger SKU never worse

    @settings(max_examples=25)
    @given(
        arrays(np.float64, 20, elements=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    )
    def test_union_at_least_each_marginal(self, cpu):
        """P(union) >= max of per-dimension violation rates."""
        memory = np.roll(cpu, 7) * 4.0
        trace = make_trace(cpu, memory_gb=memory)
        sku = make_sku(8)
        estimator = EmpiricalThrottlingEstimator()
        joint = estimator.probability(
            trace, sku, (PerfDimension.CPU, PerfDimension.MEMORY)
        )
        cpu_only = estimator.probability(trace, sku, (PerfDimension.CPU,))
        memory_only = estimator.probability(trace, sku, (PerfDimension.MEMORY,))
        assert joint >= max(cpu_only, memory_only) - 1e-12
        assert joint <= cpu_only + memory_only + 1e-12


class TestClusteringProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(4, 25), st.integers(1, 4)),
            elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        st.integers(1, 4),
    )
    def test_kmeans_partitions_all_points(self, points, k):
        k = min(k, points.shape[0])
        result = kmeans(points, k=k, rng=0)
        assert result.labels.shape == (points.shape[0],)
        assert set(result.labels.tolist()) <= set(range(k))
        assert result.inertia >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 20), st.integers(1, 3)),
            elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        st.integers(1, 5),
    )
    def test_agglomerative_cluster_count(self, points, k):
        k = min(k, points.shape[0])
        result = agglomerative(points, n_clusters=k)
        assert len(set(result.labels.tolist())) == k


class TestTimeSeriesProperties:
    @given(positive_samples)
    def test_resample_preserves_mean_of_full_buckets(self, values):
        if values.size < 4:
            return
        ts = TimeSeries(values=values, interval_minutes=10.0)
        coarse = ts.resample(20.0)
        n_full = (len(ts) // 2) * 2
        assert coarse.mean() == pytest.approx(values[:n_full].mean(), rel=1e-9)

    @given(positive_samples)
    def test_degree0_loess_stays_within_data_range(self, values):
        """Degree-0 loess is a weighted average: range-bounded exactly.

        (Degree-1 loess may legitimately overshoot at the boundaries,
        like any local linear extrapolation.)
        """
        smoothed = loess_smooth(values, span=0.5, degree=0)
        assert smoothed.min() >= values.min() - 1e-9
        assert smoothed.max() <= values.max() + 1e-9


class TestStoragePlanProperties:
    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=30000.0, allow_nan=False),
            min_size=1,
            max_size=12,
        )
    )
    def test_layout_invariants(self, sizes):
        from repro.catalog import plan_file_layout

        layout = plan_file_layout(sizes)
        # One disk per file, each disk fits its file.
        assert len(layout.tiers) == len(sizes)
        for tier, size in zip(layout.tiers, sizes):
            assert tier.max_file_size_gib >= size
        # Provisioned capacity covers the data; limits are sums.
        assert layout.total_capacity_gib >= sum(sizes)
        assert layout.total_iops == pytest.approx(sum(t.iops for t in layout.tiers))

    @given(st.floats(min_value=0.5, max_value=30000.0, allow_nan=False))
    def test_tier_selection_is_minimal(self, size):
        from repro.catalog import PREMIUM_DISK_TIERS, tier_for_file_size

        tier = tier_for_file_size(size)
        smaller = [t for t in PREMIUM_DISK_TIERS if t.max_file_size_gib < tier.max_file_size_gib]
        assert all(t.max_file_size_gib < size for t in smaller)


class TestServerlessProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=10, max_size=200),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_cost_scales_linearly_with_rate(self, cpu, rate):
        import numpy as np

        from repro.extensions import ServerlessOffer, evaluate_serverless
        from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries

        trace = PerformanceTrace(
            series={PerfDimension.CPU: TimeSeries(np.asarray(cpu))}
        )
        base_offer = ServerlessOffer(max_vcores=16.0, min_vcores=0.5, price_per_vcore_hour=rate)
        double_offer = ServerlessOffer(
            max_vcores=16.0, min_vcores=0.5, price_per_vcore_hour=2 * rate
        )
        base = evaluate_serverless(trace, base_offer)
        double = evaluate_serverless(trace, double_offer)
        assert double.monthly_cost == pytest.approx(2 * base.monthly_cost, rel=1e-9)
        assert double.throttling_probability == base.throttling_probability

    @given(
        st.lists(st.floats(min_value=0.0, max_value=30.0, allow_nan=False), min_size=10, max_size=200)
    )
    def test_bigger_ceiling_never_throttles_more(self, cpu):
        import numpy as np

        from repro.extensions import ServerlessOffer, evaluate_serverless
        from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries

        trace = PerformanceTrace(
            series={PerfDimension.CPU: TimeSeries(np.asarray(cpu))}
        )
        small = evaluate_serverless(trace, ServerlessOffer(max_vcores=4.0, min_vcores=0.5))
        big = evaluate_serverless(trace, ServerlessOffer(max_vcores=32.0, min_vcores=0.5))
        assert big.throttling_probability <= small.throttling_probability + 1e-12
