"""Fleet-scale batch engine: sharding, parallelism, caching, reports."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.catalog import DeploymentType, SkuCatalog
from repro.core import DopplerEngine
from repro.dma import AssessmentPipeline
from repro.fleet import (
    CurveCache,
    FleetCustomer,
    FleetEngine,
    auto_chunk_size,
    shard,
    summarize_fleet,
    trace_fingerprint,
)
from repro.simulation import FleetConfig, simulate_fleet
from repro.telemetry import (
    dump_trace_batch,
    iter_trace_paths,
    load_trace_batch,
)

from .conftest import full_trace, make_trace

FLEET_SIZE = 18


@pytest.fixture(scope="module")
def module_catalog() -> SkuCatalog:
    return SkuCatalog.default()


@pytest.fixture(scope="module")
def sim_fleet(module_catalog):
    config = FleetConfig.paper_db(FLEET_SIZE, duration_days=3.0, interval_minutes=60.0)
    return simulate_fleet(config, module_catalog, rng=11)


@pytest.fixture(scope="module")
def records(sim_fleet):
    return [customer.record for customer in sim_fleet]


@pytest.fixture(scope="module")
def customers(records):
    return [
        FleetCustomer.from_record(record, customer_id=f"c{index:03d}")
        for index, record in enumerate(records)
    ]


@pytest.fixture(scope="module")
def fitted_fleet_engine(module_catalog, records):
    fleet = FleetEngine(engine=DopplerEngine(catalog=module_catalog), backend="serial")
    fleet.fit_fleet(records)
    return fleet


def result_key(result):
    """Comparable projection of one fleet recommendation."""
    recommendation = result.recommendation
    return (
        result.customer_id,
        recommendation.sku.name if recommendation else None,
        recommendation.strategy if recommendation else None,
        recommendation.expected_throttling if recommendation else None,
        recommendation.target_probability if recommendation else None,
        result.over_provisioned,
        result.error,
    )


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_shard_preserves_order_and_partitions(self):
        items = list(range(23))
        chunks = list(shard(items, 5))
        assert [len(chunk) for chunk in chunks] == [5, 5, 5, 5, 3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_shard_accepts_lazy_iterables(self):
        chunks = list(shard((i * i for i in range(7)), 3))
        assert chunks == [[0, 1, 4], [9, 16, 25], [36]]

    def test_shard_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            list(shard([1, 2], 0))

    def test_auto_chunk_size_bounds(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(10, 4) == 1
        assert auto_chunk_size(10_000, 4) == 64  # capped
        assert 1 <= auto_chunk_size(500, 8) <= 64

    def test_auto_chunk_size_gives_every_worker_several_shards(self):
        size = auto_chunk_size(1000, 4)
        n_shards = -(-1000 // size)
        assert n_shards >= 4 * 4


# ----------------------------------------------------------------------
# Curve cache
# ----------------------------------------------------------------------
class TestCurveCache:
    def test_hits_misses_and_evictions(self):
        cache = CurveCache(maxsize=2)
        built = []

        def builder(tag):
            def build():
                built.append(tag)
                return tag  # cache is value-agnostic

            return build

        assert cache.get_or_build("a", builder("a")) == "a"
        assert cache.get_or_build("a", builder("a")) == "a"  # hit
        assert cache.get_or_build("b", builder("b")) == "b"
        assert cache.get_or_build("c", builder("c")) == "c"  # evicts "a"
        assert cache.get_or_build("a", builder("a2")) == "a2"  # rebuilt
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 4
        assert stats.evictions == 2
        assert stats.size == 2
        assert built == ["a", "b", "c", "a2"]

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            CurveCache(maxsize=0)

    def test_trace_fingerprint_is_stable_and_content_sensitive(self):
        trace_a = full_trace(n=48, rng=3, entity_id="fp")
        trace_b = full_trace(n=48, rng=3, entity_id="fp")
        trace_c = full_trace(n=48, rng=4, entity_id="fp")
        assert trace_fingerprint(trace_a) == trace_fingerprint(trace_b)
        assert trace_fingerprint(trace_a) != trace_fingerprint(trace_c)
        renamed = full_trace(n=48, rng=3, entity_id="other")
        assert trace_fingerprint(trace_a) != trace_fingerprint(renamed)

    def test_trace_fingerprint_fields_cannot_blur_together(self):
        # ('a1', interval 0.5) vs ('a', interval 10.5): naive
        # concatenation of the fields would collide.
        cpu = np.ones(16)
        blur_a = make_trace(cpu=cpu, interval_minutes=10.5, entity_id="a")
        blur_b = make_trace(cpu=cpu, interval_minutes=0.5, entity_id="a1")
        assert trace_fingerprint(blur_a) != trace_fingerprint(blur_b)


# ----------------------------------------------------------------------
# Fleet engine
# ----------------------------------------------------------------------
class TestFleetEngine:
    def test_fit_fleet_matches_single_engine_fit(
        self, module_catalog, records, customers, fitted_fleet_engine
    ):
        reference = DopplerEngine(catalog=module_catalog).fit(records)
        results = list(fitted_fleet_engine.recommend_fleet(customers))
        assert len(results) == len(customers)
        for customer, result in zip(customers, results):
            expected = reference.recommend(customer.trace, customer.deployment)
            assert result.recommendation.sku.name == expected.sku.name
            assert result.recommendation.strategy == expected.strategy

    def test_fit_report_counts(self, fitted_fleet_engine, records):
        report = fitted_fleet_engine.fit_fleet(records)
        assert report.n_records == FLEET_SIZE
        assert "DB" in report.fitted_deployments
        assert 0 < report.n_observations["DB"] <= FLEET_SIZE
        assert report.n_unbuildable == 0

    def test_fit_counts_unbuildable_records(self, module_catalog, records):
        from repro.core import CloudCustomerRecord

        oversized = make_trace(
            cpu=np.full(48, 2.0), entity_id="xxl", data_size_gb=np.full(48, 1e9)
        )
        bad = CloudCustomerRecord(
            trace=oversized,
            deployment=DeploymentType.SQL_DB,
            chosen_sku_name=records[0].chosen_sku_name,
        )
        fleet = FleetEngine(engine=DopplerEngine(catalog=module_catalog), backend="serial")
        report = fleet.fit_fleet([*records, bad])
        assert report.n_unbuildable == 1
        assert "DB" in report.fitted_deployments

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_results_equal_serial(
        self, backend, module_catalog, records, customers, fitted_fleet_engine
    ):
        serial = list(fitted_fleet_engine.recommend_fleet(customers))
        parallel_engine = FleetEngine(
            engine=fitted_fleet_engine.engine,
            backend=backend,
            max_workers=3,
            chunk_size=4,
        )
        parallel = list(parallel_engine.recommend_fleet(customers))
        assert [result_key(r) for r in parallel] == [result_key(r) for r in serial]

    def test_fit_then_recommend_hits_curve_cache(self, module_catalog, records, customers):
        fleet = FleetEngine(engine=DopplerEngine(catalog=module_catalog), backend="serial")
        fleet.fit_fleet(records)
        after_fit = fleet.cache_stats()
        assert after_fit.hits == 0
        assert after_fit.misses > 0
        list(fleet.recommend_fleet(customers))
        after_recommend = fleet.cache_stats()
        # Every curve built during fit is reused during recommend.
        assert after_recommend.hits >= after_fit.misses
        assert after_recommend.hit_rate > 0.4

    def test_cache_eviction_respects_capacity(self, module_catalog, customers):
        fleet = FleetEngine(
            engine=DopplerEngine(catalog=module_catalog),
            backend="serial",
            cache_size=4,
        )
        list(fleet.recommend_fleet(customers))
        stats = fleet.cache_stats()
        assert stats.size <= 4
        assert stats.evictions > 0

    def test_streaming_is_lazy(self, fitted_fleet_engine, customers):
        iterator = fitted_fleet_engine.recommend_fleet(iter(customers))
        first = next(iterator)
        assert first.customer_id == customers[0].customer_id
        iterator.close()  # abandoning the stream must not raise

    def test_per_customer_failure_is_isolated(self, fitted_fleet_engine, customers):
        oversized = make_trace(
            cpu=np.full(48, 2.0),
            entity_id="too-big",
            data_size_gb=np.full(48, 1e9),  # no SKU holds an exabyte
        )
        bad = FleetCustomer(
            customer_id="bad", trace=oversized, deployment=DeploymentType.SQL_DB
        )
        results = list(
            fitted_fleet_engine.recommend_fleet([customers[0], bad, customers[1]])
        )
        assert [r.customer_id for r in results] == [
            customers[0].customer_id,
            "bad",
            customers[1].customer_id,
        ]
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "ValueError" in results[1].error

    def test_rejects_unknown_backend(self, module_catalog):
        with pytest.raises(ValueError):
            FleetEngine(engine=DopplerEngine(catalog=module_catalog), backend="mpi")

    def test_from_record_carries_current_sku(self, records):
        customer = FleetCustomer.from_record(records[0])
        assert customer.current_sku_name == records[0].chosen_sku_name
        assert customer.customer_id == records[0].trace.entity_id

    def test_list_file_sizes_are_coerced_hashable(self, fitted_fleet_engine, customers):
        # Engine-level APIs take list[float]; a list must not poison
        # the curve-cache key (it is stored as a tuple).
        customer = FleetCustomer(
            customer_id="mi-files",
            trace=customers[0].trace,
            deployment=DeploymentType.SQL_MI,
            file_sizes_gib=[64.0, 128.0],
        )
        assert customer.file_sizes_gib == (64.0, 128.0)
        (result,) = list(fitted_fleet_engine.recommend_fleet([customer]))
        assert result.ok, result.error


# ----------------------------------------------------------------------
# Summary report
# ----------------------------------------------------------------------
class TestFleetSummary:
    def test_summary_aggregates(self, fitted_fleet_engine, customers):
        summary = fitted_fleet_engine.summary_report(customers)
        assert summary.n_customers == len(customers)
        assert summary.n_recommended + summary.n_failed == summary.n_customers
        assert sum(summary.tier_counts.values()) == summary.n_recommended
        assert sum(summary.strategy_counts.values()) == summary.n_recommended
        assert summary.total_monthly_cost > 0
        assert summary.annual_cost == pytest.approx(summary.total_monthly_cost * 12.0)
        # Every training record carries its chosen SKU, so every
        # customer gets a right-sizing verdict.
        assert summary.n_assessed_provisioning == summary.n_recommended
        assert 0.0 <= summary.over_provisioning_rate <= 1.0

    def test_summary_counts_failures(self, fitted_fleet_engine, customers):
        oversized = make_trace(
            cpu=np.full(48, 2.0), entity_id="bad", data_size_gb=np.full(48, 1e9)
        )
        bad = FleetCustomer(
            customer_id="bad", trace=oversized, deployment=DeploymentType.SQL_DB
        )
        summary = summarize_fleet(
            fitted_fleet_engine.recommend_fleet([customers[0], bad])
        )
        assert summary.n_failed == 1
        assert summary.errors[0][0] == "bad"

    def test_render_mentions_key_figures(self, fitted_fleet_engine, customers):
        text = fitted_fleet_engine.summary_report(customers).render()
        assert "Fleet recommendation summary" in text
        assert "Projected monthly cost" in text
        assert "By service tier" in text


# ----------------------------------------------------------------------
# DMA fleet stage
# ----------------------------------------------------------------------
class TestDmaFleetStage:
    def test_assess_fleet(self, module_catalog, records, customers):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=module_catalog))
        pipeline.engine.fit(records)
        result = pipeline.assess_fleet(customers[:6])
        assert result.summary.n_customers == 6
        assert len(result.results) == 6
        # 3-day simulated windows are under the 7-day guideline; each
        # affected recommendation carries the reliability warning the
        # single-customer path attaches.
        assert result.n_window_insufficient == 6
        assert set(result.short_window_ids) == {c.customer_id for c in customers[:6]}
        for item in result.results:
            assert any("WARNING" in note for note in item.recommendation.notes)
        assert "Short assessment windows" in result.render()


# ----------------------------------------------------------------------
# Batch trace ingestion
# ----------------------------------------------------------------------
class TestBatchIngestion:
    def test_round_trip_directory(self, tmp_path):
        traces = [full_trace(n=24, rng=i, entity_id=f"db-{i}") for i in range(4)]
        written = dump_trace_batch(traces, tmp_path)
        assert len(written) == 4
        paths = iter_trace_paths(tmp_path)
        assert paths == sorted(written)
        loaded = [trace for _, trace in load_trace_batch(paths)]
        assert [t.entity_id for t in loaded] == sorted(t.entity_id for t in traces)
        original = {t.entity_id: t for t in traces}
        for trace in loaded:
            source = original[trace.entity_id]
            assert trace.dimensions == source.dimensions
            for dim in trace.dimensions:
                np.testing.assert_allclose(trace[dim].values, source[dim].values)

    def test_skip_policy_tolerates_corrupt_files(self, tmp_path):
        dump_trace_batch([full_trace(n=24, entity_id="good")], tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json", encoding="utf-8")
        outcomes = dict(load_trace_batch(iter_trace_paths(tmp_path), on_error="skip"))
        loaded = {path.stem: trace for path, trace in outcomes.items()}
        assert loaded["corrupt"] is None
        assert loaded["good"] is not None
        with pytest.raises(ValueError):
            list(load_trace_batch(iter_trace_paths(tmp_path), on_error="raise"))

    def test_duplicate_entity_ids_rejected(self, tmp_path):
        traces = [full_trace(n=24, entity_id="same"), full_trace(n=24, entity_id="same")]
        with pytest.raises(ValueError):
            dump_trace_batch(traces, tmp_path)

    def test_iter_trace_paths_requires_directory(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            iter_trace_paths(tmp_path / "missing")

    def test_bad_error_policy_raises_at_call_site(self, tmp_path):
        with pytest.raises(ValueError):
            load_trace_batch([], on_error="skpi")  # no iteration needed


class TestCacheDuplicateBuilds:
    """Regression: concurrent same-key builds must be counted honestly."""

    def test_sequential_rebuilds_are_not_duplicates(self):
        cache = CurveCache(maxsize=2)
        cache.get_or_build("a", lambda: "a")
        cache.get_or_build("a", lambda: "a")  # hit
        cache.get_or_build("b", lambda: "b")
        stats = cache.stats()
        assert stats.duplicate_builds == 0
        assert stats.unique_misses == stats.misses == 2

    def test_concurrent_same_key_miss_counts_one_duplicate(self):
        cache = CurveCache(maxsize=4)
        barrier = threading.Barrier(2)

        def build():
            # Neither builder can finish before both have started: the
            # second lookup is guaranteed to observe an in-flight build.
            barrier.wait(timeout=5.0)
            return "curve"

        threads = [
            threading.Thread(target=cache.get_or_build, args=("k", build))
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.duplicate_builds == 1
        assert stats.unique_misses == 1
        assert stats.size == 1
        # The double build settled on one cached value; lookups now hit.
        assert cache.get_or_build("k", lambda: "other") == "curve"
        assert cache.stats().hits == 1

    def test_failed_build_releases_the_in_flight_marker(self):
        cache = CurveCache(maxsize=4)
        with pytest.raises(RuntimeError):
            cache.get_or_build("k", self._boom)
        # A later solo rebuild of the same key is not a duplicate.
        assert cache.get_or_build("k", lambda: "ok") == "ok"
        assert cache.stats().duplicate_builds == 0

    @staticmethod
    def _boom():
        raise RuntimeError("builder exploded")
