"""Unit tests for repro.telemetry.trace and counters."""

import numpy as np
import pytest

from repro.catalog import ResourceLimits
from repro.telemetry import (
    DB_DIMENSIONS,
    MI_DIMENSIONS,
    PROFILING_DB_DIMENSIONS,
    PROFILING_MI_DIMENSIONS,
    PerfDimension,
    PerformanceTrace,
    TimeSeries,
)

from .conftest import make_trace


LIMITS = ResourceLimits(
    vcores=4.0,
    max_memory_gb=20.8,
    max_data_iops=1280.0,
    max_log_rate_mbps=15.0,
    max_data_size_gb=1024.0,
    min_io_latency_ms=5.0,
)


class TestPerfDimension:
    def test_dimension_counts_match_paper(self):
        # Section 3.2: DB adds log rate and storage to the 4 primary dims.
        assert len(DB_DIMENSIONS) == 6
        assert len(MI_DIMENSIONS) == 4
        # Section 5.2.1: 2^4 = 16 DB groups, 2^3 = 8 MI groups.
        assert len(PROFILING_DB_DIMENSIONS) == 4
        assert len(PROFILING_MI_DIMENSIONS) == 3

    def test_only_latency_is_inverted(self):
        inverted = [dim for dim in PerfDimension if dim.lower_is_better]
        assert inverted == [PerfDimension.IO_LATENCY]

    def test_capacity_of(self):
        assert PerfDimension.CPU.capacity_of(LIMITS) == 4.0
        assert PerfDimension.MEMORY.capacity_of(LIMITS) == 20.8
        assert PerfDimension.IOPS.capacity_of(LIMITS) == 1280.0
        assert PerfDimension.LOG_RATE.capacity_of(LIMITS) == 15.0
        assert PerfDimension.STORAGE.capacity_of(LIMITS) == 1024.0
        assert PerfDimension.IO_LATENCY.capacity_of(LIMITS) == 5.0

    def test_demand_and_capacity_throughput(self):
        demand, capacity = PerfDimension.CPU.demand_and_capacity(3.0, LIMITS)
        assert (demand, capacity) == (3.0, 4.0)

    def test_demand_and_capacity_latency_inversion(self):
        # Workload observing 2 ms needs better than the 5 ms floor.
        demand, capacity = PerfDimension.IO_LATENCY.demand_and_capacity(2.0, LIMITS)
        assert demand == pytest.approx(0.5)
        assert capacity == pytest.approx(0.2)
        assert demand > capacity  # throttled

    def test_latency_zero_sample_guarded(self):
        demand, _ = PerfDimension.IO_LATENCY.demand_and_capacity(0.0, LIMITS)
        assert np.isfinite(demand)

    def test_units(self):
        assert PerfDimension.CPU.unit == "vCores"
        assert PerfDimension.IO_LATENCY.unit == "ms"


class TestPerformanceTrace:
    def test_basic_properties(self):
        trace = make_trace(np.ones(6), memory_gb=np.ones(6))
        assert trace.n_samples == 6
        assert trace.interval_minutes == 10.0
        assert PerfDimension.CPU in trace
        assert PerfDimension.IOPS not in trace

    def test_dimensions_in_enum_order(self):
        trace = make_trace(np.ones(4), data_size_gb=np.ones(4), memory_gb=np.ones(4))
        assert trace.dimensions == (
            PerfDimension.CPU,
            PerfDimension.MEMORY,
            PerfDimension.STORAGE,
        )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            PerformanceTrace(
                series={
                    PerfDimension.CPU: TimeSeries(np.ones(4)),
                    PerfDimension.MEMORY: TimeSeries(np.ones(5)),
                }
            )

    def test_mismatched_intervals_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            PerformanceTrace(
                series={
                    PerfDimension.CPU: TimeSeries(np.ones(4), interval_minutes=10.0),
                    PerfDimension.MEMORY: TimeSeries(np.ones(4), interval_minutes=5.0),
                }
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PerformanceTrace(series={})

    def test_getitem_missing_dimension_message(self):
        trace = make_trace(np.ones(3))
        with pytest.raises(KeyError, match="MEMORY"):
            trace[PerfDimension.MEMORY]

    def test_matrix_shape_and_order(self):
        trace = make_trace(np.array([1.0, 2.0]), memory_gb=np.array([3.0, 4.0]))
        matrix = trace.matrix()
        assert matrix.shape == (2, 2)
        assert list(matrix[:, 0]) == [1.0, 2.0]
        assert list(matrix[:, 1]) == [3.0, 4.0]

    def test_restrict(self):
        trace = make_trace(np.ones(3), memory_gb=np.ones(3), data_iops=np.ones(3))
        restricted = trace.restrict((PerfDimension.CPU, PerfDimension.IOPS))
        assert restricted.dimensions == (PerfDimension.CPU, PerfDimension.IOPS)

    def test_restrict_missing_raises(self):
        with pytest.raises(KeyError):
            make_trace(np.ones(3)).restrict((PerfDimension.LOG_RATE,))

    def test_subsample(self):
        trace = make_trace(np.array([1.0, 2.0, 3.0]), memory_gb=np.array([4.0, 5.0, 6.0]))
        sub = trace.subsample(np.array([2, 0]))
        assert list(sub[PerfDimension.CPU].values) == [3.0, 1.0]
        assert list(sub[PerfDimension.MEMORY].values) == [6.0, 4.0]

    def test_subsample_empty_rejected(self):
        with pytest.raises(ValueError):
            make_trace(np.ones(3)).subsample(np.array([], dtype=int))

    def test_head_days(self):
        trace = make_trace(np.arange(288.0))  # 2 days at 10 min
        assert trace.head_days(1.0).n_samples == 144

    def test_resample(self):
        trace = make_trace(np.arange(12.0))
        coarse = trace.resample(30.0)
        assert coarse.n_samples == 4
        assert coarse.interval_minutes == 30.0

    def test_peak_demands_max(self):
        trace = make_trace(np.array([1.0, 5.0]), io_latency_ms=np.array([2.0, 8.0]))
        peaks = trace.peak_demands(1.0)
        assert peaks[PerfDimension.CPU] == 5.0
        # Latency demand is the most demanding (smallest) observation.
        assert peaks[PerfDimension.IO_LATENCY] == 2.0

    def test_peak_demands_quantile(self):
        trace = make_trace(np.arange(101.0))
        assert trace.peak_demands(0.95)[PerfDimension.CPU] == pytest.approx(95.0)
