"""Streaming assessment subsystem: ingestion, estimation, live loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import DopplerEngine, EmpiricalThrottlingEstimator
from repro.core.incremental import IncrementalThrottlingEstimator
from repro.dma import AssessmentPipeline
from repro.fleet import FleetEngine, FleetSample, WatchConfig
from repro.streaming import DriftDetector, LiveRecommender
from repro.telemetry import PerfDimension, StreamingTraceBuilder

from .conftest import make_sku

CPU = PerfDimension.CPU
MEMORY = PerfDimension.MEMORY
LATENCY = PerfDimension.IO_LATENCY

DIMS = (CPU, MEMORY, LATENCY)

#: Live-loop traces need every DB curve/profiling dimension.
LIVE_DIMS = (
    PerfDimension.CPU,
    PerfDimension.MEMORY,
    PerfDimension.IOPS,
    PerfDimension.IO_LATENCY,
    PerfDimension.LOG_RATE,
    PerfDimension.STORAGE,
)


def random_samples(n, rng, scale=1.0):
    """Aligned counter samples over the three-dimension test shape."""
    return [
        {
            CPU: float(scale * abs(rng.normal(3.0, 1.5))),
            MEMORY: float(scale * abs(rng.normal(12.0, 4.0))),
            LATENCY: float(abs(rng.normal(5.0, 1.0)) + 0.2),
        }
        for _ in range(n)
    ]


def live_samples(n, rng, scale=1.0):
    """Six-dimension samples sized for the small catalog's SKU ladder."""
    return [
        {
            PerfDimension.CPU: float(scale * abs(rng.normal(1.5, 0.4))),
            PerfDimension.MEMORY: float(scale * abs(rng.normal(6.0, 1.0))),
            PerfDimension.IOPS: float(scale * abs(rng.normal(200.0, 50.0))),
            PerfDimension.IO_LATENCY: float(abs(rng.normal(6.0, 0.5)) + 0.5),
            PerfDimension.LOG_RATE: float(scale * abs(rng.normal(2.0, 0.5))),
            PerfDimension.STORAGE: 120.0,
        }
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# StreamingTraceBuilder window semantics
# ----------------------------------------------------------------------
class TestStreamingTraceBuilder:
    def test_partial_window_keeps_everything(self):
        builder = StreamingTraceBuilder(DIMS, window=8, interval_minutes=10.0)
        rng = np.random.default_rng(0)
        samples = random_samples(5, rng)
        builder.extend(samples)
        assert builder.n_seen == 5
        assert builder.n_window == 5
        assert not builder.is_full
        assert builder.start_minute == 0.0
        np.testing.assert_array_equal(
            builder.values(CPU), [sample[CPU] for sample in samples]
        )

    def test_window_evicts_oldest_first(self):
        builder = StreamingTraceBuilder(DIMS, window=8, interval_minutes=10.0)
        rng = np.random.default_rng(1)
        samples = random_samples(12, rng)
        builder.extend(samples)
        assert builder.n_seen == 12
        assert builder.n_window == 8
        assert builder.is_full
        # Oldest 4 samples aged out; window start advanced with them.
        assert builder.start_minute == 4 * 10.0
        np.testing.assert_array_equal(
            builder.values(MEMORY), [sample[MEMORY] for sample in samples[-8:]]
        )

    def test_wrap_at_exact_multiple(self):
        builder = StreamingTraceBuilder(DIMS, window=4)
        samples = random_samples(8, np.random.default_rng(2))
        builder.extend(samples)
        np.testing.assert_array_equal(
            builder.values(CPU), [sample[CPU] for sample in samples[-4:]]
        )

    def test_snapshot_is_the_window_tail(self):
        builder = StreamingTraceBuilder(
            DIMS, window=16, interval_minutes=30.0, entity_id="db-42"
        )
        samples = random_samples(40, np.random.default_rng(3))
        builder.extend(samples)
        trace = builder.snapshot()
        assert trace.entity_id == "db-42"
        assert trace.n_samples == 16
        assert trace.interval_minutes == 30.0
        assert trace[CPU].start_minute == (40 - 16) * 30.0
        for dim in DIMS:
            np.testing.assert_array_equal(
                trace[dim].values, [sample[dim] for sample in samples[-16:]]
            )

    def test_snapshot_is_immutable_copy(self):
        builder = StreamingTraceBuilder(DIMS, window=4)
        builder.extend(random_samples(4, np.random.default_rng(4)))
        trace = builder.snapshot()
        before = trace[CPU].values.copy()
        builder.extend(random_samples(4, np.random.default_rng(5)))
        np.testing.assert_array_equal(trace[CPU].values, before)

    def test_extra_sample_keys_ignored(self):
        builder = StreamingTraceBuilder((CPU,), window=4)
        builder.append({CPU: 1.0, MEMORY: 99.0})
        assert builder.n_seen == 1

    def test_missing_dimension_raises(self):
        builder = StreamingTraceBuilder(DIMS, window=4)
        with pytest.raises(KeyError, match="MEMORY"):
            builder.append({CPU: 1.0, LATENCY: 5.0})

    def test_nonfinite_sample_raises(self):
        builder = StreamingTraceBuilder((CPU,), window=4)
        with pytest.raises(ValueError, match="non-finite"):
            builder.append({CPU: float("nan")})

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window"):
            StreamingTraceBuilder(DIMS, window=0)
        with pytest.raises(ValueError, match="dimension"):
            StreamingTraceBuilder((), window=4)
        with pytest.raises(ValueError, match="duplicate"):
            StreamingTraceBuilder((CPU, CPU), window=4)
        with pytest.raises(ValueError, match="interval"):
            StreamingTraceBuilder(DIMS, window=4, interval_minutes=0.0)

    def test_empty_snapshot_raises(self):
        with pytest.raises(ValueError, match="empty"):
            StreamingTraceBuilder(DIMS, window=4).snapshot()

    def test_undeclared_dimension_lookup_raises(self):
        builder = StreamingTraceBuilder((CPU,), window=4)
        with pytest.raises(KeyError, match="MEMORY"):
            builder.values(MEMORY)


# ----------------------------------------------------------------------
# Incremental estimator: exact agreement with the batch estimator
# ----------------------------------------------------------------------
class TestIncrementalEstimator:
    SKUS = [make_sku(v, name=f"sku-{v}") for v in (2, 4, 8, 16)]

    def checkpoints(self, window, n_total, shift_at, seed):
        """Feed a shifting stream; yield (incremental, batch) pairs."""
        rng = np.random.default_rng(seed)
        samples = random_samples(shift_at, rng) + random_samples(
            n_total - shift_at, rng, scale=4.0
        )
        builder = StreamingTraceBuilder(DIMS, window=window)
        estimator = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=window)
        batch = EmpiricalThrottlingEstimator()
        for index, sample in enumerate(samples):
            builder.append(sample)
            estimator.update(sample)
            if (index + 1) % 25 == 0:
                yield (
                    estimator.probabilities(),
                    batch.probabilities(builder.snapshot(), self.SKUS, DIMS),
                )

    def test_matches_batch_before_window_fills(self):
        for incremental, batch in self.checkpoints(
            window=500, n_total=100, shift_at=50, seed=10
        ):
            np.testing.assert_allclose(incremental, batch, rtol=0.0, atol=1e-12)

    def test_matches_batch_on_sliding_window(self):
        """The acceptance bound: 1e-12 agreement on identical windows."""
        any_nonzero = False
        for incremental, batch in self.checkpoints(
            window=64, n_total=300, shift_at=120, seed=11
        ):
            np.testing.assert_allclose(incremental, batch, rtol=0.0, atol=1e-12)
            any_nonzero = any_nonzero or incremental.any()
        assert any_nonzero, "stream never throttled anything; test is vacuous"

    def test_from_trace_equals_per_sample_updates(self):
        rng = np.random.default_rng(12)
        samples = random_samples(90, rng, scale=3.0)
        builder = StreamingTraceBuilder(DIMS, window=32)
        builder.extend(samples)
        seeded = IncrementalThrottlingEstimator.from_trace(
            builder.snapshot(), self.SKUS, DIMS, window=32
        )
        stepped = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=32)
        for sample in samples:
            stepped.update(sample)
        np.testing.assert_array_equal(seeded.probabilities(), stepped.probabilities())

    def test_ingest_trace_equals_update_loop_and_keeps_ring_aligned(self):
        rng = np.random.default_rng(14)
        samples = random_samples(50, rng, scale=3.0)
        collector = StreamingTraceBuilder(DIMS, window=50)
        collector.extend(samples)
        trace = collector.snapshot()
        follow_up = random_samples(10, rng, scale=1.5)
        for window in (None, 8, 50, 64):  # fast paths and the merge loop
            fast = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=window)
            fast.ingest_trace(trace)
            slow = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=window)
            for sample in samples:
                slow.update(sample)
            np.testing.assert_array_equal(fast.probabilities(), slow.probabilities())
            assert fast.n_seen == slow.n_seen
            # Post-ingest updates must evict identically (ring slots align).
            for sample in follow_up:
                fast.update(sample)
                slow.update(sample)
            np.testing.assert_array_equal(fast.probabilities(), slow.probabilities())

    def test_window_none_keeps_whole_stream(self):
        estimator = IncrementalThrottlingEstimator(self.SKUS, (CPU,), window=None)
        for value in (1.0, 100.0, 100.0, 1.0):
            estimator.update({CPU: value})
        assert estimator.n_window == 4
        np.testing.assert_allclose(estimator.probabilities(), [0.5, 0.5, 0.5, 0.5])

    def test_iops_overrides_match_batch(self):
        skus = [make_sku(v, name=f"mi-{v}") for v in (2, 4)]
        overrides = {"mi-2": 5000.0}
        dims = (CPU, PerfDimension.IOPS)
        rng = np.random.default_rng(13)
        samples = [
            {CPU: 1.0, PerfDimension.IOPS: float(abs(rng.normal(900.0, 400.0)))}
            for _ in range(60)
        ]
        builder = StreamingTraceBuilder(dims, window=60)
        estimator = IncrementalThrottlingEstimator(
            skus, dims, window=60, iops_overrides=overrides
        )
        for sample in samples:
            builder.append(sample)
            estimator.update(sample)
        batch = EmpiricalThrottlingEstimator().probabilities(
            builder.snapshot(), skus, dims, iops_overrides=overrides
        )
        np.testing.assert_allclose(estimator.probabilities(), batch, atol=1e-12)
        # The override must actually bite: mi-2 never IOPS-throttles.
        assert estimator.probabilities()[0] == 0.0

    def test_estimates_by_name(self):
        estimator = IncrementalThrottlingEstimator(self.SKUS, (CPU,), window=4)
        estimator.update({CPU: 1000.0})
        estimates = estimator.estimates_by_name()
        assert set(estimates) == {sku.name for sku in self.SKUS}
        assert all(value == 1.0 for value in estimates.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            IncrementalThrottlingEstimator(self.SKUS, DIMS, window=0)
        with pytest.raises(ValueError, match="dimension"):
            IncrementalThrottlingEstimator(self.SKUS, ())
        estimator = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=4)
        with pytest.raises(ValueError, match="no samples"):
            estimator.probabilities()
        with pytest.raises(KeyError, match="MEMORY"):
            estimator.update({CPU: 1.0, LATENCY: 1.0})
        with pytest.raises(ValueError, match="non-finite"):
            estimator.update({CPU: float("inf"), MEMORY: 1.0, LATENCY: 1.0})


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
class TestDriftDetector:
    def test_no_baseline_never_drifts(self):
        report = DriftDetector(threshold=0.01).check({"a": 0.9})
        assert report.max_divergence == 0.0
        assert report.worst_sku is None
        assert not report.drifted

    def test_detects_shift_beyond_threshold(self):
        detector = DriftDetector(threshold=0.05)
        detector.rebase({"a": 0.10, "b": 0.40})
        calm = detector.check({"a": 0.12, "b": 0.41})
        assert not calm.drifted
        stormy = detector.check({"a": 0.12, "b": 0.50})
        assert stormy.drifted
        assert stormy.worst_sku == "b"
        assert stormy.max_divergence == pytest.approx(0.10)

    def test_unknown_skus_ignored(self):
        detector = DriftDetector(threshold=0.05)
        detector.rebase({"a": 0.1})
        report = detector.check({"zzz": 0.99})
        assert not report.drifted

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            DriftDetector(threshold=1.5)


# ----------------------------------------------------------------------
# The live recommendation loop
# ----------------------------------------------------------------------
class TestLiveRecommender:
    def test_warm_up_then_first_recommendation(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=64, min_refresh_samples=10
        )
        rng = np.random.default_rng(20)
        for sample in live_samples(9, rng):
            update = live.observe(sample)
            assert not update.refreshed
            assert update.recommendation is None
        update = live.observe(live_samples(1, rng)[0])
        assert update.refreshed
        assert update.recommendation is not None
        assert update.n_seen == 10
        assert live.n_refreshes == 1

    def test_stationary_stream_never_re_assesses(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=64,
            min_refresh_samples=8,
            drift_threshold=0.05,
        )
        constant = live_samples(1, np.random.default_rng(21))[0]
        refreshes = sum(live.observe(constant).refreshed for _ in range(100))
        assert refreshes == 1  # the initial assessment only

    def test_workload_shift_triggers_drift_refresh(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine,
            DeploymentType.SQL_DB,
            window=48,
            min_refresh_samples=8,
            drift_threshold=0.05,
        )
        rng = np.random.default_rng(22)
        for sample in live_samples(48, rng):
            live.observe(sample)
        small_sku = live.recommendation.sku
        drift_seen = False
        for sample in live_samples(48, rng, scale=12.0):
            update = live.observe(sample)
            if update.refreshed and update.drift is not None:
                assert update.drift.drifted
                drift_seen = True
        assert drift_seen
        assert live.n_refreshes >= 2
        # The shifted regime demands a bigger SKU.
        assert live.recommendation.sku.vcores > small_sku.vcores

    def test_refresh_on_unchanged_window_hits_curve_cache(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=16, min_refresh_samples=8
        )
        for sample in live_samples(16, np.random.default_rng(23)):
            live.observe(sample)
        live.refresh()  # pin the current window's curve in the cache
        before = live.cache.stats()
        live.refresh()  # same window -> same fingerprint -> cache hit
        after = live.cache.stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_reported_throttling_is_on_curve(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        live = LiveRecommender(
            engine, DeploymentType.SQL_DB, window=32, min_refresh_samples=8
        )
        for sample in live_samples(32, np.random.default_rng(24)):
            update = live.observe(sample)
        recommendation = update.recommendation
        point = recommendation.curve.point_for(recommendation.sku.name)
        assert recommendation.expected_throttling == point.throttling_probability

    def test_min_refresh_samples_validation(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        with pytest.raises(ValueError, match="min_refresh_samples"):
            LiveRecommender(engine, DeploymentType.SQL_DB, min_refresh_samples=0)

    def test_window_smaller_than_warm_up_rejected(self, small_catalog):
        # A window below the warm-up gate would never recommend at all.
        engine = DopplerEngine(catalog=small_catalog)
        with pytest.raises(ValueError, match="min_refresh_samples"):
            LiveRecommender(
                engine, DeploymentType.SQL_DB, window=4, min_refresh_samples=12
            )


# ----------------------------------------------------------------------
# Fleet and DMA wiring
# ----------------------------------------------------------------------
class TestWatchFleet:
    def interleaved_feed(self, n_each, seed):
        rng = np.random.default_rng(seed)
        streams = {
            "cust-a": live_samples(n_each, rng),
            "cust-b": live_samples(n_each, rng, scale=3.0),
        }
        for index in range(n_each):
            for customer_id, samples in streams.items():
                yield FleetSample(customer_id=customer_id, values=samples[index])

    def test_streaming_pass_covers_every_customer(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        updates = list(
            fleet.watch_fleet(
                self.interleaved_feed(24, seed=30),
                config=WatchConfig(window=16, min_refresh_samples=8),
            )
        )
        assert {update.customer_id for update in updates} == {"cust-a", "cust-b"}
        for update in updates:
            assert update.update.refreshed
            assert update.recommendation is not None

    def test_refreshes_only_false_yields_every_sample(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        updates = list(
            fleet.watch_fleet(
                self.interleaved_feed(10, seed=31),
                config=WatchConfig(window=16, min_refresh_samples=8, refreshes_only=False),
            )
        )
        assert len(updates) == 20  # one per observed sample

    def test_failing_customer_is_quarantined_not_fatal(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")

        def feed():
            healthy = live_samples(24, np.random.default_rng(33))
            for index in range(24):
                poisoned = dict(healthy[index])
                poisoned[PerfDimension.STORAGE] = 1e9  # no SKU holds this
                yield FleetSample(customer_id="bad", values=poisoned)
                yield FleetSample(customer_id="good", values=healthy[index])

        updates = list(
            fleet.watch_fleet(feed(), config=WatchConfig(window=16, min_refresh_samples=8))
        )
        failures = [update for update in updates if not update.ok]
        assert len(failures) == 1  # surfaced once, then quarantined
        assert failures[0].customer_id == "bad"
        assert "no candidate SKU" in failures[0].error
        assert failures[0].recommendation is None
        good = [update for update in updates if update.customer_id == "good"]
        assert good and all(update.ok for update in good)

    def test_watch_does_not_pollute_the_batch_cache(self, small_catalog):
        # Live windows fingerprint freshly per refresh, so their curve
        # entries go to a watch-scoped cache, never evicting batch curves.
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        list(
            fleet.watch_fleet(
                self.interleaved_feed(16, seed=32),
                config=WatchConfig(window=16, min_refresh_samples=8),
            )
        )
        stats = fleet.cache_stats()
        assert stats.misses == 0 and stats.size == 0  # batch cache untouched


class TestPipelineWatch:
    def test_watch_yields_refreshed_verdicts(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        samples = live_samples(32, np.random.default_rng(40))
        updates = list(
            pipeline.watch(
                samples,
                DeploymentType.SQL_DB,
                entity_id="db-live",
                window=16,
                min_refresh_samples=8,
            )
        )
        assert updates, "expected at least the initial assessment"
        assert all(update.refreshed for update in updates)
        assert updates[0].recommendation.curve.entity_id == "db-live"

    def test_live_recommender_factory_binds_engine(self, small_catalog):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        live = pipeline.live_recommender(DeploymentType.SQL_DB, window=16)
        assert live.engine is pipeline.engine


class TestValidatedRowFastPath:
    """The builder validates once; the estimator takes the row as-is."""

    SKUS = [make_sku(v, name=f"fast-{v}") for v in (2, 8)]

    def test_append_returns_the_validated_row(self):
        builder = StreamingTraceBuilder(DIMS, window=4)
        sample = random_samples(1, np.random.default_rng(50))[0]
        row = builder.append(sample)
        np.testing.assert_array_equal(row, [sample[dim] for dim in DIMS])

    def test_update_vector_equals_update(self):
        rng = np.random.default_rng(51)
        samples = random_samples(30, rng, scale=3.0)
        by_mapping = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=8)
        by_vector = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=8)
        for sample in samples:
            by_mapping.update(sample)
            by_vector.update_vector(np.array([sample[dim] for dim in DIMS]))
        np.testing.assert_array_equal(
            by_mapping.probabilities(), by_vector.probabilities()
        )

    def test_update_vector_shape_validation(self):
        estimator = IncrementalThrottlingEstimator(self.SKUS, DIMS, window=8)
        with pytest.raises(ValueError, match="expected 3 values"):
            estimator.update_vector(np.array([1.0, 2.0]))
