"""Unit tests for the curve heuristics (paper Section 3.2)."""

import numpy as np
import pytest

from repro.core import (
    PricePerformanceCurve,
    largest_performance_increase,
    largest_slope,
    performance_threshold,
)

from .conftest import make_sku


def curve_from(probs, vcores=(2, 4, 6, 8, 10, 12, 14)):
    skus = [make_sku(v) for v in vcores]
    return PricePerformanceCurve.from_probabilities(skus, np.asarray(probs, dtype=float))


class TestLargestPerformanceIncrease:
    def test_flat_curve_picks_cheapest(self):
        choice = largest_performance_increase(curve_from([0.0] * 7))
        assert choice.point.sku.vcores == 2

    def test_picks_point_after_last_significant_gain(self):
        choice = largest_performance_increase(curve_from([0.9, 0.5, 0.2, 0.0, 0.0, 0.0, 0.0]))
        assert choice.point.sku.vcores == 8

    def test_epsilon_controls_significance(self):
        probs = [0.5, 0.1, 0.095, 0.0, 0.0, 0.0, 0.0]
        loose = largest_performance_increase(curve_from(probs), epsilon=0.2)
        tight = largest_performance_increase(curve_from(probs), epsilon=0.001)
        assert loose.point.sku.vcores < tight.point.sku.vcores


class TestLargestSlope:
    def test_finds_steepest_step(self):
        # Biggest jump (0.9 -> 0.1) happens at the 4-core step.
        choice = largest_slope(curve_from([0.9, 0.1, 0.05, 0.0, 0.0, 0.0, 0.0]))
        assert choice.point.sku.vcores == 4

    def test_single_point_curve(self):
        curve = PricePerformanceCurve.from_probabilities([make_sku(2)], np.array([0.3]))
        assert largest_slope(curve).point.sku.vcores == 2


class TestPerformanceThreshold:
    def test_first_point_reaching_gamma(self):
        choice = performance_threshold(curve_from([0.9, 0.5, 0.2, 0.04, 0.0, 0.0, 0.0]), gamma=0.95)
        assert choice.point.sku.vcores == 8

    def test_fallback_when_unreachable(self):
        curve = curve_from([0.9, 0.8, 0.7, 0.6, 0.5, 0.5, 0.5])
        choice = performance_threshold(curve, gamma=0.95)
        assert choice.point.sku.name == curve.points[-1].sku.name
        assert "no SKU reaches" in choice.detail

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            performance_threshold(curve_from([0.0] * 7), gamma=1.5)


class TestFigure5Disagreement:
    def test_heuristics_disagree_on_complex_curves(self):
        """Reproduces the Figure-5 phenomenon: three heuristics, three
        different SKUs on a multi-plateau curve."""
        probs = [0.55, 0.32, 0.30, 0.12, 0.115, 0.05, 0.0]
        curve = curve_from(probs)
        picks = {
            largest_performance_increase(curve).point.sku.vcores,
            largest_slope(curve).point.sku.vcores,
            performance_threshold(curve, gamma=0.95).point.sku.vcores,
        }
        assert len(picks) >= 2  # at least two heuristics disagree
