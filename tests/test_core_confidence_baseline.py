"""Unit tests for the confidence score and the baseline strategy."""

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import BaselineStrategy, confidence_score
from repro.telemetry import PerfDimension, PerformanceTrace

from .conftest import full_trace, make_trace


class TestConfidenceScore:
    def test_stable_trace_full_confidence(self):
        trace = full_trace(cpu_level=1.0)
        result = confidence_score(trace, recommender=lambda t: "always-same", n_rounds=10, rng=0)
        assert result.score == 1.0
        assert result.is_confident
        assert result.votes == {"always-same": 10}

    def test_unstable_recommender_low_confidence(self):
        trace = full_trace()
        counter = iter(range(1000))

        def flaky(t):
            return f"sku-{next(counter) % 5}"

        result = confidence_score(trace, recommender=flaky, n_rounds=10, rng=0)
        assert result.score < 0.7
        assert not result.is_confident

    def test_score_is_agreement_fraction(self):
        trace = make_trace(np.concatenate([np.full(50, 1.0), np.full(50, 9.0)]))

        def half_dependent(t):
            return "big" if t[PerfDimension.CPU].mean() > 4.0 else "small"

        result = confidence_score(
            trace, recommender=half_dependent, n_rounds=40, mode="block",
            window_samples=50, rng=0,
        )
        assert result.original_sku == "big"
        assert 0.1 < result.score < 0.9  # windows land on either half

    def test_iid_mode(self):
        trace = full_trace()
        result = confidence_score(
            trace, recommender=lambda t: "x", n_rounds=5, mode="iid", rng=1
        )
        assert result.n_rounds == 5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            confidence_score(full_trace(), recommender=lambda t: "x", mode="bogus")

    def test_deterministic_given_seed(self):
        trace = full_trace()
        scores = [
            confidence_score(trace, recommender=lambda t: "x", n_rounds=4, rng=9).score
            for _ in range(2)
        ]
        assert scores[0] == scores[1]


class TestBaseline:
    def test_picks_cheapest_satisfying_sku(self, small_catalog):
        trace = full_trace(cpu_level=3.0)  # needs > 2, <= 4 vCores
        sku = BaselineStrategy(quantile=1.0).recommend(
            trace, DeploymentType.SQL_DB, small_catalog
        )
        assert sku is not None
        assert sku.vcores == 4

    def test_quantile_95_ignores_rare_spikes(self, small_catalog):
        cpu = np.full(1000, 1.0)
        cpu[:5] = 30.0  # 0.5% of samples spike
        trace = make_trace(cpu)
        max_pick = BaselineStrategy(quantile=1.0).recommend(
            trace, DeploymentType.SQL_DB, small_catalog
        )
        q95_pick = BaselineStrategy(quantile=0.95).recommend(
            trace, DeploymentType.SQL_DB, small_catalog
        )
        assert max_pick.vcores == 32
        assert q95_pick.vcores == 2

    def test_over_provisions_spiky_workloads(self, small_catalog):
        """The paper's critique: max-reduction sizes to the peak."""
        cpu = np.full(1000, 1.0)
        cpu[::100] = 14.0
        trace = make_trace(cpu)
        sku = BaselineStrategy(quantile=1.0).recommend(
            trace, DeploymentType.SQL_DB, small_catalog
        )
        assert sku.vcores == 16  # sized to the rare peak

    def test_returns_none_when_nothing_satisfies(self, small_catalog):
        """The documented failure mode (paper Section 5.3)."""
        trace = make_trace(np.full(10, 1000.0))  # no SKU has 1000 vCores
        assert (
            BaselineStrategy().recommend(trace, DeploymentType.SQL_DB, small_catalog)
            is None
        )

    def test_latency_requirement_respected(self, small_catalog):
        """A sub-5ms latency need excludes every GP SKU."""
        trace = make_trace(np.full(100, 1.0), io_latency_ms=np.full(100, 1.5))
        sku = BaselineStrategy().recommend(trace, DeploymentType.SQL_DB, small_catalog)
        assert sku is not None
        assert sku.limits.min_io_latency_ms <= 1.5

    def test_storage_always_enforced(self, small_catalog):
        trace = make_trace(np.full(10, 1.0), data_size_gb=np.full(10, 900.0))
        sku = BaselineStrategy().recommend(trace, DeploymentType.SQL_DB, small_catalog)
        assert sku.limits.max_data_size_gb >= 900.0

    def test_scalar_demands_shape(self):
        trace = full_trace()
        demands = BaselineStrategy().scalar_demands(trace)
        assert set(demands) == set(trace.dimensions)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            BaselineStrategy(quantile=0.0)
