"""Elastic watch: mid-watch migration parity, stats, and policies.

The hard contract under test: whatever migration schedule executes --
random moves, hot-customer pins, migrate-while-quarantined, pool grow
and shrink, all mid-stream -- every backend's update stream must stay
byte-identical to the serial backend's static run, because state moves
only at fully drained tick boundaries and the reorder buffer works on
global sequence numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import DeploymentType, ServiceTier, SkuCatalog
from repro.core import DopplerEngine
from repro.fleet import (
    FleetEngine,
    LoadImbalancePolicy,
    WatchConfig,
    Migration,
    RebalanceDecision,
    ScheduledRebalancePolicy,
    ShardLoad,
    WatchLoadSnapshot,
)
from repro.streaming import LiveRecommender

from .conftest import make_sku
from .test_fleet_backends import (
    WATCH_CONFIG,
    canonical_updates,
    interleaved_feed,
    live_samples,
)

BACKENDS = [("serial", None), ("thread", 3), ("process", 3)]


def compact_catalog() -> SkuCatalog:
    """The ``small_catalog`` ladder, buildable at class scope."""
    skus = []
    for vcores in (2, 4, 8, 16, 32):
        skus.append(make_sku(vcores, ServiceTier.GENERAL_PURPOSE))
        skus.append(
            make_sku(
                vcores,
                ServiceTier.BUSINESS_CRITICAL,
                iops_per_vcore=4000.0,
                log_per_vcore=12.0,
                price_per_vcore_hour=0.68,
            )
        )
    return SkuCatalog.from_skus(skus)


def snapshot(shards, customers=(), tick_id=0, n_decisions=0):
    """Synthetic load snapshot: shards = {shard_id: samples_recent}."""
    return WatchLoadSnapshot(
        tick_id=tick_id,
        n_decisions=n_decisions,
        shards=tuple(
            ShardLoad(
                shard_id=shard_id,
                n_customers=8,
                samples_recent=samples,
                samples_total=samples,
                busy_seconds_recent=0.0,
                busy_seconds_total=0.0,
            )
            for shard_id, samples in sorted(shards.items())
        ),
        customer_samples_recent=tuple(customers),
    )


def busy_snapshot(shards, customers=(), tick_id=0, n_decisions=0):
    """Synthetic snapshot with a busy signal: shards = {id: (samples, busy_s)}."""
    return WatchLoadSnapshot(
        tick_id=tick_id,
        n_decisions=n_decisions,
        shards=tuple(
            ShardLoad(
                shard_id=shard_id,
                n_customers=8,
                samples_recent=samples,
                samples_total=samples,
                busy_seconds_recent=busy,
                busy_seconds_total=busy,
            )
            for shard_id, (samples, busy) in sorted(shards.items())
        ),
        customer_samples_recent=tuple(customers),
    )


def random_schedule(rng, customers, n_decisions=14, max_shards=5):
    """A randomized but reproducible migration schedule.

    Tracks the pool size decision-by-decision so every migration
    targets a shard that will exist when it executes (the coordinator
    rejects unknown targets by design).
    """
    schedule = {}
    n_shards = 3
    for index in range(n_decisions):
        roll = rng.random()
        if roll < 0.35:
            continue  # no-op decision point
        migrations = []
        resize_to = None
        if roll < 0.65 or n_shards == 1:
            resize_to = int(rng.integers(1, max_shards + 1))
        if rng.random() < 0.8:
            pool = resize_to if resize_to is not None else n_shards
            for customer in rng.choice(customers, size=rng.integers(1, 4), replace=False):
                migrations.append(Migration(str(customer), int(rng.integers(0, pool))))
        schedule[index] = RebalanceDecision(
            migrations=tuple(migrations), resize_to=resize_to
        )
        if resize_to is not None:
            n_shards = resize_to
    return schedule


# ----------------------------------------------------------------------
# Migration parity across backends
# ----------------------------------------------------------------------
class TestMigrationParity:
    @pytest.fixture(scope="class")
    def fleet_and_serial(self):
        fleet = FleetEngine(engine=DopplerEngine(catalog=compact_catalog()), backend="serial")
        feed = interleaved_feed(8, 24, seed=91, poison=("cust-2", "cust-5"))
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        return fleet, feed, serial

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_schedule_matches_serial(
        self, backend, workers, seed, fleet_and_serial
    ):
        fleet, feed, serial = fleet_and_serial
        customers = [f"cust-{index}" for index in range(8)]
        schedule = random_schedule(np.random.default_rng(seed), customers)
        policy = ScheduledRebalancePolicy(schedule=schedule)
        events = []
        sharded = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend=backend,
                    max_workers=workers,
                    rebalance=policy,
                    on_rebalance=events.append,
                    tick_samples=4,
                ),
            )
        )
        assert sharded == serial
        stats = fleet.watch_rebalance_stats()
        # Accounting invariants: events mirror the stats counters, the
        # routed sample totals cover the whole feed, and every executed
        # move resolved its source shard.
        assert stats.events == tuple(events)
        assert stats.n_rebalances == len(events)
        assert stats.n_migrations == sum(
            1 for event in events for move in event.moves if move.source is not None
        )
        assert stats.n_resizes == sum(
            1 for event in events if event.resized_to is not None
        )
        # Post-quarantine samples are dropped in the parent (never
        # routed), so the routed totals cover the feed minus the
        # poisoned customers' tails.
        routed = sum(count for _, count in stats.samples_by_shard)
        assert 0 < routed <= len(feed)
        assert stats.n_decisions > 0

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_migrate_while_quarantined(self, backend, workers, fleet_and_serial):
        """A quarantined customer's silence must survive its migration."""
        fleet, feed, serial = fleet_and_serial
        # Late decisions, well after cust-2/cust-5 poisoned and quarantined.
        schedule = {
            6: RebalanceDecision(resize_to=max(2, (workers or 1))),
            8: RebalanceDecision(
                migrations=(Migration("cust-2", 1), Migration("cust-5", 0))
            ),
            10: RebalanceDecision(migrations=(Migration("cust-2", 0),)),
        }
        sharded = list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend=backend,
                    max_workers=workers,
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    tick_samples=4,
                ),
            )
        )
        assert canonical_updates(sharded) == serial
        failures = [update for update in sharded if not update.ok]
        assert {update.customer_id for update in failures} == {"cust-2", "cust-5"}
        assert len(failures) == 2  # quarantined once each, never resurrected

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_migrate_then_resize_in_one_decision(self, backend, workers, fleet_and_serial):
        fleet, feed, serial = fleet_and_serial
        schedule = {
            2: RebalanceDecision(resize_to=4),
            7: RebalanceDecision(
                migrations=(Migration("cust-0", 1), Migration("cust-6", 0)),
                resize_to=2,
            ),
        }
        sharded = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend=backend,
                    max_workers=workers,
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    tick_samples=4,
                ),
            )
        )
        assert sharded == serial
        stats = fleet.watch_rebalance_stats()
        assert stats.final_n_shards == 2
        assert stats.n_resizes == 2

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_streaming_profile_mode_survives_migration(
        self, backend, workers, small_catalog
    ):
        """Migrated `StreamingSeriesStats` keep profiling identically."""
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(5, 20, seed=98)
        config = WATCH_CONFIG.replace(profile_mode="streaming")
        serial = canonical_updates(fleet.watch_fleet(feed, config=config))
        schedule = {
            3: RebalanceDecision(resize_to=max(2, workers or 2)),
            6: RebalanceDecision(
                migrations=(Migration("cust-0", 1), Migration("cust-3", 0))
            ),
        }
        sharded = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=config.replace(
                    backend=backend,
                    max_workers=workers,
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    tick_samples=4,
                ),
            )
        )
        assert sharded == serial

    def test_unconsumed_watch_spawns_no_workers(self, small_catalog):
        """Creating (and abandoning) a watch generator is free.

        The process pool must spawn lazily on first iteration; a
        generator that is never consumed must not park worker
        processes on their queues for the parent's lifetime.
        """
        import multiprocessing

        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(3, 8, seed=99)
        before = len(multiprocessing.active_children())
        stream = fleet.watch_fleet(
            feed, config=WATCH_CONFIG.replace(backend="process", max_workers=2)
        )
        assert len(multiprocessing.active_children()) == before
        stream.close()  # never iterated: nothing to tear down

    def test_quarantined_customers_stop_counting_as_load(self, small_catalog):
        """Post-quarantine samples are dropped, not routed as phantom load.

        The parent learns of a quarantine from the error emission, so
        a few in-flight samples still route before the drop kicks in;
        after that the poisoned customer's tail (it fails at its
        ``min_refresh_samples``-th sample) must vanish from the
        routed totals instead of reading as the hottest load forever.
        """
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        n_customers, n_each = 4, 20
        feed = interleaved_feed(n_customers, n_each, seed=100, poison=("cust-1",))
        updates = list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="thread", max_workers=2, tick_samples=2
                ),
            )
        )
        assert sum(1 for update in updates if not update.ok) == 1
        stats = fleet.watch_rebalance_stats()
        routed = sum(count for _, count in stats.samples_by_shard)
        assert routed < len(feed)  # the tail was dropped...
        assert routed >= len(feed) - n_each  # ...but only cust-1's tail

    def test_empty_feed_with_policy_is_clean(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        policy = LoadImbalancePolicy()
        assert list(fleet.watch_fleet([], config=WATCH_CONFIG.replace(rebalance=policy))) == []
        stats = fleet.watch_rebalance_stats()
        assert stats.n_decisions == 0
        assert stats.samples_by_shard == ()

    def test_unknown_migration_target_fails_fast(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(3, 12, seed=92)
        policy = ScheduledRebalancePolicy(
            schedule={0: RebalanceDecision(migrations=(Migration("cust-0", 9),))}
        )
        with pytest.raises(ValueError, match="unknown shard"):
            list(fleet.watch_fleet(feed, config=WATCH_CONFIG.replace(rebalance=policy)))


# ----------------------------------------------------------------------
# Watch accounting
# ----------------------------------------------------------------------
class TestWatchAccounting:
    def test_stats_none_before_any_watch(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        assert fleet.watch_rebalance_stats() is None

    def test_static_watch_reports_routing_load(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(5, 12, seed=93)
        updates = list(
            fleet.watch_fleet(
                feed, config=WATCH_CONFIG.replace(backend="thread", max_workers=3)
            )
        )
        assert updates
        stats = fleet.watch_rebalance_stats()
        assert stats.n_decisions == 0
        assert stats.events == ()
        assert stats.final_n_shards == 3
        assert sum(count for _, count in stats.samples_by_shard) == len(feed)

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_cache_entries_release_on_source_and_rebuild_on_target(
        self, backend, workers, small_catalog
    ):
        """Migrated customers' curves leave the source shard's cache.

        The watch-scoped accounting contract: entries release on the
        source (counted in ``released``), every emission still pairs
        with exactly one lookup, and the aggregate keeps covering the
        whole stream after any schedule.
        """
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(6, 24, seed=94)
        # Move everyone somewhere late in the feed, after refreshes
        # populated the source caches.
        schedule = {
            6: RebalanceDecision(resize_to=max(2, workers or 2)),
            8: RebalanceDecision(
                migrations=tuple(
                    Migration(f"cust-{index}", index % 2) for index in range(6)
                )
            ),
        }
        updates = list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend=backend,
                    max_workers=workers,
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    tick_samples=4,
                ),
            )
        )
        stats = fleet.watch_cache_stats()
        assert stats.released > 0
        assert stats.hits + stats.misses == len(updates)
        assert fleet.watch_rebalance_stats().n_migrations > 0

    def test_on_rebalance_sees_resolved_sources(self, small_catalog):
        from repro.fleet import ShardRing

        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(4, 16, seed=95)
        away = 1 - ShardRing(2).route("cust-1")  # a shard cust-1 is NOT on
        schedule = {
            4: RebalanceDecision(resize_to=2),
            6: RebalanceDecision(migrations=(Migration("cust-1", away),)),
        }
        events = []
        list(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    on_rebalance=events.append,
                    tick_samples=4,
                ),
            )
        )
        assert [event.resized_to for event in events][0] == 2
        explicit = [
            move
            for event in events
            for move in event.moves
            if move.customer_id == "cust-1"
        ]
        assert explicit and explicit[0].source is not None

    def test_pipeline_watch_fleet_passes_rebalance_through(self, small_catalog):
        from repro.dma import AssessmentPipeline

        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=small_catalog))
        feed = interleaved_feed(4, 16, seed=97)
        serial = canonical_updates(pipeline.watch_fleet(feed, config=WATCH_CONFIG))
        schedule = {2: RebalanceDecision(resize_to=2)}
        events = []
        elastic = canonical_updates(
            pipeline.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    rebalance=ScheduledRebalancePolicy(schedule=schedule),
                    on_rebalance=events.append,
                    tick_samples=4,
                ),
            )
        )
        assert elastic == serial
        assert events and events[0].resized_to == 2

    def test_watch_fleet_validates_rebalance_arguments_eagerly(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        with pytest.raises(ValueError, match="RebalancePolicy"):
            fleet.watch_fleet([], config=WatchConfig(rebalance="load"))
        with pytest.raises(ValueError, match="on_rebalance"):
            fleet.watch_fleet([], config=WatchConfig(on_rebalance="notify"))
        with pytest.raises(ValueError, match="tick_samples"):
            fleet.watch_fleet([], config=WatchConfig(tick_samples=0))


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestLoadImbalancePolicy:
    def test_quiet_fleet_decides_nothing(self):
        policy = LoadImbalancePolicy(min_samples=100)
        assert policy.decide(snapshot({0: 10, 1: 10})) is None
        # Balanced load above the gate: still nothing.
        assert policy.decide(snapshot({0: 100, 1: 100, 2: 100})) is None

    def test_imbalance_moves_hottest_customers_to_colder_shards(self):
        policy = LoadImbalancePolicy(min_samples=10, max_migrations=2)
        decision = policy.decide(
            snapshot(
                {0: 90, 1: 10, 2: 20},
                customers=[("hot-a", 30, 0), ("hot-b", 25, 0), ("cold", 10, 1)],
            )
        )
        assert decision is not None
        # Hottest residents shed first, spread round-robin coldest-first.
        targets = {move.customer_id: move.target for move in decision.migrations}
        assert targets == {"hot-a": 1, "hot-b": 2}

    def test_hot_customer_keeps_shard_neighbours_move(self):
        policy = LoadImbalancePolicy(min_samples=10, hot_customer_share=0.5)
        decision = policy.decide(
            snapshot(
                {0: 100, 1: 10},
                customers=[("whale", 80, 0), ("minnow-a", 12, 0), ("minnow-b", 8, 0)],
            )
        )
        moved = {move.customer_id for move in decision.migrations}
        assert "whale" not in moved  # indivisible hot key is isolated in place
        assert moved == {"minnow-a", "minnow-b"}

    def test_resize_targets_samples_per_shard(self):
        policy = LoadImbalancePolicy(
            min_samples=10, samples_per_shard_target=100, max_workers=8
        )
        decision = policy.decide(snapshot({0: 250, 1: 250}))
        assert decision.resize_to == 5
        shrink = policy.decide(snapshot({0: 40, 1: 40, 2: 40}))
        assert shrink.resize_to == 2

    def test_shrink_never_targets_removed_shards(self):
        """A shrink+migrate decision must stay executable.

        With a skewed fleet the coldest shards are exactly the ones a
        shrink removes; handing them out as migration targets would
        make the coordinator reject the decision and kill the watch.
        """
        policy = LoadImbalancePolicy(
            min_samples=10, samples_per_shard_target=100, max_migrations=4
        )
        decision = policy.decide(
            snapshot(
                {0: 150, 1: 20, 2: 10, 3: 5},
                customers=[("a", 60, 0), ("b", 50, 0), ("c", 30, 0)],
            )
        )
        assert decision is not None
        assert decision.resize_to == 2  # 185 recent / 100 target
        for move in decision.migrations:
            assert move.target < decision.resize_to

    def test_shrink_to_one_shard_skips_migrations(self):
        policy = LoadImbalancePolicy(min_samples=10, samples_per_shard_target=1000)
        decision = policy.decide(
            snapshot({0: 90, 1: 10}, customers=[("a", 60, 0), ("b", 30, 0)])
        )
        assert decision is not None
        assert decision.resize_to == 1
        assert decision.migrations == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="imbalance_threshold"):
            LoadImbalancePolicy(imbalance_threshold=1.0)
        with pytest.raises(ValueError, match="hot_customer_share"):
            LoadImbalancePolicy(hot_customer_share=0.0)
        with pytest.raises(ValueError, match="max_workers"):
            LoadImbalancePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError, match="interval_ticks"):
            LoadImbalancePolicy(interval_ticks=0)

    def test_skewed_watch_rebalances_and_stays_identical(self, small_catalog):
        fleet = FleetEngine(engine=DopplerEngine(catalog=small_catalog), backend="serial")
        feed = interleaved_feed(8, 24, seed=96)
        serial = canonical_updates(fleet.watch_fleet(feed, config=WATCH_CONFIG))
        policy = LoadImbalancePolicy(
            min_samples=16, interval_ticks=2, imbalance_threshold=1.2
        )
        sharded = canonical_updates(
            fleet.watch_fleet(
                feed,
                config=WATCH_CONFIG.replace(
                    backend="thread", max_workers=3, rebalance=policy, tick_samples=4
                ),
            )
        )
        assert sharded == serial

    def test_decision_validation(self):
        with pytest.raises(ValueError, match="resize_to"):
            RebalanceDecision(resize_to=0)
        decision = RebalanceDecision(migrations=[Migration("c", 1)])
        assert isinstance(decision.migrations, tuple)
        assert not decision.is_noop
        assert RebalanceDecision().is_noop


class TestBusySecondsPolicy:
    """The busy-seconds unit of account: expensive customers count as load."""

    def test_expensive_customers_trigger_without_sample_skew(self):
        """Equal sample counts, skewed busy-seconds: the trigger fires.

        Shard 0's customers cost 9x the seconds per sample, which the
        sample-count view cannot see -- the whole point of switching
        the trigger to busy-seconds.
        """
        policy = LoadImbalancePolicy(min_samples=10)
        customers = [("pricey", 20, 0), ("cheap-a", 15, 0), ("cheap-b", 10, 1)]
        # Sample-count view of the same fleet: perfectly balanced, no move.
        assert policy.decide(snapshot({0: 50, 1: 50}, customers=customers)) is None
        decision = policy.decide(
            busy_snapshot({0: (50, 9.0), 1: (50, 1.0)}, customers=customers)
        )
        assert decision is not None
        targets = {move.customer_id: move.target for move in decision.migrations}
        assert targets == {"pricey": 1, "cheap-a": 1}

    def test_busy_excess_converts_to_sample_counts_for_shedding(self):
        """Shedding stops once moved samples cover the busy excess.

        Excess 4 busy-seconds at shard 0's 9s/50-sample rate is ~22
        samples: the hottest resident (20) is not enough, two are.
        The third resident stays put.
        """
        policy = LoadImbalancePolicy(min_samples=10, max_migrations=8)
        decision = policy.decide(
            busy_snapshot(
                {0: (50, 9.0), 1: (50, 1.0)},
                customers=[("a", 20, 0), ("b", 15, 0), ("c", 10, 0)],
            )
        )
        assert [move.customer_id for move in decision.migrations] == ["a", "b"]

    def test_resize_targets_busy_seconds_per_shard(self):
        policy = LoadImbalancePolicy(
            min_samples=10, busy_seconds_per_shard_target=1.0, max_workers=8
        )
        grow = policy.decide(busy_snapshot({0: (100, 2.4), 1: (100, 2.4)}))
        assert grow.resize_to == 5  # ceil(4.8 busy-seconds / 1.0 target)
        shrink = policy.decide(
            busy_snapshot({0: (100, 0.6), 1: (100, 0.5), 2: (100, 0.4)})
        )
        assert shrink.resize_to == 2

    def test_busy_target_falls_back_to_samples_without_signal(self):
        """Synthetic snapshots without busy-seconds keep working."""
        policy = LoadImbalancePolicy(
            min_samples=10,
            busy_seconds_per_shard_target=1.0,
            samples_per_shard_target=100,
            max_workers=8,
        )
        decision = policy.decide(snapshot({0: 250, 1: 250}))
        assert decision.resize_to == 5  # ceil(500 samples / 100 target)

    def test_busy_target_validation(self):
        with pytest.raises(ValueError, match="busy_seconds_per_shard_target"):
            LoadImbalancePolicy(busy_seconds_per_shard_target=0.0)
        with pytest.raises(ValueError, match="busy_seconds_per_shard_target"):
            LoadImbalancePolicy(busy_seconds_per_shard_target=-1.5)


# ----------------------------------------------------------------------
# Migration-safe state epochs
# ----------------------------------------------------------------------
class TestStateEpochs:
    def fresh(self, engine):
        return LiveRecommender(
            engine, DeploymentType.SQL_DB, window=16, min_refresh_samples=8
        )

    def test_epochs_advance_along_a_migration_chain(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        rng = np.random.default_rng(70)
        first = self.fresh(engine)
        for sample in live_samples(12, rng):
            first.observe(sample)
        assert first.state_epoch == 0
        second = self.fresh(engine)
        second.restore_state(first.snapshot_state())
        assert second.state_epoch == 1
        third = self.fresh(engine)
        third.restore_state(second.snapshot_state())
        assert third.state_epoch == 2

    def test_stale_snapshot_is_rejected(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        rng = np.random.default_rng(71)
        source = self.fresh(engine)
        for sample in live_samples(12, rng):
            source.observe(sample)
        stale = source.snapshot_state()
        target = self.fresh(engine)
        target.restore_state(stale)
        for sample in live_samples(6, rng):
            target.observe(sample)
        with pytest.raises(ValueError, match="stale live state snapshot"):
            target.restore_state(stale)  # epoch 0 onto an epoch-1 recommender

    def test_restore_resets_curve_key_tracking(self, small_catalog):
        engine = DopplerEngine(catalog=small_catalog)
        rng = np.random.default_rng(72)
        source = self.fresh(engine)
        for sample in live_samples(12, rng):
            source.observe(sample)
        assert source.last_curve_key is not None  # refreshed at least once
        target = self.fresh(engine)
        target.restore_state(source.snapshot_state())
        assert target.last_curve_key is None  # curves stayed with the source
