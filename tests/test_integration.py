"""Integration tests: the full pipelines the paper's evaluation runs."""

import numpy as np
import pytest

from repro.catalog import DeploymentType, SkuCatalog
from repro.core import BaselineStrategy, CurveShape, DopplerEngine
from repro.dma import AssessmentPipeline
from repro.simulation import (
    FleetConfig,
    simulate_fleet,
    simulate_onprem_estate,
    simulate_sku_change_customers,
)
from repro.workloads import WorkloadSynthesizer, replay_on_sku


@pytest.fixture(scope="module")
def catalog():
    return SkuCatalog.default()


@pytest.fixture(scope="module")
def db_fleet(catalog):
    config = FleetConfig.paper_db(60, duration_days=4, interval_minutes=30)
    return simulate_fleet(config, catalog, rng=11)


@pytest.fixture(scope="module")
def fitted_engine(catalog, db_fleet):
    engine = DopplerEngine(catalog=catalog)
    engine.fit([c.record for c in db_fleet])
    return engine


class TestBacktestPipeline:
    """Section 5.2: back-testing on migrated-customer data."""

    def test_backtest_accuracy_in_paper_zone(self, fitted_engine, db_fleet):
        hits = total = 0
        for customer in db_fleet:
            if customer.is_over_provisioned or not customer.record.is_settled:
                continue
            result = fitted_engine.recommend(
                customer.record.trace, DeploymentType.SQL_DB
            )
            hits += result.sku.name == customer.chosen_sku_name
            total += 1
        accuracy = hits / total
        # Paper Table 5: 89.4 % for DB.  Small fleets are noisy; the
        # invariant we hold is "clearly better than chance and in the
        # high-accuracy regime".
        assert accuracy > 0.75

    def test_excluding_over_provisioned_improves_accuracy(self, fitted_engine, db_fleet):
        """The Table-4 -> Table-5 improvement."""

        def accuracy(customers):
            hits = total = 0
            for customer in customers:
                if not customer.record.is_settled:
                    continue
                result = fitted_engine.recommend(
                    customer.record.trace, DeploymentType.SQL_DB
                )
                hits += result.sku.name == customer.chosen_sku_name
                total += 1
            return hits / max(total, 1)

        with_op = accuracy(db_fleet)
        without_op = accuracy([c for c in db_fleet if not c.is_over_provisioned])
        assert without_op > with_op

    def test_curve_type_mixture(self, fitted_engine, db_fleet):
        """Figure 9: flat curves dominate, complex is a solid minority."""
        shapes = []
        for customer in db_fleet:
            curve = fitted_engine.ppm.build_curve(
                customer.record.trace, DeploymentType.SQL_DB
            )
            shapes.append(curve.shape())
        flat_share = shapes.count(CurveShape.FLAT) / len(shapes)
        complex_share = shapes.count(CurveShape.COMPLEX) / len(shapes)
        assert flat_share > 0.5
        assert complex_share > 0.05


class TestRightSizing:
    """Section 5.1: identifying over-provisioned cloud customers."""

    def test_over_provisioned_customers_detected(self, fitted_engine, db_fleet):
        flagged = []
        for customer in db_fleet:
            report = fitted_engine.assess_over_provisioning(
                customer.record.trace,
                DeploymentType.SQL_DB,
                customer.chosen_sku_name,
            )
            flagged.append(report.is_over_provisioned)
        truth = [c.is_over_provisioned for c in db_fleet]
        # Detection agrees with ground truth on a clear majority.
        agreement = np.mean([f == t for f, t in zip(flagged, truth)])
        assert agreement > 0.8

    def test_savings_reported_for_flagged_customers(self, fitted_engine, db_fleet):
        over = [c for c in db_fleet if c.is_over_provisioned]
        if not over:
            pytest.skip("no over-provisioned customer in this fleet draw")
        report = fitted_engine.assess_over_provisioning(
            over[0].record.trace, DeploymentType.SQL_DB, over[0].chosen_sku_name
        )
        if report.is_over_provisioned:
            assert report.monthly_savings > 0


class TestSkuChangeDetection:
    """Section 5.2.3 / Figure 11."""

    def test_curves_detect_upgrades(self, catalog):
        customers = simulate_sku_change_customers(
            5, catalog, duration_days=2, interval_minutes=30, upgrade_fraction=1.0, rng=3
        )
        for customer in customers:
            assert customer.changed
            # The old SKU throttles badly on the new workload.
            assert customer.stale_sku_throttling() > 0.2


class TestOnPremComparison:
    """Section 5.3: Doppler vs the baseline on on-prem estates."""

    def test_doppler_always_recommends_baseline_sometimes_fails(self, catalog):
        servers = simulate_onprem_estate(
            n_servers=6, duration_days=2, interval_minutes=30,
            idle_fraction=0.4, latency_sensitive_fraction=0.4, rng=5,
        )
        engine = DopplerEngine(catalog=catalog)
        baseline = BaselineStrategy(quantile=0.95)
        doppler_count = baseline_count = total = 0
        for server in servers:
            for database in server.databases:
                total += 1
                result = engine.recommend(database.trace, DeploymentType.SQL_DB)
                assert result.sku is not None
                doppler_count += 1
                if baseline.recommend(database.trace, DeploymentType.SQL_DB, catalog):
                    baseline_count += 1
        assert doppler_count == total
        assert baseline_count <= total


class TestSynthesisReplayLoop:
    """Section 5.4: synthesize from history, replay on ranked SKUs."""

    def test_recommended_sku_survives_replay(self, catalog, db_fleet):
        complex_customers = [c for c in db_fleet if c.archetype == "complex"]
        if not complex_customers:
            pytest.skip("no complex customer in this fleet draw")
        trace = complex_customers[0].record.trace
        engine = DopplerEngine(catalog=catalog)
        result = engine.recommend(trace, DeploymentType.SQL_DB)
        synth = WorkloadSynthesizer().synthesize(trace)
        demand = synth.demand_trace(rng=0)

        chosen = replay_on_sku(demand, result.sku, rng=1)
        cheapest = replay_on_sku(demand, result.curve.points[0].sku, rng=1)
        # The recommendation throttles no more than the cheapest SKU.
        assert chosen.throttled_fraction <= cheapest.throttled_fraction + 1e-9


class TestFullDmaFlow:
    def test_pipeline_on_simulated_customer(self, catalog, db_fleet):
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=catalog))
        customer = db_fleet[0]
        result = pipeline.assess(
            [customer.record.trace],
            DeploymentType.SQL_DB,
            entity_id="integration",
        )
        assert result.doppler.sku.deployment is DeploymentType.SQL_DB
        assert "integration" in result.dashboard


class TestMiBacktest:
    """Section 5.2 for Managed Instance targets."""

    def test_mi_fit_and_recommend(self, catalog):
        from repro.simulation import FleetConfig, simulate_fleet

        fleet = simulate_fleet(
            FleetConfig.paper_mi(40, duration_days=3, interval_minutes=30),
            catalog,
            rng=21,
        )
        engine = DopplerEngine(catalog=catalog)
        engine.fit([c.record for c in fleet])
        assert engine.group_model(DeploymentType.SQL_MI) is not None
        hits = total = 0
        for customer in fleet:
            if customer.is_over_provisioned or not customer.record.is_settled:
                continue
            result = engine.recommend(customer.record.trace, DeploymentType.SQL_MI)
            assert result.sku.deployment is DeploymentType.SQL_MI
            hits += result.sku.name == customer.chosen_sku_name
            total += 1
        assert hits / total > 0.7

    def test_mi_pipeline_with_file_layout(self, catalog):
        from repro.dma import AssessmentPipeline
        from repro.simulation import FleetConfig, simulate_fleet

        fleet = simulate_fleet(
            FleetConfig.paper_mi(3, duration_days=3, interval_minutes=30),
            catalog,
            rng=22,
        )
        pipeline = AssessmentPipeline(engine=DopplerEngine(catalog=catalog))
        result = pipeline.assess(
            [fleet[0].record.trace],
            DeploymentType.SQL_MI,
            entity_id="mi-pipeline",
            file_sizes_gib=[128.0, 128.0],
        )
        assert result.doppler.sku.deployment is DeploymentType.SQL_MI


class TestStaticInputDeployment:
    """Section 4: offline-trained profiles shipped to the local runtime."""

    def test_profiles_roundtrip_preserves_fleet_recommendations(
        self, catalog, db_fleet, fitted_engine, tmp_path
    ):
        path = tmp_path / "profiles.json"
        fitted_engine.save_profiles(path, DeploymentType.SQL_DB)
        deployed = DopplerEngine(catalog=catalog)
        deployed.load_profiles(path, DeploymentType.SQL_DB)
        for customer in db_fleet[:10]:
            original = fitted_engine.recommend(
                customer.record.trace, DeploymentType.SQL_DB
            )
            restored = deployed.recommend(customer.record.trace, DeploymentType.SQL_DB)
            assert original.sku.name == restored.sku.name
