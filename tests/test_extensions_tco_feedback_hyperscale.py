"""Unit tests for the TCO, feedback-loop and hyperscale extensions."""

import numpy as np
import pytest

from repro.catalog import DeploymentType
from repro.core import GroupObservation, GroupScoreModel, PricePerformanceModeler
from repro.extensions import (
    FeedbackEvent,
    FeedbackLoop,
    HYPERSCALE_MAX_STORAGE_GB,
    OnPremCostModel,
    catalog_with_hyperscale,
    compare_tco,
    hyperscale_skus,
)
from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries

from .conftest import full_trace


class TestOnPremCostModel:
    def test_provisioned_cores_headroom_and_floor(self):
        model = OnPremCostModel(headroom_factor=1.5)
        trace = full_trace(cpu_level=8.0)
        cores = model.provisioned_cores(trace)
        assert cores >= 8.0 * 1.5
        assert cores % 2 == 0
        tiny = full_trace(cpu_level=0.2)
        assert model.provisioned_cores(tiny) == 4.0

    def test_monthly_cost_components_positive(self):
        cost = OnPremCostModel().monthly_cost(full_trace(cpu_level=4.0))
        assert cost > 0

    def test_cost_grows_with_demand(self):
        model = OnPremCostModel()
        assert model.monthly_cost(full_trace(cpu_level=16.0)) > model.monthly_cost(
            full_trace(cpu_level=2.0)
        )

    def test_licensing_dominates_at_scale(self):
        """SQL licensing is the classic on-prem cost driver."""
        model = OnPremCostModel()
        trace = full_trace(cpu_level=16.0)
        cores = model.provisioned_cores(trace)
        license_monthly = cores * model.sql_license_per_core_year / 12.0
        assert license_monthly > 0.5 * model.monthly_cost(trace)


class TestTcoComparison:
    def test_small_workload_favors_migration(self, small_catalog):
        trace = full_trace(cpu_level=2.0)
        sku = small_catalog.cheapest()
        comparison = compare_tco(trace, sku)
        assert comparison.migration_favored
        assert comparison.annual_saving == pytest.approx(12 * comparison.monthly_saving)

    def test_describe_mentions_direction(self, small_catalog):
        comparison = compare_tco(full_trace(cpu_level=2.0), small_catalog.cheapest())
        assert "favors migration" in comparison.describe()

    def test_custom_cost_model_can_flip_the_answer(self, small_catalog):
        trace = full_trace(cpu_level=2.0)
        expensive_sku = small_catalog[-1]
        cheap_onprem = OnPremCostModel(
            server_cost_per_core=50.0,
            sql_license_per_core_year=100.0,
            ops_cost_per_server_month=50.0,
            power_cooling_per_core_month=1.0,
        )
        comparison = compare_tco(trace, expensive_sku, cost_model=cheap_onprem)
        assert not comparison.migration_favored


class TestFeedbackLoop:
    def base_model(self):
        return GroupScoreModel.fit(
            [
                GroupObservation((0, 0, 0), 0.10),
                GroupObservation((1, 1, 1), 0.001),
            ]
        )

    def test_satisfied_feedback_moves_target_toward_observation(self):
        loop = FeedbackLoop(model=self.base_model(), learning_rate=0.5)
        updated = loop.record(
            FeedbackEvent(group_key=(0, 0, 0), observed_throttling=0.20, satisfied=True)
        )
        assert 0.10 < updated < 0.20
        assert loop.target_probability((0, 0, 0)) == updated

    def test_dissatisfied_feedback_tightens_target(self):
        loop = FeedbackLoop(model=self.base_model(), learning_rate=0.5)
        before = loop.target_probability((0, 0, 0))
        updated = loop.record(
            FeedbackEvent(group_key=(0, 0, 0), observed_throttling=0.10, satisfied=False)
        )
        assert updated < before

    def test_dissatisfaction_never_raises_target(self):
        loop = FeedbackLoop(model=self.base_model(), learning_rate=1.0)
        before = loop.target_probability((1, 1, 1))
        updated = loop.record(
            FeedbackEvent(group_key=(1, 1, 1), observed_throttling=0.9, satisfied=False)
        )
        assert updated <= before

    def test_untouched_groups_keep_batch_targets(self):
        loop = FeedbackLoop(model=self.base_model())
        loop.record(FeedbackEvent((0, 0, 0), 0.2, True))
        assert loop.target_probability((1, 1, 1)) == pytest.approx(0.001)

    def test_refined_model_roundtrip(self):
        loop = FeedbackLoop(model=self.base_model(), learning_rate=0.5)
        loop.record(FeedbackEvent((0, 0, 0), 0.2, True))
        refined = loop.refined_model()
        assert refined.target_probability((0, 0, 0)) == pytest.approx(
            loop.target_probability((0, 0, 0))
        )
        assert refined.groups[(0, 0, 0)].count == 2  # 1 batch + 1 feedback

    def test_convergence_to_stable_signal(self):
        loop = FeedbackLoop(model=self.base_model(), learning_rate=0.3)
        for _ in range(40):
            loop.record(FeedbackEvent((0, 0, 0), 0.05, True))
        assert loop.target_probability((0, 0, 0)) == pytest.approx(0.05, abs=0.005)
        assert loop.events_seen((0, 0, 0)) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackLoop(model=self.base_model(), learning_rate=0.0)
        with pytest.raises(ValueError):
            FeedbackEvent((0,), 1.5, True)


class TestHyperscale:
    def test_ladder_and_caps(self):
        skus = hyperscale_skus()
        assert len(skus) == 13
        assert all(sku.limits.max_data_size_gb == HYPERSCALE_MAX_STORAGE_GB for sku in skus)
        assert all(sku.name.startswith("DB_HS_") for sku in skus)

    def test_storage_priced_in(self):
        small = hyperscale_skus(provisioned_storage_gb=1024.0)[0]
        big = hyperscale_skus(provisioned_storage_gb=51200.0)[0]
        assert big.price_per_hour > small.price_per_hour

    def test_invalid_storage_rejected(self):
        with pytest.raises(ValueError):
            hyperscale_skus(provisioned_storage_gb=0.0)
        with pytest.raises(ValueError):
            hyperscale_skus(provisioned_storage_gb=HYPERSCALE_MAX_STORAGE_GB * 2)

    def test_ppm_ranks_hyperscale_without_changes(self, small_catalog):
        """The extensibility claim: HS SKUs flow through the modeler."""
        extended = catalog_with_hyperscale(small_catalog, provisioned_storage_gb=8192.0)
        # A workload too big for any DB/MI storage tier.
        n = 288
        trace = PerformanceTrace(
            series={
                PerfDimension.CPU: TimeSeries(np.full(n, 4.0)),
                PerfDimension.MEMORY: TimeSeries(np.full(n, 16.0)),
                PerfDimension.STORAGE: TimeSeries(np.full(n, 8000.0)),
            },
            entity_id="huge",
        )
        ppm = PricePerformanceModeler(catalog=extended)
        curve = ppm.build_curve(trace, DeploymentType.SQL_DB)
        assert all(point.sku.name.startswith("DB_HS_") for point in curve)
        assert curve.cheapest_full_performance() is not None
