"""Unit tests for k-means and agglomerative clustering."""

import numpy as np
import pytest

from repro.ml import agglomerative, kmeans


def three_blobs(rng_seed=0, n_per=20, spread=0.1):
    rng = np.random.default_rng(rng_seed)
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [0.0, 5.0]])
    points = np.vstack(
        [center + rng.normal(0, spread, size=(n_per, 2)) for center in centers]
    )
    labels = np.repeat(np.arange(3), n_per)
    return points, labels


def clustering_matches(found, truth):
    """Label-permutation-invariant equality of two clusterings."""
    mapping = {}
    for f, t in zip(found, truth):
        if f in mapping and mapping[f] != t:
            return False
        mapping[f] = t
    return len(set(mapping.values())) == len(mapping)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = three_blobs()
        result = kmeans(points, k=3, rng=0)
        assert clustering_matches(result.labels, truth)

    def test_inertia_decreases_with_k(self):
        points, _ = three_blobs()
        inertias = [kmeans(points, k=k, rng=0).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n_gives_zero_inertia(self):
        points = np.array([[0.0], [1.0], [2.0]])
        result = kmeans(points, k=3, rng=0)
        assert result.inertia == pytest.approx(0.0)

    def test_k_one_center_is_mean(self):
        points, _ = three_blobs()
        result = kmeans(points, k=1, rng=0)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0), atol=1e-9)

    def test_predict_assigns_nearest(self):
        points, _ = three_blobs()
        result = kmeans(points, k=3, rng=0)
        predicted = result.predict(np.array([[0.0, 0.0], [5.0, 5.0]]))
        assert predicted[0] != predicted[1]

    def test_labels_in_range(self):
        points, _ = three_blobs()
        result = kmeans(points, k=3, rng=1)
        assert set(result.labels) <= {0, 1, 2}

    def test_deterministic_with_seed(self):
        points, _ = three_blobs()
        a = kmeans(points, k=3, rng=9)
        b = kmeans(points, k=3, rng=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        result = kmeans(points, k=2, rng=0)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_k(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, k=0)
        with pytest.raises(ValueError):
            kmeans(points, k=4)


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_recovers_blobs(self, linkage):
        points, truth = three_blobs()
        result = agglomerative(points, n_clusters=3, linkage=linkage)
        assert clustering_matches(result.labels, truth)

    def test_n_clusters_respected(self):
        points, _ = three_blobs()
        result = agglomerative(points, n_clusters=2)
        assert len(set(result.labels.tolist())) == 2

    def test_one_cluster(self):
        points, _ = three_blobs()
        result = agglomerative(points, n_clusters=1)
        assert set(result.labels.tolist()) == {0}

    def test_merge_heights_non_decreasing_for_single_linkage(self):
        # Single linkage merge heights are monotone (no inversions).
        points, _ = three_blobs()
        result = agglomerative(points, n_clusters=1, linkage="single")
        heights = list(result.merge_heights)
        assert heights == sorted(heights)

    def test_n_clusters_equals_n_points(self):
        points = np.array([[0.0], [1.0], [5.0]])
        result = agglomerative(points, n_clusters=3)
        assert len(set(result.labels.tolist())) == 3

    def test_invalid_arguments(self):
        points = np.zeros((3, 1))
        with pytest.raises(ValueError):
            agglomerative(points, n_clusters=0)
        with pytest.raises(ValueError):
            agglomerative(points, n_clusters=3, linkage="ward")
