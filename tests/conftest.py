"""Shared fixtures for the Doppler reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import (
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuCatalog,
    SkuSpec,
)
from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries
from repro.workloads import (
    DiurnalPattern,
    PlateauPattern,
    SpikyPattern,
    WorkloadSpec,
    generate_trace,
)


def make_sku(
    vcores: float,
    tier: ServiceTier = ServiceTier.GENERAL_PURPOSE,
    deployment: DeploymentType = DeploymentType.SQL_DB,
    memory_per_vcore: float = 5.2,
    iops_per_vcore: float = 320.0,
    log_per_vcore: float = 3.75,
    storage_gb: float = 1024.0,
    latency_ms: float | None = None,
    price_per_vcore_hour: float = 0.2525,
    name: str = "",
) -> SkuSpec:
    """Small hand-built SKU for focused unit tests."""
    if latency_ms is None:
        latency_ms = 5.0 if tier is ServiceTier.GENERAL_PURPOSE else 1.0
    return SkuSpec(
        deployment=deployment,
        tier=tier,
        hardware=HardwareGeneration.GEN5,
        limits=ResourceLimits(
            vcores=vcores,
            max_memory_gb=vcores * memory_per_vcore,
            max_data_iops=vcores * iops_per_vcore,
            max_log_rate_mbps=vcores * log_per_vcore,
            max_data_size_gb=storage_gb,
            min_io_latency_ms=latency_ms,
        ),
        price_per_hour=vcores * price_per_vcore_hour,
        name=name,
    )


@pytest.fixture(scope="session")
def default_catalog() -> SkuCatalog:
    """The full generated catalog (expensive; shared per session)."""
    return SkuCatalog.default()


@pytest.fixture()
def small_catalog() -> SkuCatalog:
    """A compact GP/BC ladder for fast engine tests."""
    skus = []
    for vcores in (2, 4, 8, 16, 32):
        skus.append(make_sku(vcores, ServiceTier.GENERAL_PURPOSE))
        skus.append(
            make_sku(
                vcores,
                ServiceTier.BUSINESS_CRITICAL,
                iops_per_vcore=4000.0,
                log_per_vcore=12.0,
                price_per_vcore_hour=0.68,
            )
        )
    return SkuCatalog.from_skus(skus)


def make_trace(
    cpu: np.ndarray,
    interval_minutes: float = 10.0,
    entity_id: str = "test",
    **extra_dims: np.ndarray,
) -> PerformanceTrace:
    """Trace with a CPU series plus optional keyword dimensions.

    Extra dimensions are passed by PerfDimension value name, e.g.
    ``memory_gb=...``, ``data_iops=...``.
    """
    series = {
        PerfDimension.CPU: TimeSeries(values=cpu, interval_minutes=interval_minutes)
    }
    by_value = {dim.value: dim for dim in PerfDimension}
    for key, values in extra_dims.items():
        dim = by_value[key]
        series[dim] = TimeSeries(values=values, interval_minutes=interval_minutes)
    return PerformanceTrace(series=series, entity_id=entity_id)


def full_trace(
    n: int = 288,
    cpu_level: float = 1.0,
    interval_minutes: float = 10.0,
    entity_id: str = "full",
    rng: int = 0,
) -> PerformanceTrace:
    """A six-dimension steady trace sized for the small catalog."""
    generator = np.random.default_rng(rng)

    def noise(scale: float) -> np.ndarray:
        return np.abs(generator.normal(1.0, 0.03, size=n)) * scale

    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(noise(cpu_level), interval_minutes),
            PerfDimension.MEMORY: TimeSeries(noise(cpu_level * 4.0), interval_minutes),
            PerfDimension.IOPS: TimeSeries(noise(cpu_level * 150.0), interval_minutes),
            PerfDimension.IO_LATENCY: TimeSeries(noise(6.0), interval_minutes),
            PerfDimension.LOG_RATE: TimeSeries(noise(cpu_level * 1.0), interval_minutes),
            PerfDimension.STORAGE: TimeSeries(noise(100.0), interval_minutes),
        },
        entity_id=entity_id,
    )


@pytest.fixture()
def steady_trace() -> PerformanceTrace:
    return full_trace(entity_id="steady")


@pytest.fixture()
def spiky_db_trace() -> PerformanceTrace:
    """A 7-day DB-dimension trace with spiky CPU/IOPS demand."""
    spec = WorkloadSpec(
        patterns={
            PerfDimension.CPU: SpikyPattern(base=1.0, peak=6.0, spike_probability=0.008),
            PerfDimension.MEMORY: PlateauPattern(level=12.0),
            PerfDimension.IOPS: SpikyPattern(base=200.0, peak=1500.0, spike_probability=0.008),
            PerfDimension.LOG_RATE: DiurnalPattern(trough=1.0, peak=4.0),
        },
        storage_gb=200.0,
        base_latency_ms=6.0,
        entity_id="spiky-db",
    )
    return generate_trace(spec, duration_days=7, rng=7)
