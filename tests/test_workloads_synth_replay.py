"""Unit tests for the workload synthesizer and the replay simulator."""

import numpy as np
import pytest

from repro.catalog import ServiceTier
from repro.telemetry import PerfDimension
from repro.workloads import (
    WorkloadSynthesizer,
    replay_on_sku,
)

from .conftest import full_trace, make_sku


class TestSynthesizer:
    def test_synthesis_matches_throughput_targets(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        peak = synth.peak_demand()
        target = synth.target_demands
        for dim in (PerfDimension.CPU, PerfDimension.IOPS):
            assert peak[dim] == pytest.approx(target[dim], rel=0.6)

    def test_pieces_are_standard_benchmarks(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        assert synth.pieces
        names = {piece.signature.name for piece in synth.pieces}
        assert names <= {"TPC-C", "TPC-H", "TPC-DS", "YCSB"}

    def test_shape_profile_normalized(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        assert synth.shape.min() >= 0.0
        assert synth.shape.max() <= 1.0
        assert synth.shape.size == spiky_db_trace.n_samples

    def test_demand_trace_dimensions(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        assert set(demand.dimensions) == set(PerfDimension)
        assert demand.n_samples == spiky_db_trace.n_samples

    def test_idle_target_still_yields_a_mix(self):
        trace = full_trace(cpu_level=0.01)
        synth = WorkloadSynthesizer().synthesize(trace)
        assert synth.pieces  # minimal YCSB fallback

    def test_describe_mentions_components(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        assert "SynthesizedWorkload" in synth.describe()

    def test_storage_scaled_to_footprint(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        storage = synth.peak_demand()[PerfDimension.STORAGE]
        target = synth.target_demands[PerfDimension.STORAGE]
        assert storage == pytest.approx(target, rel=0.5)


class TestReplay:
    def test_big_sku_serves_demand_unclipped(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        big = make_sku(64, ServiceTier.BUSINESS_CRITICAL, iops_per_vcore=4000.0,
                       log_per_vcore=12.0, storage_gb=4096.0)
        result = replay_on_sku(demand, big, rng=1)
        assert result.throttled_fraction < 0.01
        np.testing.assert_allclose(
            result.observed[PerfDimension.CPU].values,
            demand[PerfDimension.CPU].values,
            rtol=1e-9,
        )

    def test_small_sku_clips_cpu_at_capacity(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        small = make_sku(2, storage_gb=4096.0)
        result = replay_on_sku(demand, small, rng=1)
        observed = result.observed[PerfDimension.CPU].values
        assert observed.max() <= 2.0 + 1e-9
        assert result.throttled_fraction > 0.1

    def test_latency_blows_up_on_undersized_sku(self, spiky_db_trace):
        """The Figure-13 separation: small SKU -> inflated IO latency."""
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        small = make_sku(2, storage_gb=4096.0)
        big = make_sku(64, ServiceTier.BUSINESS_CRITICAL, iops_per_vcore=4000.0,
                       log_per_vcore=12.0, storage_gb=4096.0)
        lat_small = replay_on_sku(demand, small, rng=1).p99_latency_ms
        lat_big = replay_on_sku(demand, big, rng=1).p99_latency_ms
        assert lat_small > 3 * lat_big

    def test_backlog_defers_work(self):
        """Clipped demand extends the busy period instead of vanishing."""
        from repro.workloads.replay import _clip_with_backlog

        demand = np.array([5.0, 0.0, 0.0])
        observed, backlog = _clip_with_backlog(demand, capacity=2.0)
        np.testing.assert_allclose(observed, [2.0, 2.0, 1.0])
        np.testing.assert_allclose(backlog, [3.0, 1.0, 0.0])
        assert observed.sum() == pytest.approx(demand.sum())

    def test_memory_overflow_spills_into_io(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        tight_memory = make_sku(8, memory_per_vcore=0.1, iops_per_vcore=2000.0,
                                storage_gb=4096.0)
        roomy_memory = make_sku(8, memory_per_vcore=10.0, iops_per_vcore=2000.0,
                                storage_gb=4096.0)
        spilled = replay_on_sku(demand, tight_memory, rng=1)
        clean = replay_on_sku(demand, roomy_memory, rng=1)
        assert spilled.mean_latency_ms >= clean.mean_latency_ms

    def test_meets_latency_property(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        big = make_sku(64, ServiceTier.BUSINESS_CRITICAL, iops_per_vcore=4000.0,
                       log_per_vcore=12.0, storage_gb=4096.0)
        assert replay_on_sku(demand, big, rng=1).meets_latency

    def test_observed_trace_has_latency(self, spiky_db_trace):
        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        result = replay_on_sku(synth.demand_trace(rng=0), make_sku(8, storage_gb=4096.0), rng=1)
        assert PerfDimension.IO_LATENCY in result.observed


class TestFidelity:
    def test_synthesized_trace_mimics_source(self, spiky_db_trace):
        """The Section-5.4 claim, quantified."""
        from repro.workloads import WorkloadSynthesizer, fidelity_report

        synth = WorkloadSynthesizer().synthesize(spiky_db_trace)
        demand = synth.demand_trace(rng=0)
        report = fidelity_report(spiky_db_trace, demand)
        assert report.per_dimension
        assert report.mean_error < 0.6
        assert report.worst_error < 1.5

    def test_identical_traces_are_perfectly_faithful(self, spiky_db_trace):
        from repro.workloads import fidelity_report

        report = fidelity_report(spiky_db_trace, spiky_db_trace)
        assert report.worst_error == pytest.approx(0.0)
        assert report.is_faithful()

    def test_no_shared_dimensions_rejected(self, spiky_db_trace):
        import numpy as np

        from repro.telemetry import PerfDimension, PerformanceTrace, TimeSeries
        from repro.workloads import fidelity_report

        latency_only = PerformanceTrace(
            series={PerfDimension.IO_LATENCY: TimeSeries(np.full(10, 5.0))}
        )
        with pytest.raises(ValueError, match="no shared"):
            fidelity_report(spiky_db_trace, latency_only)
