"""Extensions beyond the deployed Doppler (paper Sections 5.5 and 7).

The paper names four directions work was "currently underway" on:
serverless and hyperscale targets, a broader total-cost-of-ownership
comparison, and a satisfaction feedback loop for the profiling module.
Each is implemented here on top of the unchanged core engine,
demonstrating the framework's claimed extensibility.
"""

from .adf import (
    ADF_RUNTIME_LADDER,
    AdfRecommendation,
    AdfRuntimeOption,
    adf_runtime_catalog,
    pipeline_trace,
    recommend_adf_runtime,
)
from .advisor import ComputeTierAdvice, ServerlessAdvisor
from .feedback import FeedbackEvent, FeedbackLoop
from .hyperscale import (
    HYPERSCALE_MAX_STORAGE_GB,
    catalog_with_hyperscale,
    hyperscale_skus,
)
from .serverless import (
    ServerlessEvaluation,
    ServerlessOffer,
    default_serverless_offers,
    evaluate_serverless,
)
from .tco import OnPremCostModel, TcoComparison, compare_tco

__all__ = [
    "ADF_RUNTIME_LADDER",
    "AdfRecommendation",
    "AdfRuntimeOption",
    "adf_runtime_catalog",
    "pipeline_trace",
    "recommend_adf_runtime",
    "ComputeTierAdvice",
    "ServerlessAdvisor",
    "FeedbackEvent",
    "FeedbackLoop",
    "HYPERSCALE_MAX_STORAGE_GB",
    "catalog_with_hyperscale",
    "hyperscale_skus",
    "ServerlessEvaluation",
    "ServerlessOffer",
    "default_serverless_offers",
    "evaluate_serverless",
    "OnPremCostModel",
    "TcoComparison",
    "compare_tco",
]
