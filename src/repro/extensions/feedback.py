"""Customer-satisfaction feedback loop (paper Sections 4 and 5.5).

"This feedback loop will be integrated in the Doppler framework, to
improve our customer profiling module" -- once DMA reports whether a
recommended SKU was adopted and whether the customer stayed satisfied,
the per-group throttling targets can be retrained online instead of in
offline batches.

:class:`FeedbackLoop` wraps a fitted
:class:`~repro.core.matching.GroupScoreModel` and updates each group's
target with an exponential moving average:

* a *satisfied* customer confirms their observed throttling level is
  acceptable for the group -> move the target toward it;
* an *unsatisfied* customer (too much throttling) pushes the target
  down toward zero, making the group's future recommendations more
  conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.matching import GroupScoreModel, GroupStatistics
from ..core.profiler import GroupKey

__all__ = ["FeedbackEvent", "FeedbackLoop"]


@dataclass(frozen=True)
class FeedbackEvent:
    """One post-migration satisfaction signal.

    Attributes:
        group_key: The customer's negotiability group.
        observed_throttling: Throttling they actually experienced on
            the recommended SKU.
        satisfied: Whether they kept the SKU / reported satisfaction.
    """

    group_key: GroupKey
    observed_throttling: float
    satisfied: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.observed_throttling <= 1.0:
            raise ValueError(
                f"observed throttling must be in [0, 1], got {self.observed_throttling!r}"
            )


@dataclass
class FeedbackLoop:
    """Online refinement of group throttling targets.

    Attributes:
        model: The batch-fitted group-score model to start from.
        learning_rate: EMA step size per feedback event.
        dissatisfaction_shrink: Fraction of the current target kept
            when an unsatisfied event arrives (target tightens).
    """

    model: GroupScoreModel
    learning_rate: float = 0.1
    dissatisfaction_shrink: float = 0.5
    _targets: dict[GroupKey, float] = field(default_factory=dict, repr=False)
    _counts: dict[GroupKey, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {self.learning_rate!r}")
        if not 0.0 <= self.dissatisfaction_shrink < 1.0:
            raise ValueError(
                f"dissatisfaction_shrink must be in [0, 1), got "
                f"{self.dissatisfaction_shrink!r}"
            )

    def target_probability(self, group_key: GroupKey) -> float:
        """Current (possibly refined) target ``P_g`` for a group."""
        if group_key in self._targets:
            return self._targets[group_key]
        return self.model.target_probability(group_key)

    def events_seen(self, group_key: GroupKey) -> int:
        return self._counts.get(group_key, 0)

    def record(self, event: FeedbackEvent) -> float:
        """Fold one feedback event into the group target.

        Returns:
            The group's updated target probability.
        """
        current = self.target_probability(event.group_key)
        if event.satisfied:
            updated = (
                (1.0 - self.learning_rate) * current
                + self.learning_rate * event.observed_throttling
            )
        else:
            # The customer found their throttling unacceptable: the
            # acceptable level must be below what they observed.  Pull
            # the target toward a shrunken fraction of the observation.
            ceiling = event.observed_throttling * self.dissatisfaction_shrink
            updated = min(current, (1.0 - self.learning_rate) * current
                          + self.learning_rate * ceiling)
        self._targets[event.group_key] = updated
        self._counts[event.group_key] = self._counts.get(event.group_key, 0) + 1
        return updated

    def refined_model(self) -> GroupScoreModel:
        """Materialize the refined targets as a new GroupScoreModel.

        Groups without feedback keep their batch statistics; groups
        with feedback get their EMA target with the batch std and an
        updated count.
        """
        groups = dict(self.model.groups)
        for key, target in self._targets.items():
            base = self.model.statistics_for(key)
            groups[key] = GroupStatistics(
                p_mean=target,
                p_std=base.p_std,
                count=base.count + self._counts[key],
            )
        return GroupScoreModel(groups=groups, fallback=self.model.fallback)
