"""Azure SQL serverless tier support (paper Section 7 future work).

The paper's conclusion: "work is currently underway to extend this
approach to assess other offerings like Azure SQL serverless [and]
hyperscale".  Serverless changes the economics Doppler reasons about:
compute is billed per vCore-*second actually used* between a
configurable (min, max) vCore range, and the database auto-pauses
after an idle period, dropping compute cost to zero.  The monthly
price of a serverless target is therefore a *function of the
workload*, not a catalog constant -- the price-performance curve's x
coordinate must be computed from the trace.

This module models the serverless offer and evaluates
(effective monthly cost, throttling probability) pairs so serverless
candidates can be ranked on the same curve as provisioned SKUs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog.models import HOURS_PER_MONTH
from ..telemetry.counters import PerfDimension, invert_latency
from ..telemetry.trace import PerformanceTrace

__all__ = [
    "ServerlessOffer",
    "ServerlessEvaluation",
    "default_serverless_offers",
    "evaluate_serverless",
]

#: Memory provisioned per billed vCore (matches the Gen5 ratio).
_MEMORY_PER_VCORE_GB = 3.0

#: Serverless GP IO follows the provisioned GP slope.
_IOPS_PER_VCORE = 320.0
_LOG_RATE_PER_VCORE = 3.75
_IO_LATENCY_MS = 5.0


@dataclass(frozen=True)
class ServerlessOffer:
    """One serverless configuration (a max-vCores ladder rung).

    Attributes:
        max_vcores: Compute ceiling; the throttling capacity.
        min_vcores: Billing floor while the database is running.
        price_per_vcore_hour: Compute price per billed vCore-hour.
            Serverless unit compute is priced above provisioned
            (Azure: roughly 1.5x) because you only pay while active.
        auto_pause_delay_minutes: Idle time after which compute pauses
            and billing stops (storage keeps billing).
        pause_threshold_vcores: Demand level under which a sample
            counts as idle for auto-pause purposes.
        storage_gb_hour: Storage price per GB-hour.
        name: Stable identifier.
    """

    max_vcores: float
    min_vcores: float
    price_per_vcore_hour: float = 0.38
    auto_pause_delay_minutes: float = 60.0
    pause_threshold_vcores: float = 0.05
    storage_gb_hour: float = 0.000160
    name: str = ""

    def __post_init__(self) -> None:
        if self.max_vcores <= 0 or self.min_vcores <= 0:
            raise ValueError("vCore bounds must be positive")
        if self.min_vcores > self.max_vcores:
            raise ValueError(
                f"min_vcores {self.min_vcores} exceeds max_vcores {self.max_vcores}"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"DB_SERVERLESS_{self.max_vcores:g}v"
            )

    @property
    def max_memory_gb(self) -> float:
        return self.max_vcores * _MEMORY_PER_VCORE_GB

    @property
    def max_data_iops(self) -> float:
        return self.max_vcores * _IOPS_PER_VCORE

    @property
    def max_log_rate_mbps(self) -> float:
        return self.max_vcores * _LOG_RATE_PER_VCORE

    @property
    def min_io_latency_ms(self) -> float:
        return _IO_LATENCY_MS


@dataclass(frozen=True)
class ServerlessEvaluation:
    """Workload-dependent assessment of one serverless offer.

    Attributes:
        offer: The evaluated configuration.
        monthly_cost: Effective monthly bill (compute + storage) for
            this workload.
        throttling_probability: Joint throttling probability against
            the offer's max capacities.
        paused_fraction: Fraction of the assessment window spent
            auto-paused.
        mean_billed_vcores: Average billed vCores while running.
    """

    offer: ServerlessOffer
    monthly_cost: float
    throttling_probability: float
    paused_fraction: float
    mean_billed_vcores: float


def default_serverless_offers() -> list[ServerlessOffer]:
    """The serverless max-vCores ladder (min = max/8, Azure's default)."""
    return [
        ServerlessOffer(max_vcores=float(v), min_vcores=max(0.5, v / 8.0))
        for v in (1, 2, 4, 6, 8, 10, 16, 24, 32, 40)
    ]


def _paused_mask(
    cpu: np.ndarray, interval_minutes: float, offer: ServerlessOffer
) -> np.ndarray:
    """True where the database is auto-paused.

    A sample is paused once demand has stayed below the idle threshold
    for at least ``auto_pause_delay_minutes`` (and resumes immediately
    on demand).
    """
    delay_samples = max(1, int(round(offer.auto_pause_delay_minutes / interval_minutes)))
    idle = cpu <= offer.pause_threshold_vcores
    paused = np.zeros_like(idle)
    run = 0
    for i, is_idle in enumerate(idle):
        run = run + 1 if is_idle else 0
        paused[i] = run > delay_samples
    return paused


def evaluate_serverless(
    trace: PerformanceTrace,
    offer: ServerlessOffer,
) -> ServerlessEvaluation:
    """Evaluate one serverless offer against a workload.

    Billing model: per sample, billed vCores = clamp(max(cpu demand,
    memory demand / 3 GB), min_vcores, max_vcores) while running, zero
    while auto-paused.  Storage bills continuously.  Throttling uses
    the offer's max capacities on CPU, memory, IOPS, log rate and
    latency -- the same union predicate as provisioned SKUs.

    Args:
        trace: Customer performance history (needs at least CPU).
        offer: The serverless configuration.
    """
    cpu = trace[PerfDimension.CPU].values
    interval = trace.interval_minutes
    paused = _paused_mask(cpu, interval, offer)

    memory_driven = np.zeros_like(cpu)
    if PerfDimension.MEMORY in trace:
        memory_driven = trace[PerfDimension.MEMORY].values / _MEMORY_PER_VCORE_GB
    demand_vcores = np.maximum(cpu, memory_driven)
    billed = np.clip(demand_vcores, offer.min_vcores, offer.max_vcores)
    billed = np.where(paused, 0.0, billed)

    hours_per_sample = interval / 60.0
    window_hours = trace.n_samples * hours_per_sample
    compute_cost = billed.sum() * hours_per_sample * offer.price_per_vcore_hour
    # Scale the window's compute bill to a standard month.
    compute_monthly = compute_cost * (HOURS_PER_MONTH / window_hours)
    storage_gb = (
        trace[PerfDimension.STORAGE].max() if PerfDimension.STORAGE in trace else 0.0
    )
    storage_monthly = storage_gb * offer.storage_gb_hour * HOURS_PER_MONTH

    violated = cpu > offer.max_vcores
    if PerfDimension.MEMORY in trace:
        violated |= trace[PerfDimension.MEMORY].values > offer.max_memory_gb
    if PerfDimension.IOPS in trace:
        violated |= trace[PerfDimension.IOPS].values > offer.max_data_iops
    if PerfDimension.LOG_RATE in trace:
        violated |= trace[PerfDimension.LOG_RATE].values > offer.max_log_rate_mbps
    if PerfDimension.IO_LATENCY in trace:
        latency = trace[PerfDimension.IO_LATENCY].values
        violated |= invert_latency(latency) > invert_latency(offer.min_io_latency_ms)
    # A resume from pause adds a cold-start stall, observed as
    # throttling on the first busy sample after a paused one.
    resume = ~paused & np.roll(paused, 1)
    resume[0] = False
    violated |= resume

    running = ~paused
    mean_billed = float(billed[running].mean()) if running.any() else 0.0
    return ServerlessEvaluation(
        offer=offer,
        monthly_cost=float(compute_monthly + storage_monthly),
        throttling_probability=float(violated.mean()),
        paused_fraction=float(paused.mean()),
        mean_billed_vcores=mean_billed,
    )
