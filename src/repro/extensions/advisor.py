"""Serverless-vs-provisioned advisory (paper Section 7).

Ranks serverless offers and provisioned SKUs on one combined
price-performance view and reports the crossover: spiky or mostly-idle
workloads pay less on serverless (you only pay while running), steady
workloads pay less provisioned (the serverless per-vCore premium
dominates once utilization is sustained).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import SkuCatalog
from ..catalog.models import DeploymentType, SkuSpec
from ..core.ppm import PricePerformanceModeler
from ..telemetry.trace import PerformanceTrace
from .serverless import (
    ServerlessEvaluation,
    ServerlessOffer,
    default_serverless_offers,
    evaluate_serverless,
)

__all__ = ["ComputeTierAdvice", "ServerlessAdvisor"]

#: Throttling tolerance when picking "adequate" candidates on either side.
_ADEQUATE_THROTTLING = 0.01


@dataclass(frozen=True)
class ComputeTierAdvice:
    """Outcome of a serverless-vs-provisioned comparison.

    Attributes:
        provisioned_sku: Cheapest adequate provisioned SKU (or None).
        provisioned_monthly: Its monthly price.
        serverless: Cheapest adequate serverless evaluation (or None).
        recommended_tier: ``"serverless"`` or ``"provisioned"``.
        monthly_saving: Cost advantage of the recommended tier.
        busy_fraction: Share of the window with non-idle demand (the
            crossover driver).
    """

    provisioned_sku: SkuSpec | None
    provisioned_monthly: float
    serverless: ServerlessEvaluation | None
    recommended_tier: str
    monthly_saving: float
    busy_fraction: float


@dataclass(frozen=True)
class ServerlessAdvisor:
    """Compares the two compute models for one workload.

    Attributes:
        catalog: Provisioned SKU catalog.
        offers: Serverless ladder; defaults to the standard one.
    """

    catalog: SkuCatalog
    offers: tuple[ServerlessOffer, ...] = tuple(default_serverless_offers())

    def advise(self, trace: PerformanceTrace) -> ComputeTierAdvice:
        """Pick the cheaper adequate compute model for ``trace``.

        "Adequate" means throttling probability at or under 1 %; when
        no candidate on a side is adequate, the best-scoring one is
        used so a comparison is always produced.
        """
        ppm = PricePerformanceModeler(catalog=self.catalog)
        curve = ppm.build_curve(trace, DeploymentType.SQL_DB)
        provisioned_point = curve.cheapest_at_least(1.0 - _ADEQUATE_THROTTLING)
        if provisioned_point is None:
            provisioned_point = curve.points[-1]

        evaluations = [evaluate_serverless(trace, offer) for offer in self.offers]
        adequate = [
            ev for ev in evaluations if ev.throttling_probability <= _ADEQUATE_THROTTLING
        ]
        if adequate:
            best_serverless = min(adequate, key=lambda ev: ev.monthly_cost)
        elif evaluations:
            best_serverless = min(
                evaluations, key=lambda ev: ev.throttling_probability
            )
        else:
            best_serverless = None

        provisioned_monthly = provisioned_point.monthly_price
        serverless_monthly = (
            best_serverless.monthly_cost if best_serverless else float("inf")
        )
        if serverless_monthly < provisioned_monthly:
            tier = "serverless"
            saving = provisioned_monthly - serverless_monthly
        else:
            tier = "provisioned"
            saving = serverless_monthly - provisioned_monthly

        from ..telemetry.counters import PerfDimension

        cpu = trace[PerfDimension.CPU].values
        busy = float((cpu > 0.05).mean())
        return ComputeTierAdvice(
            provisioned_sku=provisioned_point.sku,
            provisioned_monthly=provisioned_monthly,
            serverless=best_serverless,
            recommended_tier=tier,
            monthly_saving=float(saving),
            busy_fraction=busy,
        )
