"""Azure Data Factory adaptation (paper Section 7).

"One concrete example is our engagement with Azure Data Factory (ADF),
in which Doppler has been adapted to recommend appropriate compute
infrastructure optimized by cost and performance."

ADF copy activities run on integration runtimes sized in *Data
Integration Units* (DIUs); mapping data flows run on Spark-style
clusters with a core/memory shape.  The adaptation maps the runtime
ladder onto Doppler's generic capacity vector so the unchanged
Price-Performance Modeler ranks runtimes from pipeline telemetry:

=================  =========================================
Doppler dimension  ADF meaning
=================  =========================================
CPU                compute cores driving transformations
MEMORY             executor memory for data-flow stages
IOPS               data-movement bandwidth, in MB/s x 10
                   (the movement-throughput column)
=================  =========================================

Pipeline telemetry is the same shape as SQL telemetry -- periodic
samples of resource demand -- so the whole engine (curves, heuristics,
confidence) applies verbatim.  This module provides the runtime
ladder, the dimension mapping and a one-call recommender.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog.catalog import SkuCatalog
from ..catalog.models import (
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)
from ..core.curve import PricePerformanceCurve
from ..core.heuristics import performance_threshold
from ..core.ppm import PricePerformanceModeler
from ..telemetry.counters import PerfDimension
from ..telemetry.timeseries import TimeSeries
from ..telemetry.trace import PerformanceTrace

__all__ = [
    "AdfRuntimeOption",
    "ADF_RUNTIME_LADDER",
    "adf_runtime_catalog",
    "pipeline_trace",
    "AdfRecommendation",
    "recommend_adf_runtime",
]

#: MB/s of data movement encoded per unit of the IOPS column.
_MBPS_TO_IOPS_SCALE = 10.0

#: Placeholder capacities for dimensions ADF does not meter.
_UNMETERED_LOG_RATE = 1e6
_UNMETERED_STORAGE = 1e9
_UNMETERED_LATENCY = 1.0


@dataclass(frozen=True)
class AdfRuntimeOption:
    """One integration-runtime shape.

    Attributes:
        name: Runtime label, e.g. ``IR_16DIU``.
        dius: Data Integration Units.
        cores: Compute cores the DIU count provides.
        memory_gb: Executor memory.
        movement_mbps: Data-movement bandwidth in MB/s.
        price_per_hour: Hourly price while the pipeline runs.
    """

    name: str
    dius: int
    cores: float
    memory_gb: float
    movement_mbps: float
    price_per_hour: float

    def to_sku(self) -> SkuSpec:
        """Project the runtime onto Doppler's generic capacity vector."""
        return SkuSpec(
            deployment=DeploymentType.SQL_DB,  # carrier only; unused semantics
            tier=ServiceTier.GENERAL_PURPOSE,
            hardware=HardwareGeneration.GEN5,
            limits=ResourceLimits(
                vcores=self.cores,
                max_memory_gb=self.memory_gb,
                max_data_iops=self.movement_mbps * _MBPS_TO_IOPS_SCALE,
                max_log_rate_mbps=_UNMETERED_LOG_RATE,
                max_data_size_gb=_UNMETERED_STORAGE,
                min_io_latency_ms=_UNMETERED_LATENCY,
            ),
            price_per_hour=self.price_per_hour,
            name=self.name,
        )


#: The DIU ladder: 2 DIUs ~ 1 core/4 GB/40 MB/s; price $0.25/DIU-hour.
ADF_RUNTIME_LADDER: tuple[AdfRuntimeOption, ...] = tuple(
    AdfRuntimeOption(
        name=f"IR_{dius}DIU",
        dius=dius,
        cores=dius / 2.0,
        memory_gb=dius * 2.0,
        movement_mbps=dius * 20.0,
        price_per_hour=dius * 0.25,
    )
    for dius in (2, 4, 8, 16, 32, 64, 128, 256)
)


def adf_runtime_catalog() -> SkuCatalog:
    """The runtime ladder as a Doppler SKU catalog."""
    return SkuCatalog.from_skus(option.to_sku() for option in ADF_RUNTIME_LADDER)


def pipeline_trace(
    cores_demand: np.ndarray,
    memory_demand_gb: np.ndarray,
    movement_demand_mbps: np.ndarray,
    interval_minutes: float = 10.0,
    entity_id: str = "adf-pipeline",
) -> PerformanceTrace:
    """Assemble pipeline telemetry into a Doppler trace.

    Args:
        cores_demand: Cores used per sample.
        memory_demand_gb: Executor memory per sample.
        movement_demand_mbps: Data-movement bandwidth per sample.
        interval_minutes: Sampling cadence.
        entity_id: Pipeline identifier.
    """
    return PerformanceTrace(
        series={
            PerfDimension.CPU: TimeSeries(
                np.asarray(cores_demand, dtype=float), interval_minutes
            ),
            PerfDimension.MEMORY: TimeSeries(
                np.asarray(memory_demand_gb, dtype=float), interval_minutes
            ),
            PerfDimension.IOPS: TimeSeries(
                np.asarray(movement_demand_mbps, dtype=float) * _MBPS_TO_IOPS_SCALE,
                interval_minutes,
            ),
        },
        entity_id=entity_id,
    )


@dataclass(frozen=True)
class AdfRecommendation:
    """Runtime recommendation for one pipeline.

    Attributes:
        runtime: The recommended integration runtime.
        curve: The pipeline's price-performance curve over the ladder.
        expected_throttling: Throttling probability on the pick.
    """

    runtime: AdfRuntimeOption
    curve: PricePerformanceCurve
    expected_throttling: float

    @property
    def monthly_price(self) -> float:
        return self.runtime.price_per_hour * 730.0


def recommend_adf_runtime(
    trace: PerformanceTrace,
    gamma: float = 0.98,
) -> AdfRecommendation:
    """Recommend an integration runtime for pipeline telemetry.

    Builds the price-performance curve over the DIU ladder with the
    production estimator and picks the cheapest runtime whose score
    reaches ``gamma`` -- batch pipelines tolerate brief queuing, so a
    small throttling allowance is the cost-efficient default.

    Args:
        trace: Pipeline telemetry from :func:`pipeline_trace`.
        gamma: Required performance score.
    """
    ppm = PricePerformanceModeler(catalog=adf_runtime_catalog())
    curve = ppm.build_curve(trace, DeploymentType.SQL_DB)
    choice = performance_threshold(curve, gamma=gamma)
    by_name = {option.name: option for option in ADF_RUNTIME_LADDER}
    runtime = by_name[choice.point.sku.name]
    return AdfRecommendation(
        runtime=runtime,
        curve=curve,
        # Raw probability, not 1 - score: the monotonicity adjustment
        # can lift `score`, and lifted points would understate risk.
        expected_throttling=choice.point.throttling_probability,
    )
