"""Total cost of ownership comparison (paper Section 5.5).

"Efforts are underway to integrate Doppler into a broader total cost
of ownership (TCO) project, in which customers moving to Azure would
be able to systematically compare the differences between keeping
their workloads on-prem [or] moving", with Doppler supplying the
optimal SKU and its cost.

This module implements the on-prem side of that comparison: an
amortized monthly cost model for a self-hosted SQL server (hardware,
licensing, operations, power/colocation) and a report pairing it with
Doppler's PaaS recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.models import SkuSpec
from ..telemetry.counters import PerfDimension
from ..telemetry.trace import PerformanceTrace

__all__ = ["OnPremCostModel", "TcoComparison", "compare_tco"]


@dataclass(frozen=True)
class OnPremCostModel:
    """Amortized monthly cost of running SQL on-premises.

    Defaults are deliberately round, industry-survey-scale numbers;
    every knob is explicit so a customer can plug in their own.

    Attributes:
        server_cost_per_core: Hardware acquisition cost per physical
            core (chassis, CPU, RAM share).
        storage_cost_per_gb: Acquisition cost per GB of enterprise SSD.
        amortization_years: Hardware depreciation horizon.
        sql_license_per_core_year: SQL Server licensing per core-year.
        ops_cost_per_server_month: DBA/ops labour attributed to one
            server per month.
        power_cooling_per_core_month: Power, cooling and rack share
            per provisioned core per month.
        headroom_factor: On-prem servers are provisioned above peak
            demand (you cannot resize hardware elastically).
    """

    server_cost_per_core: float = 550.0
    storage_cost_per_gb: float = 0.45
    amortization_years: float = 4.0
    sql_license_per_core_year: float = 1800.0
    ops_cost_per_server_month: float = 900.0
    power_cooling_per_core_month: float = 11.0
    headroom_factor: float = 1.5

    def provisioned_cores(self, trace: PerformanceTrace) -> float:
        """Physical cores an on-prem deployment would provision.

        Peak observed demand times the headroom factor, rounded up to
        an even core count (sockets come in pairs), minimum four.
        """
        peak = trace[PerfDimension.CPU].max() if PerfDimension.CPU in trace else 1.0
        cores = peak * self.headroom_factor
        even = 2 * round(cores / 2 + 0.49)
        return float(max(4, even))

    def monthly_cost(self, trace: PerformanceTrace) -> float:
        """Fully loaded monthly cost of hosting ``trace`` on-premises."""
        cores = self.provisioned_cores(trace)
        storage_gb = (
            trace[PerfDimension.STORAGE].max() if PerfDimension.STORAGE in trace else 0.0
        )
        months = self.amortization_years * 12.0
        hardware = (cores * self.server_cost_per_core) / months
        storage = (storage_gb * self.storage_cost_per_gb) / months
        license_cost = cores * self.sql_license_per_core_year / 12.0
        power = cores * self.power_cooling_per_core_month
        return hardware + storage + license_cost + power + self.ops_cost_per_server_month


@dataclass(frozen=True)
class TcoComparison:
    """On-prem versus recommended-PaaS cost comparison.

    Attributes:
        onprem_monthly: Fully loaded on-prem monthly cost.
        paas_monthly: Monthly price of the recommended SKU.
        recommended_sku: The Doppler recommendation compared against.
        onprem_cores: Cores the on-prem model provisions.
    """

    onprem_monthly: float
    paas_monthly: float
    recommended_sku: SkuSpec
    onprem_cores: float

    @property
    def monthly_saving(self) -> float:
        """Positive when migrating saves money."""
        return self.onprem_monthly - self.paas_monthly

    @property
    def annual_saving(self) -> float:
        return self.monthly_saving * 12.0

    @property
    def migration_favored(self) -> bool:
        return self.monthly_saving > 0

    def describe(self) -> str:
        direction = "favors migration" if self.migration_favored else "favors staying"
        return (
            f"on-prem ${self.onprem_monthly:,.0f}/mo ({self.onprem_cores:.0f} cores) vs "
            f"{self.recommended_sku.name} ${self.paas_monthly:,.0f}/mo -> "
            f"{direction} (${abs(self.monthly_saving):,.0f}/mo)"
        )


def compare_tco(
    trace: PerformanceTrace,
    recommended_sku: SkuSpec,
    cost_model: OnPremCostModel | None = None,
) -> TcoComparison:
    """Build the TCO comparison for one workload.

    Args:
        trace: Customer performance history.
        recommended_sku: Doppler's PaaS recommendation for it.
        cost_model: On-prem cost assumptions; defaults supplied.
    """
    model = cost_model if cost_model is not None else OnPremCostModel()
    return TcoComparison(
        onprem_monthly=model.monthly_cost(trace),
        paas_monthly=recommended_sku.monthly_price,
        recommended_sku=recommended_sku,
        onprem_cores=model.provisioned_cores(trace),
    )
