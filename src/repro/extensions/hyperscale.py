"""Azure SQL Hyperscale tier (paper Section 7 future work).

Hyperscale decouples compute from storage: storage grows on demand to
100 TB and is billed per allocated GB, while compute follows the
vCore ladder.  For Doppler the relevant consequences are (a) the
storage dimension effectively never throttles (the catalog cap is two
orders of magnitude above DB/MI) and (b) the price has a significant
usage-proportional storage component.

``hyperscale_skus`` builds the tier as ordinary :class:`SkuSpec`
entries so the existing Price-Performance Modeler ranks them with no
code changes -- the extensibility property the paper claims.
"""

from __future__ import annotations

from ..catalog.catalog import SkuCatalog
from ..catalog.models import (
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)

__all__ = ["hyperscale_skus", "catalog_with_hyperscale", "HYPERSCALE_MAX_STORAGE_GB"]

#: Hyperscale storage ceiling: 100 TB.
HYPERSCALE_MAX_STORAGE_GB = 102_400.0

_HS_VCORE_LADDER = (2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 64, 80)
_HS_VCORE_HOUR = 0.2920
_HS_MEMORY_PER_VCORE_GB = 5.1
_HS_IOPS_PER_VCORE = 1000.0  # multi-tier cache: between GP and BC
_HS_LOG_RATE_MBPS = 100.0  # hyperscale's fixed log-service throughput
_HS_IO_LATENCY_MS = 3.0
_HS_STORAGE_GB_HOUR = 0.000137


def hyperscale_skus(
    provisioned_storage_gb: float = 10_240.0,
) -> list[SkuSpec]:
    """Build the Hyperscale vCore ladder as plain catalog SKUs.

    Args:
        provisioned_storage_gb: Storage to price into the monthly
            cost (hyperscale bills allocated storage; the throttling
            cap stays at the 100 TB tier ceiling regardless).
    """
    if not 0.0 < provisioned_storage_gb <= HYPERSCALE_MAX_STORAGE_GB:
        raise ValueError(
            f"provisioned storage must be in (0, {HYPERSCALE_MAX_STORAGE_GB}], "
            f"got {provisioned_storage_gb!r}"
        )
    skus = []
    for vcores in _HS_VCORE_LADDER:
        limits = ResourceLimits(
            vcores=float(vcores),
            max_memory_gb=vcores * _HS_MEMORY_PER_VCORE_GB,
            max_data_iops=vcores * _HS_IOPS_PER_VCORE,
            max_log_rate_mbps=_HS_LOG_RATE_MBPS,
            max_data_size_gb=HYPERSCALE_MAX_STORAGE_GB,
            min_io_latency_ms=_HS_IO_LATENCY_MS,
        )
        price = (
            vcores * _HS_VCORE_HOUR
            + provisioned_storage_gb * _HS_STORAGE_GB_HOUR
        )
        skus.append(
            SkuSpec(
                deployment=DeploymentType.SQL_DB,
                tier=ServiceTier.GENERAL_PURPOSE,
                hardware=HardwareGeneration.GEN5,
                limits=limits,
                price_per_hour=price,
                name=f"DB_HS_Gen5_{vcores}v",
            )
        )
    return skus


def catalog_with_hyperscale(
    base: SkuCatalog,
    provisioned_storage_gb: float = 10_240.0,
) -> SkuCatalog:
    """Extend a catalog with the Hyperscale ladder."""
    return SkuCatalog.from_skus(list(base) + hyperscale_skus(provisioned_storage_gb))
