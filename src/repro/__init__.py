"""Doppler: automated SKU recommendation for SQL cloud migration.

A full reproduction of *Doppler: Automated SKU Recommendation in
Migrating SQL Workloads to the Cloud* (Cahoon et al., PVLDB 15(12),
VLDB 2022): price-performance modelling over resource-throttling
probabilities, customer profiling via negotiability summarizers,
profile-matched SKU selection, bootstrap confidence scores, the naive
baseline, the DMA integration pipeline, the simulation substrates
(SKU catalog, telemetry, workload synthesis/replay, customer fleets)
the evaluation requires, and a durable fleet store
(:mod:`repro.store`) that checkpoints live watches for byte-identical
resume after a crash.

Quickstart::

    from repro import DopplerEngine, SkuCatalog, DeploymentType

    engine = DopplerEngine(catalog=SkuCatalog.default())
    recommendation = engine.recommend(trace, DeploymentType.SQL_DB)
    print(recommendation.explain())

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-versus-measured results.
"""

from .catalog import (
    DeploymentType,
    HardwareGeneration,
    PricingModel,
    ResourceLimits,
    ServiceTier,
    SkuCatalog,
    SkuSpec,
)
from .core import (
    BaselineStrategy,
    CloudCustomerRecord,
    ConfidenceResult,
    CurveShape,
    CustomerProfile,
    CustomerProfiler,
    DopplerEngine,
    DopplerRecommendation,
    GroupScoreModel,
    IncrementalThrottlingEstimator,
    OverProvisionReport,
    PricePerformanceCurve,
    PricePerformanceModeler,
    ThresholdingSummarizer,
    confidence_score,
)
from .dma import AssessmentPipeline, AssessmentResult, FleetAssessmentResult
from .faults import FaultPlan
from .fleet import (
    CheckpointConfig,
    FleetCustomer,
    FleetEngine,
    FleetFitReport,
    FleetLiveUpdate,
    FleetRecommendation,
    FleetSample,
    FleetSummary,
    LoadImbalancePolicy,
    ShardRing,
    SupervisionConfig,
    WatchConfig,
    WatchSupervisionStats,
    WorkerEvent,
    summarize_fleet,
)
from . import serve
from .serve import AdmissionError, RecommendationService, ServeConfig
from .store import (
    FleetStore,
    FleetStoreError,
    StaleStateError,
    StoreCorruptionError,
    StoreSchemaError,
)
from .streaming import DriftDetector, DriftReport, LiveRecommender, LiveUpdate
from .telemetry import (
    PerfDimension,
    PerformanceTrace,
    StreamingTraceBuilder,
    TimeSeries,
)
from .workloads import WorkloadSpec, WorkloadSynthesizer, generate_trace, replay_on_sku

__version__ = "1.0.0"

__all__ = [
    "DeploymentType",
    "HardwareGeneration",
    "PricingModel",
    "ResourceLimits",
    "ServiceTier",
    "SkuCatalog",
    "SkuSpec",
    "BaselineStrategy",
    "CloudCustomerRecord",
    "ConfidenceResult",
    "CurveShape",
    "CustomerProfile",
    "CustomerProfiler",
    "DopplerEngine",
    "DopplerRecommendation",
    "GroupScoreModel",
    "IncrementalThrottlingEstimator",
    "OverProvisionReport",
    "PricePerformanceCurve",
    "PricePerformanceModeler",
    "ThresholdingSummarizer",
    "confidence_score",
    "AssessmentPipeline",
    "AssessmentResult",
    "FleetAssessmentResult",
    "CheckpointConfig",
    "FaultPlan",
    "SupervisionConfig",
    "WatchSupervisionStats",
    "WorkerEvent",
    "FleetCustomer",
    "FleetEngine",
    "FleetFitReport",
    "FleetLiveUpdate",
    "FleetRecommendation",
    "FleetSample",
    "FleetSummary",
    "LoadImbalancePolicy",
    "ShardRing",
    "WatchConfig",
    "summarize_fleet",
    "FleetStore",
    "FleetStoreError",
    "StaleStateError",
    "StoreCorruptionError",
    "StoreSchemaError",
    "AdmissionError",
    "RecommendationService",
    "ServeConfig",
    "serve",
    "DriftDetector",
    "DriftReport",
    "LiveRecommender",
    "LiveUpdate",
    "PerfDimension",
    "PerformanceTrace",
    "StreamingTraceBuilder",
    "TimeSeries",
    "WorkloadSpec",
    "WorkloadSynthesizer",
    "generate_trace",
    "replay_on_sku",
    "__version__",
]
