"""SLO-aware request microbatching.

The serving tier's throughput lever: individual awaiting requests
coalesce into bounded batches that run through the engine's columnar
chunk kernels (:meth:`~repro.fleet.engine.FleetEngine.recommend_batch`,
:meth:`_WatchShard.process <repro.fleet.backends._WatchShard.process>`),
amortizing cache probes and capacity-matrix broadcasts exactly the way
the offline fleet pass does.

A batch flushes on whichever trigger fires first:

* **size** -- ``max_batch`` requests are waiting (throughput bound);
* **deadline** -- ``max_delay`` elapsed since the oldest waiting
  request arrived (latency bound: no request waits longer than the
  coalescing budget before its batch is dispatched).

Flushes are strictly sequential per batcher, so a batcher in front of
stateful per-shard assessment preserves arrival order -- the property
the serve tier's byte-identity contract rests on.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Generic, TypeVar

from .metrics import BatchStats

__all__ = ["MicroBatcher"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class MicroBatcher(Generic[ItemT, ResultT]):
    """Coalesce awaited submissions into bounded, ordered batches.

    Args:
        flush: Async batch body; receives the items of one batch in
            submission order and returns one result per item, aligned.
            An exception from ``flush`` fails every request in that
            batch (and only that batch).
        max_batch: Flush as soon as this many items wait.
        max_delay: Seconds the oldest waiting item may wait before a
            partial batch is forced out.
    """

    def __init__(
        self,
        flush: Callable[[list[ItemT]], Awaitable[list[ResultT]]],
        max_batch: int,
        max_delay: float,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay!r}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = BatchStats()
        self._pending: list[tuple[ItemT, asyncio.Future]] = []
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False

    @property
    def depth(self) -> int:
        """Items waiting for a batch (not yet dispatched)."""
        return len(self._pending)

    def start(self) -> None:
        if self._task is None:
            self._closed = False
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain remaining items, then stop the flush loop."""
        if self._task is None:
            return
        self._closed = True
        self._wakeup.set()
        await self._task
        self._task = None

    async def submit(self, item: ItemT) -> ResultT:
        """Queue one item and await its batch's result for it."""
        if self._closed or self._task is None:
            raise RuntimeError("MicroBatcher is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((item, future))
        self._wakeup.set()
        return await future

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._pending:
                if self._closed:
                    return
                continue
            # The coalescing window opens when the loop first sees a
            # non-empty queue; the oldest item never waits past it.
            deadline = loop.time() + self.max_delay
            while len(self._pending) < self.max_batch and not self._closed:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                self._wakeup.clear()
            reason = "size" if len(self._pending) >= self.max_batch else "deadline"
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            self.stats.record(len(batch), reason)
            await self._dispatch(batch)
            if self._pending or self._closed:
                self._wakeup.set()

    async def _dispatch(self, batch: list[tuple[ItemT, asyncio.Future]]) -> None:
        items = [item for item, _ in batch]
        try:
            results = await self._flush(items)
        except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(items):
            error = RuntimeError(
                f"flush returned {len(results)} results for {len(items)} items"
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
