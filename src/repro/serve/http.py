"""Stdlib asyncio HTTP/1.1 front end for the serving tier.

A deliberately small server -- ``asyncio.start_server`` streams, no
third-party framework -- because the interesting machinery (routing,
microbatching, admission control) lives in
:class:`~repro.serve.service.RecommendationService`; this module only
translates HTTP to service calls:

* ``POST /observe`` -- one telemetry sample in, its live outcome out.
* ``POST /recommend`` -- one customer (trace document inline) in, its
  SKU recommendation out.
* ``GET /stats`` -- the service's request-level metrics snapshot.

Saturation maps to ``429 Too Many Requests`` with a ``Retry-After``
header carrying the lane's estimated drain time -- the
reject-with-retry-after half of the backpressure contract.
"""

from __future__ import annotations

import asyncio
import json

from ..catalog.models import DeploymentType
from ..fleet.engine import FleetCustomer, FleetLiveUpdate, FleetRecommendation, FleetSample
from ..telemetry.counters import PerfDimension
from ..telemetry.serialize import trace_from_dict
from .service import AdmissionError, RecommendationService

__all__ = ["recommendation_to_json", "serve", "update_to_json"]

#: Largest accepted request body; a trace document for a multi-week
#: six-dimension window fits comfortably, anything bigger is abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

_MAX_HEADER_BYTES = 64 * 1024


class _BadRequest(ValueError):
    """Client-side malformation; answered with a 400 and the message."""


def recommendation_to_json(result: FleetRecommendation) -> dict:
    """The wire projection of one recommend outcome.

    Carries exactly the decision surface (SKU, price, throttling
    numbers, strategy, right-sizing verdict) -- not the curve or
    profile artifacts, which stay library-side.
    """
    document: dict = {
        "customer_id": result.customer_id,
        "ok": result.ok,
        "error": result.error,
        "over_provisioned": result.over_provisioned,
        "stale": result.stale,
        "retry_after_s": result.retry_after_s,
        "recommendation": None,
    }
    if result.recommendation is not None:
        recommendation = result.recommendation
        document["recommendation"] = {
            "sku": recommendation.sku.name,
            "monthly_price": recommendation.monthly_price,
            "expected_throttling": recommendation.expected_throttling,
            "target_probability": recommendation.target_probability,
            "strategy": recommendation.strategy,
            "notes": list(recommendation.notes),
        }
    return document


def update_to_json(update: FleetLiveUpdate) -> dict:
    """The wire projection of one observe outcome."""
    document: dict = {
        "customer_id": update.customer_id,
        "ok": update.ok,
        "error": update.error,
        "deferred": update.deferred,
        "refreshed": False,
        "n_seen": None,
        "n_window": None,
        "recommendation": None,
    }
    if update.update is not None:
        live = update.update
        document["refreshed"] = live.refreshed
        document["n_seen"] = live.n_seen
        document["n_window"] = live.n_window
        if live.recommendation is not None:
            document["recommendation"] = {
                "sku": live.recommendation.sku.name,
                "monthly_price": live.recommendation.monthly_price,
                "expected_throttling": live.recommendation.expected_throttling,
            }
    return document


def _parse_deployment(document: dict) -> DeploymentType:
    raw = document.get("deployment", DeploymentType.SQL_DB.value)
    try:
        return DeploymentType(raw)
    except ValueError:
        raise _BadRequest(f"unknown deployment {raw!r}") from None


def _parse_observe(document: dict) -> FleetSample:
    try:
        customer_id = str(document["customer_id"])
        raw_values = document["values"]
    except (KeyError, TypeError):
        raise _BadRequest("observe body needs 'customer_id' and 'values'") from None
    if not isinstance(raw_values, dict):
        raise _BadRequest("'values' must map dimension names to numbers")
    values: dict[PerfDimension, float] = {}
    for name, value in raw_values.items():
        try:
            dimension = PerfDimension[name]
        except KeyError:
            raise _BadRequest(f"unknown performance dimension {name!r}") from None
        values[dimension] = float(value)
    return FleetSample(
        customer_id=customer_id, values=values, deployment=_parse_deployment(document)
    )


def _parse_recommend(document: dict) -> FleetCustomer:
    try:
        customer_id = str(document["customer_id"])
        trace_doc = document["trace"]
    except (KeyError, TypeError):
        raise _BadRequest("recommend body needs 'customer_id' and 'trace'") from None
    try:
        trace = trace_from_dict(trace_doc)
    except (ValueError, KeyError, TypeError) as exc:
        raise _BadRequest(f"bad trace document: {exc}") from None
    sizes = document.get("file_sizes_gib")
    return FleetCustomer(
        customer_id=customer_id,
        trace=trace,
        deployment=_parse_deployment(document),
        file_sizes_gib=tuple(float(s) for s in sizes) if sizes else None,
        current_sku_name=document.get("current_sku_name"),
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, bytes] | None:
    """One request off the wire: ``(method, path, headers, body)``.

    Returns None on a cleanly closed connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _BadRequest("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest("request head too large") from None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response(
    status: int,
    payload: dict,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests"}
    body = json.dumps(payload).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


async def _handle_one(
    service: RecommendationService, method: str, path: str, body: bytes
) -> bytes:
    if method == "GET" and path == "/stats":
        return _response(200, service.stats())
    if method != "POST" or path not in ("/observe", "/recommend"):
        return _response(404, {"error": f"no route for {method} {path}"})
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return _response(400, {"error": f"bad JSON body: {exc}"})
    if not isinstance(document, dict):
        return _response(400, {"error": "body must be a JSON object"})
    try:
        if path == "/observe":
            update = await service.observe(_parse_observe(document))
            return _response(200, update_to_json(update))
        result = await service.recommend(_parse_recommend(document))
        # Stale answers (degraded-mode serving) advertise when to come
        # back for a fresh one.
        headers: tuple[tuple[str, str], ...] = ()
        if result.stale and result.retry_after_s is not None:
            headers = (("Retry-After", f"{result.retry_after_s:.3f}"),)
        return _response(200, recommendation_to_json(result), extra_headers=headers)
    except _BadRequest as exc:
        return _response(400, {"error": str(exc)})
    except AdmissionError as exc:
        retry_after = max(exc.retry_after_s, 0.001)
        return _response(
            429,
            {"error": str(exc), "lane": exc.lane, "retry_after_s": retry_after},
            extra_headers=(("Retry-After", f"{retry_after:.3f}"),),
        )


async def serve(
    service: RecommendationService,
    host: str | None = None,
    port: int | None = None,
) -> asyncio.base_events.Server:
    """Bind the HTTP front end; the caller owns the returned server.

    The service must already be started (it usually wraps both in one
    ``async with service`` block).  Close with ``server.close()`` /
    ``await server.wait_closed()``; bound sockets are on
    ``server.sockets`` (useful with ``port=0``).
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(_response(400, {"error": str(exc)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                writer.write(await _handle_one(service, method, path, body))
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    config = service.config
    return await asyncio.start_server(
        handle,
        host if host is not None else config.host,
        port if port is not None else config.port,
        limit=_MAX_HEADER_BYTES,
    )
