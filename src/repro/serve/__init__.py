"""Online serving tier: asyncio service over the fleet engine.

The deployment shape the paper's engine is meant for -- a cloud
service over live customer telemetry -- as a subsystem:
:class:`RecommendationService` front-ends
:class:`~repro.fleet.engine.FleetEngine` with ``observe`` (telemetry
ingestion onto sharded live-assessment state) and ``recommend``
(columnar batch SKU queries) endpoints, SLO-aware microbatching
(:mod:`repro.serve.microbatch`), per-lane admission control with
reject-with-retry-after backpressure, request-level percentile
metrics (:mod:`repro.serve.metrics`), a stdlib HTTP front end
(:func:`repro.serve.http.serve`), and open/closed-loop load drivers
(:mod:`repro.serve.loadgen`).
"""

from .config import ServeConfig
from .http import serve
from .loadgen import (
    HttpLoadClient,
    LoadReport,
    arrival_times,
    closed_loop,
    diurnal_pattern,
    flash_crowd_pattern,
    open_loop,
)
from .metrics import BatchStats, LatencyRecorder
from .microbatch import MicroBatcher
from .service import AdmissionError, RecommendationService

__all__ = [
    "AdmissionError",
    "BatchStats",
    "HttpLoadClient",
    "LatencyRecorder",
    "LoadReport",
    "MicroBatcher",
    "RecommendationService",
    "ServeConfig",
    "arrival_times",
    "closed_loop",
    "diurnal_pattern",
    "flash_crowd_pattern",
    "open_loop",
    "serve",
]
