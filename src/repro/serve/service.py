"""The asyncio recommendation service.

:class:`RecommendationService` is the online front door over the
library's two request classes, routed onto different execution
substrates behind one API (the Polynesia framing from PAPERS.md --
engines per access pattern):

* **observe** -- cheap, stateful telemetry ingestion.  Requests route
  sticky-by-customer-id over the fleet's consistent-hash
  :class:`~repro.fleet.sharding.ShardRing` to per-shard
  :class:`~repro.fleet.backends._WatchShard` state, each shard
  confined to its own single-thread executor (the thread-backend
  confinement discipline), with microbatching in front so queued
  samples run through one ``process`` call per flush.
* **recommend** -- expensive, stateless curve/SKU queries.  Requests
  microbatch into :meth:`~repro.fleet.engine.FleetEngine.recommend_batch`
  calls -- the columnar chunk kernel -- on a dedicated executor, and
  results are byte-identical to a direct ``recommend_fleet`` pass
  over the same customers (the serving identity gate).

Admission control is per lane (one lane per observe shard, one for
recommend): a bounded queue plus an SLO budget checked against the
lane's observed seconds-per-request -- the same busy-seconds signal
the elastic watch's rebalance policy reads.  A request that would
blow the budget is rejected *immediately* with a suggested
retry-after, which is what keeps p99 bounded under overload instead
of letting queues grow without bound.

With a :class:`~repro.store.FleetStore` attached the service is
durable: :meth:`RecommendationService.checkpoint` persists every
observe shard's state through the same
:class:`~repro.store.StatePersistence` surface the watch tier uses,
:meth:`RecommendationService.evict_cold` spills the least-recently
observed customers to the store (fleets larger than RAM), evicted
customers are transparently restored when they observe again, and
:meth:`RecommendationService.recommendation_for` serves cold
customers' recommendations straight from the store without waking
their state.

The service also degrades instead of failing.  When a shard's flush
raises -- its in-memory state can no longer be trusted -- the shard
enters *degraded mode*: observes for its customers buffer into a
bounded replay queue and answer immediately with a ``deferred`` error
update; recommends for its customers answer from the store's last
known recommendation marked ``stale`` with a suggested retry-after.
:meth:`RecommendationService.restore_shard` rebuilds the shard from
the store's snapshots (corrupt per-customer blobs quarantine that
customer rather than aborting the restore), replays the buffered
samples, and returns the shard to normal service.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from ..fleet.backends import _WatchShard
from ..fleet.engine import (
    FleetCustomer,
    FleetEngine,
    FleetLiveUpdate,
    FleetRecommendation,
    FleetSample,
)
from ..fleet.sharding import ShardRing
from .config import ServeConfig
from .metrics import LatencyRecorder
from .microbatch import MicroBatcher

if TYPE_CHECKING:  # typing only; the store import is lazy at run time
    from ..core.types import DopplerRecommendation
    from ..store import CheckpointRecord, FleetStore

__all__ = ["AdmissionError", "RecommendationService"]

#: Smoothing factor of the per-lane seconds-per-request EWMA; high
#: enough to track load shifts within tens of batches, low enough not
#: to chase single-batch noise.
_EWMA_ALPHA = 0.2


class AdmissionError(RuntimeError):
    """A request the service refused to queue.

    Attributes:
        lane: The saturated lane (``observe[<shard>]`` or
            ``recommend``).
        retry_after_s: Suggested back-off: the lane's estimated time
            to drain its current queue.
    """

    def __init__(self, lane: str, retry_after_s: float, reason: str) -> None:
        super().__init__(
            f"{lane} saturated ({reason}); retry in ~{retry_after_s:.3f}s"
        )
        self.lane = lane
        self.retry_after_s = retry_after_s


class _Lane:
    """One admission-controlled microbatch lane.

    Owns the bounded queue accounting and the seconds-per-request
    estimate its admission decisions are based on.  ``inflight``
    counts requests admitted but not yet answered (queued in the
    batcher, or inside a running flush).
    """

    def __init__(self, name: str, batcher: MicroBatcher, config: ServeConfig) -> None:
        self.name = name
        self.batcher = batcher
        self.queue_limit = config.queue_limit
        self.slo_s = config.slo_ms / 1000.0
        self.inflight = 0
        self.max_inflight = 0
        self.n_rejected = 0
        self.ewma_s_per_item = 0.0

    def admit(self) -> None:
        """Admit one request or raise :class:`AdmissionError`."""
        estimated_wait = (self.inflight + 1) * self.ewma_s_per_item
        if self.inflight + 1 > self.queue_limit:
            self.n_rejected += 1
            raise AdmissionError(
                self.name, max(estimated_wait, self.ewma_s_per_item), "queue full"
            )
        if estimated_wait > self.slo_s:
            self.n_rejected += 1
            raise AdmissionError(self.name, estimated_wait, "SLO budget exceeded")
        self.inflight += 1
        if self.inflight > self.max_inflight:
            self.max_inflight = self.inflight

    def release(self) -> None:
        self.inflight -= 1

    def observe_flush(self, busy_seconds: float, batch_size: int) -> None:
        """Fold one flush's busy time into the per-request estimate."""
        if batch_size <= 0:
            return
        per_item = busy_seconds / batch_size
        if self.ewma_s_per_item == 0.0:
            self.ewma_s_per_item = per_item
        else:
            self.ewma_s_per_item += _EWMA_ALPHA * (per_item - self.ewma_s_per_item)

    def summary(self) -> dict:
        return {
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "n_rejected": self.n_rejected,
            "ewma_ms_per_request": self.ewma_s_per_item * 1000.0,
            "batches": self.batcher.stats.summary(),
        }


class RecommendationService:
    """Async serving tier over one :class:`~repro.fleet.engine.FleetEngine`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`)::

        service = RecommendationService(fleet, ServeConfig(n_shards=4))
        async with service:
            update = await service.observe(sample)
            result = await service.recommend(customer)
            service.stats()

    All coroutine methods must be called from the event loop that ran
    :meth:`start`.  Blocking work (assessment, curve building) happens
    on executors, never on the loop.
    """

    def __init__(
        self,
        fleet: FleetEngine,
        config: ServeConfig | None = None,
        store: "FleetStore | None" = None,
    ) -> None:
        self.fleet = fleet
        self.config = config if config is not None else ServeConfig()
        if not isinstance(self.config, ServeConfig):
            raise ValueError(f"config must be a ServeConfig, got {self.config!r}")
        if store is not None:
            from ..store import FleetStore as _FleetStore

            if not isinstance(store, _FleetStore):
                raise ValueError(f"store must be a FleetStore, got {store!r}")
        self.store = store
        # Fail fast on bad assessment parameters, like watch_fleet does.
        self._shard_config = fleet._shard_config(self.config.watch, refreshes_only=False)
        self._ring = ShardRing(self.config.n_shards)
        self._started = False
        self._evicted: set[str] = set()
        self._observed_seq = 0
        self._last_observed: dict[str, int] = {}
        self._n_checkpoints = 0
        self._n_evictions = 0
        self._shards: list[_WatchShard] = []
        self._executors: list[ThreadPoolExecutor] = []
        self._observe_lanes: list[_Lane] = []
        # Degraded-mode bookkeeping: shard_id -> replay queue of
        # samples buffered while that shard awaits restore_shard().
        self._degraded: dict[int, deque[FleetSample]] = {}
        self._degraded_reason: dict[int, str] = {}
        self._n_deferred = 0
        self._n_stale_served = 0
        self._n_shard_restores = 0
        self._n_corrupt_quarantined = 0
        self._n_warm_restored = 0
        self._recommend_lane: _Lane | None = None
        self._recommend_executor: ThreadPoolExecutor | None = None
        self.observe_latency = LatencyRecorder()
        self.recommend_latency = LatencyRecorder()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Build shards, executors and batch loops on the running loop.

        With a store attached that holds a checkpoint, start is a
        *warm restart*: every checkpointed customer's live state is
        restored into its ring-routed shard before the first request
        lands, so a restarted service answers exactly as the
        uninterrupted one would instead of re-warming every customer
        from scratch.  A customer whose stored blob fails to decode is
        quarantined (event-logged) rather than aborting startup.
        """
        if self._started:
            return
        config = self.config
        max_delay_s = config.max_delay_ms / 1000.0
        for shard_id in range(config.n_shards):
            shard = _WatchShard(self._shard_config)
            executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"serve-shard-{shard_id}"
            )
            batcher: MicroBatcher = MicroBatcher(
                self._make_observe_flush(shard_id), config.max_batch, max_delay_s
            )
            self._shards.append(shard)
            self._executors.append(executor)
            self._observe_lanes.append(_Lane(f"observe[{shard_id}]", batcher, config))
            batcher.start()
        self._recommend_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-recommend"
        )
        recommend_batcher: MicroBatcher = MicroBatcher(
            self._recommend_flush, config.max_batch, max_delay_s
        )
        self._recommend_lane = _Lane("recommend", recommend_batcher, config)
        recommend_batcher.start()
        self._warm_restore()
        self._started = True

    def _warm_restore(self) -> None:
        """Restore checkpointed observe-shard state from the store."""
        if self.store is None or self.store.latest_checkpoint() is None:
            return
        corrupt: list[tuple[int, str, str]] = []

        def on_corrupt(customer_id: str, exc: Exception) -> None:
            shard_id = self._ring.route(customer_id)
            self._shards[shard_id].quarantined.add(customer_id)
            corrupt.append((shard_id, customer_id, str(exc)))

        by_shard: dict[int, list] = {}
        for record in self.store.iter_customer_states(on_corrupt=on_corrupt):
            by_shard.setdefault(self._ring.route(record.customer_id), []).append(
                record
            )
        for shard_id, records in sorted(by_shard.items()):
            self._shards[shard_id].restore_records(records)
            self._n_warm_restored += sum(
                1 for record in records if not record.quarantined
            )
        for shard_id, customer_id, detail in corrupt:
            self._n_corrupt_quarantined += 1
            self.store.append_event(
                "quarantine",
                tick_id=self._n_checkpoints,
                customer_id=customer_id,
                source_shard=shard_id,
                detail={"reason": "corrupt_state", "error": detail},
            )

    async def stop(self) -> None:
        """Drain every lane, then tear down executors and shard state."""
        if not self._started:
            return
        for lane in self._observe_lanes:
            await lane.batcher.stop()
        if self._recommend_lane is not None:
            await self._recommend_lane.batcher.stop()
        for executor in self._executors:
            executor.shutdown(wait=True)
        if self._recommend_executor is not None:
            self._recommend_executor.shutdown(wait=True)
        self._shards.clear()
        self._executors.clear()
        self._observe_lanes.clear()
        self._degraded.clear()
        self._degraded_reason.clear()
        self._recommend_lane = None
        self._recommend_executor = None
        self._started = False

    async def __aenter__(self) -> "RecommendationService":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def observe(self, sample: FleetSample) -> FleetLiveUpdate:
        """Ingest one telemetry sample; answer with its live outcome.

        Routes to the owning shard, admits against the shard lane's
        queue bound and SLO budget, and microbatches into one
        ``_WatchShard.process`` call per flush.  Quarantined customers
        (a previous sample's assessment failed) answer with an error
        update rather than silence -- an online caller always gets a
        response.

        Raises:
            AdmissionError: When the shard lane is saturated.
        """
        self._require_started()
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._observed_seq += 1
        self._last_observed[sample.customer_id] = self._observed_seq
        shard_id = self._ring.route(sample.customer_id)
        if shard_id in self._degraded:
            update = self._defer_observe(shard_id, sample)
            self.observe_latency.record(loop.time() - started)
            return update
        lane = self._observe_lanes[shard_id]
        lane.admit()
        try:
            update = await lane.batcher.submit(sample)
        finally:
            lane.release()
        self.observe_latency.record(loop.time() - started)
        return update

    async def recommend(self, customer: FleetCustomer) -> FleetRecommendation:
        """Assess one customer; answer with its ``FleetRecommendation``.

        Microbatches into the columnar
        :meth:`~repro.fleet.engine.FleetEngine.recommend_batch` kernel;
        results are byte-identical to a direct ``recommend_fleet``
        pass.  Per-customer assessment failures come back as error
        results (the fleet containment contract), never exceptions.

        While the customer's observe shard is degraded, the freshest
        verdict may depend on state that is mid-restore; with a store
        attached the service answers from the last stored
        recommendation marked ``stale=True`` with a ``retry_after_s``
        hint instead of computing a possibly-inconsistent fresh one.

        Raises:
            AdmissionError: When the recommend lane is saturated, or
                the customer's shard is degraded and no stored
                recommendation exists to serve stale.
        """
        self._require_started()
        loop = asyncio.get_running_loop()
        started = loop.time()
        shard_id = self._ring.route(customer.customer_id)
        if shard_id in self._degraded:
            result = self._stale_recommend(shard_id, customer)
            self.recommend_latency.record(loop.time() - started)
            return result
        lane = self._recommend_lane
        assert lane is not None
        lane.admit()
        try:
            result = await lane.batcher.submit(customer)
        finally:
            lane.release()
        self.recommend_latency.record(loop.time() - started)
        return result

    def stats(self) -> dict:
        """Request-level metrics snapshot (the stats endpoint body)."""
        per_shard = []
        for shard_id, lane in enumerate(self._observe_lanes):
            shard = self._shards[shard_id]
            entry = {"shard_id": shard_id}
            entry.update(lane.summary())
            entry["n_customers"] = len(shard.recommenders)
            entry["n_quarantined"] = len(shard.quarantined)
            entry["degraded"] = shard_id in self._degraded
            per_shard.append(entry)
        recommend = (
            self._recommend_lane.summary() if self._recommend_lane is not None else {}
        )
        return {
            "running": self._started,
            "n_shards": self.config.n_shards,
            "durability": {
                "store_attached": self.store is not None,
                "n_checkpoints": self._n_checkpoints,
                "n_evictions": self._n_evictions,
                "n_evicted_resident": len(self._evicted),
                "n_warm_restored": self._n_warm_restored,
            },
            "degraded": {
                "shards": sorted(self._degraded),
                "reasons": {
                    str(shard_id): reason
                    for shard_id, reason in sorted(self._degraded_reason.items())
                },
                "replay_buffered": sum(len(q) for q in self._degraded.values()),
                "n_deferred": self._n_deferred,
                "n_stale_served": self._n_stale_served,
                "n_shard_restores": self._n_shard_restores,
                "n_corrupt_quarantined": self._n_corrupt_quarantined,
            },
            "observe": {
                "latency": self.observe_latency.summary(),
                "n_rejected": sum(lane.n_rejected for lane in self._observe_lanes),
                "queue_depth": sum(lane.inflight for lane in self._observe_lanes),
                "shards": per_shard,
            },
            "recommend": {
                "latency": self.recommend_latency.summary(),
                "n_rejected": recommend.get("n_rejected", 0),
                "queue_depth": recommend.get("inflight", 0),
                "lane": recommend,
            },
        }

    # ------------------------------------------------------------------
    # Flush bodies
    # ------------------------------------------------------------------
    def _make_observe_flush(self, shard_id: int):
        async def flush(samples: list[FleetSample]) -> list[FleetLiveUpdate]:
            from ..store import StoreCorruptionError

            loop = asyncio.get_running_loop()
            shard = self._shards[shard_id]
            batch = list(enumerate(samples))
            returning = (
                sorted(
                    {s.customer_id for s in samples if s.customer_id in self._evicted}
                )
                if self._evicted and self.store is not None
                else []
            )
            corrupt: list[tuple[str, str]] = []

            def run() -> tuple:
                # Cold customers observing again: restore their stored
                # state before the batch runs, on the shard's own
                # executor thread so state stays thread-confined.  A
                # corrupt blob quarantines that one customer instead of
                # failing the whole flush.
                if returning:
                    assert self.store is not None
                    records = []
                    for customer_id in returning:
                        try:
                            record = self.store.load_customer_state(customer_id)
                        except StoreCorruptionError as exc:
                            corrupt.append((customer_id, str(exc)))
                            shard.quarantined.add(customer_id)
                            continue
                        if record is not None:
                            records.append(record)
                    shard.restore_records(records)
                return shard.process(batch)

            try:
                emissions, busy_seconds = await loop.run_in_executor(
                    self._executors[shard_id], run
                )
            except Exception as exc:
                # The shard's in-memory state can no longer be trusted:
                # degrade it and answer every admitted sample with a
                # deferred update instead of failing the whole lane.
                return self._fail_shard(shard_id, samples, exc)
            if returning:
                self._evicted.difference_update(returning)
            if corrupt:
                self._note_corrupt(shard_id, corrupt)
            self._observe_lanes[shard_id].observe_flush(busy_seconds, len(batch))
            # refreshes_only is forced off, so every non-quarantined
            # sample emits; the missing sequence numbers are exactly
            # the quarantined customers' samples.
            by_seq = dict(emissions)
            return [
                by_seq.get(
                    seq,
                    FleetLiveUpdate(
                        customer_id=sample.customer_id,
                        update=None,
                        error="customer is quarantined",
                    ),
                )
                for seq, sample in batch
            ]

        return flush

    # ------------------------------------------------------------------
    # Degraded mode and self-healing
    # ------------------------------------------------------------------
    def _fail_shard(
        self, shard_id: int, samples: list[FleetSample], exc: Exception
    ) -> list[FleetLiveUpdate]:
        """Degrade a shard whose flush raised; answer its admitted batch."""
        reason = f"{type(exc).__name__}: {exc}"
        if shard_id not in self._degraded:
            self._degraded[shard_id] = deque()
            self._degraded_reason[shard_id] = reason
        buffer = self._degraded[shard_id]
        updates = []
        for sample in samples:
            if len(buffer) < self.config.replay_limit:
                buffer.append(sample)
                self._n_deferred += 1
                updates.append(self._deferred_update(shard_id, sample))
            else:
                updates.append(
                    FleetLiveUpdate(
                        customer_id=sample.customer_id,
                        update=None,
                        error=(
                            f"shard {shard_id} is restarting and its replay "
                            "buffer is full; sample dropped"
                        ),
                    )
                )
        return updates

    def _deferred_update(self, shard_id: int, sample: FleetSample) -> FleetLiveUpdate:
        return FleetLiveUpdate(
            customer_id=sample.customer_id,
            update=None,
            error=f"shard {shard_id} is restarting; sample buffered for replay",
            deferred=True,
        )

    def _defer_observe(self, shard_id: int, sample: FleetSample) -> FleetLiveUpdate:
        """Buffer one observe against a degraded shard, or shed it."""
        buffer = self._degraded[shard_id]
        if len(buffer) >= self.config.replay_limit:
            lane = self._observe_lanes[shard_id]
            lane.n_rejected += 1
            raise AdmissionError(
                lane.name,
                self._restore_eta(shard_id),
                "shard degraded and replay buffer full",
            )
        buffer.append(sample)
        self._n_deferred += 1
        return self._deferred_update(shard_id, sample)

    def _stale_recommend(
        self, shard_id: int, customer: FleetCustomer
    ) -> FleetRecommendation:
        """Answer a recommend for a degraded shard from the store."""
        from ..store import StoreCorruptionError

        stored = None
        if self.store is not None:
            try:
                record = self.store.load_customer_state(customer.customer_id)
            except StoreCorruptionError:
                record = None
            if record is not None and record.state is not None:
                stored = record.state.recommendation
        retry_after = self._restore_eta(shard_id)
        if stored is None:
            raise AdmissionError(
                f"recommend[{shard_id}]",
                retry_after,
                "shard degraded and no stored recommendation to serve stale",
            )
        self._n_stale_served += 1
        return FleetRecommendation(
            customer_id=customer.customer_id,
            recommendation=stored,
            stale=True,
            retry_after_s=retry_after,
        )

    def _restore_eta(self, shard_id: int) -> float:
        """Suggested retry-after while a shard restores: its replay debt."""
        lane = self._observe_lanes[shard_id]
        buffered = len(self._degraded.get(shard_id, ()))
        return max(0.05, (buffered + 1) * max(lane.ewma_s_per_item, 0.001))

    def _note_corrupt(self, shard_id: int, corrupt: list[tuple[str, str]]) -> None:
        """Record corrupt-blob quarantines (event log + counters)."""
        self._n_corrupt_quarantined += len(corrupt)
        self._evicted.difference_update(cid for cid, _ in corrupt)
        if self.store is None:
            return
        for customer_id, detail in corrupt:
            self.store.append_event(
                "quarantine",
                tick_id=self._n_checkpoints,
                customer_id=customer_id,
                source_shard=shard_id,
                detail={"reason": "corrupt_state", "error": detail},
            )

    async def restore_shard(self, shard_id: int) -> int:
        """Heal a degraded shard; returns the number of replayed samples.

        Rebuilds the shard from scratch, restores its customers'
        snapshots from the attached store (per-customer corruption
        quarantines that customer instead of aborting the restore;
        without a store, customers restart their warm-up from the
        replayed samples alone), replays the buffered observes in
        arrival order, and returns the shard to normal service.
        """
        self._require_started()
        if shard_id not in self._degraded:
            raise ValueError(f"shard {shard_id} is not degraded")
        from ..store import StoreCorruptionError

        loop = asyncio.get_running_loop()
        executor = self._executors[shard_id]
        old = self._shards[shard_id]
        fresh = _WatchShard(self._shard_config)
        fresh.quarantined.update(old.quarantined)
        members = sorted(old.recommenders)
        corrupt: list[tuple[str, str]] = []

        def rebuild() -> None:
            if self.store is None:
                return
            records = []
            for customer_id in members:
                try:
                    record = self.store.load_customer_state(customer_id)
                except StoreCorruptionError as exc:
                    corrupt.append((customer_id, str(exc)))
                    fresh.quarantined.add(customer_id)
                    continue
                if record is not None:
                    records.append(record)
            fresh.restore_records(records)

        await loop.run_in_executor(executor, rebuild)
        if corrupt:
            self._note_corrupt(shard_id, corrupt)
        # Replay in rounds: each round drains the buffer on the loop
        # thread, then processes off-loop; observes arriving during a
        # round land in the buffer and are picked up by the next one.
        replayed = 0
        while True:
            buffer = self._degraded[shard_id]
            if not buffer:
                # No await between this check and the hand-back below,
                # so no observe can slip into the buffer we are about
                # to discard.
                break
            batch: list[FleetSample] = []
            while buffer:
                batch.append(buffer.popleft())
            await loop.run_in_executor(
                executor, fresh.process, list(enumerate(batch))
            )
            replayed += len(batch)
        self._shards[shard_id] = fresh
        del self._degraded[shard_id]
        self._degraded_reason.pop(shard_id, None)
        self._n_shard_restores += 1
        return replayed

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    async def checkpoint(self) -> "CheckpointRecord":
        """Persist every observe shard's state to the attached store.

        Each shard snapshots on its own executor thread (the only
        thread that ever touches its state), so a checkpoint never
        races an in-flight flush; ``snapshot_records`` is
        non-destructive, so serving continues unchanged.  One store
        transaction covers all shards.
        """
        self._require_started()
        store = self._require_store()
        loop = asyncio.get_running_loop()
        # Degraded shards are excluded: their in-memory state is the
        # very thing that failed, and checkpointing it would poison the
        # snapshots restore_shard rebuilds from.
        shard_records = await asyncio.gather(
            *(
                loop.run_in_executor(executor, shard.snapshot_records)
                for shard_id, (shard, executor) in enumerate(
                    zip(self._shards, self._executors)
                )
                if shard_id not in self._degraded
            )
        )
        records = [record for batch in shard_records for record in batch]
        self._n_checkpoints += 1
        return store.checkpoint(
            tick_id=self._n_checkpoints,
            n_consumed=self._observed_seq,
            n_emitted=self._observed_seq,
            n_shards=self.config.n_shards,
            overrides=self._ring.overrides,
            records=records,
        )

    async def evict_cold(self, max_resident: int) -> int:
        """Evict the least-recently-observed customers beyond the cap.

        State moves to the store (with an ``eviction`` audit event per
        customer) and the customers' next observe restores it
        transparently; meanwhile :meth:`recommendation_for` still
        answers for them from the store.  Returns the number evicted.
        """
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident!r}")
        self._require_started()
        store = self._require_store()
        loop = asyncio.get_running_loop()
        listings = await asyncio.gather(
            *(
                loop.run_in_executor(executor, lambda s=shard: sorted(s.recommenders))
                for shard, executor in zip(self._shards, self._executors)
            )
        )
        resident = [
            (self._last_observed.get(customer_id, 0), customer_id, shard_id)
            for shard_id, customer_ids in enumerate(listings)
            for customer_id in customer_ids
        ]
        excess = len(resident) - max_resident
        if excess <= 0:
            return 0
        victims = sorted(resident)[:excess]
        by_shard: dict[int, list[str]] = {}
        for _, customer_id, shard_id in victims:
            by_shard.setdefault(shard_id, []).append(customer_id)
        for shard_id in sorted(by_shard):
            customer_ids = sorted(by_shard[shard_id])
            shard = self._shards[shard_id]
            records = await loop.run_in_executor(
                self._executors[shard_id], shard.extract, customer_ids
            )
            store.save_customer_states(records, tick_id=self._n_checkpoints)
            for customer_id in customer_ids:
                store.append_event(
                    "eviction",
                    tick_id=self._n_checkpoints,
                    customer_id=customer_id,
                    source_shard=shard_id,
                )
            self._evicted.update(customer_ids)
        self._n_evictions += excess
        return excess

    def recommendation_for(self, customer_id: str) -> "DopplerRecommendation | None":
        """The customer's current recommendation, hot or cold.

        Resident customers answer from their live state; evicted (or
        otherwise store-only) customers answer from their stored
        snapshot without rehydrating it.  None when the customer is
        unknown everywhere or has not warmed up yet.
        """
        for shard in self._shards:
            live = shard.recommenders.get(customer_id)
            if live is not None:
                return live.recommendation
        if self.store is not None:
            record = self.store.load_customer_state(customer_id)
            if record is not None and record.state is not None:
                return record.state.recommendation
        return None

    def _require_store(self) -> "FleetStore":
        if self.store is None:
            raise RuntimeError(
                "RecommendationService has no FleetStore attached; pass "
                "store=FleetStore(...) at construction"
            )
        return self.store

    async def _recommend_flush(self, customers: list[FleetCustomer]) -> list:
        loop = asyncio.get_running_loop()
        lane = self._recommend_lane
        assert lane is not None
        started = loop.time()
        results = await loop.run_in_executor(
            self._recommend_executor, self.fleet.recommend_batch, customers
        )
        lane.observe_flush(loop.time() - started, len(customers))
        return results

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError(
                "RecommendationService is not running; use 'async with service:' "
                "or call start() from the event loop first"
            )
