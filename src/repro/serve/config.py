"""Configuration for the online serving tier."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..fleet.config import WatchConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`~repro.serve.service.RecommendationService`.

    The sibling of :class:`~repro.fleet.config.WatchConfig` for the
    online tier; both are frozen value objects meant to be built once
    and varied with ``replace``.

    Attributes:
        n_shards: Observe-path shards.  Each shard owns its customers'
            live assessment state (sticky routing over the same
            consistent-hash ring the fleet watch uses) and runs on its
            own single-thread executor, so per-customer state never
            needs a lock.
        max_batch: Microbatch flush size for both endpoints.
        max_delay_ms: Microbatch coalescing deadline: the longest a
            request waits for companions before its (possibly partial)
            batch dispatches.
        queue_limit: Per-lane admission bound on requests queued or in
            flight; beyond it requests are rejected with a retry-after.
        slo_ms: Admission latency budget.  A request whose estimated
            queue delay (queued work times the lane's observed
            seconds-per-request) exceeds this is rejected instead of
            queued -- the shed-early half of the SLO story.
        replay_limit: Per-shard bound on observe samples buffered
            while that shard is degraded (its state failed and is
            awaiting :meth:`~repro.serve.service.RecommendationService.restore_shard`).
            Buffered samples replay through the rebuilt shard; beyond
            the bound observes are rejected with a retry-after.
        watch: Per-customer live-assessment parameters for the observe
            path (window, cadence, drift threshold, warm-up,
            ``profile_mode``).  Execution fields (``backend``,
            ``max_workers``, the rebalance surface) and
            ``refreshes_only`` are ignored: the service is its own
            execution substrate, and every observe call answers with
            that sample's outcome.
        host: Bind address for :func:`repro.serve.http.serve`.
        port: Bind port; 0 picks a free one.
    """

    n_shards: int = 2
    max_batch: int = 32
    max_delay_ms: float = 5.0
    queue_limit: int = 256
    slo_ms: float = 250.0
    replay_limit: int = 1024
    watch: WatchConfig = field(default_factory=WatchConfig)
    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards!r}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch!r}")
        if self.max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {self.max_delay_ms!r}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit!r}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms!r}")
        if self.replay_limit < 1:
            raise ValueError(f"replay_limit must be >= 1, got {self.replay_limit!r}")
        if not isinstance(self.watch, WatchConfig):
            raise ValueError(f"watch must be a WatchConfig, got {self.watch!r}")

    def replace(self, **changes) -> "ServeConfig":
        """A copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)
