"""Load generation against the serving tier.

Two driver shapes, the standard pair from the serving-benchmark
literature:

* **Open loop** (:func:`open_loop`): requests fire on a wall-clock
  arrival schedule regardless of completions, so queueing delay shows
  up as latency instead of silently throttling the offered load --
  the honest way to measure a system under a demand curve it does not
  control.  Schedules derive from the repo's own
  :mod:`repro.workloads.patterns` demand shapes
  (:func:`arrival_times`): a diurnal day compressed into seconds, or
  a flash crowd (steady base + spike burst) for the backpressure
  story.
* **Closed loop** (:func:`closed_loop`): ``n_workers`` concurrent
  callers each await their response before issuing the next request.
  Sustained throughput under a fixed concurrency -- the capacity
  number the perf floors pin.

Both drivers account rejections (:class:`~repro.serve.service.AdmissionError`)
separately from errors and fold latencies into a
:class:`~repro.serve.metrics.LatencyRecorder`, reported as a
:class:`LoadReport`.

Drivers take any ``submit`` coroutine factory, so they run equally
against in-process service calls and -- through
:class:`HttpLoadClient`, a small pooled keep-alive HTTP/1.1 client for
the :mod:`repro.serve.http` front end -- against the real socket path.
The client translates a 429 response back into
:class:`~repro.serve.service.AdmissionError` so the drivers' rejection
accounting is transport-independent.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Awaitable, Callable, Sequence

import numpy as np

from ..fleet.engine import FleetCustomer, FleetSample
from ..ml.bootstrap import resolve_rng
from ..telemetry.serialize import trace_to_dict
from ..workloads.patterns import Composite, DemandPattern, DiurnalPattern, SpikyPattern, SteadyPattern
from .metrics import REPORTED_PERCENTILES, LatencyRecorder
from .service import AdmissionError

__all__ = [
    "HttpLoadClient",
    "LoadReport",
    "arrival_times",
    "closed_loop",
    "diurnal_pattern",
    "flash_crowd_pattern",
    "open_loop",
]

def diurnal_pattern(peak: float = 1.0) -> DemandPattern:
    """A full diurnal day, trough at 20% of peak -- the canonical curve."""
    return DiurnalPattern(trough=0.2 * peak, peak=peak, noise=0.02)


def flash_crowd_pattern(base: float = 0.3, peak: float = 3.0) -> DemandPattern:
    """Steady background plus a rare, violent spike: the flash crowd."""
    return Composite(
        SteadyPattern(level=base, noise=0.02),
        SpikyPattern(
            base=0.0,
            peak=peak,
            spike_probability=0.05,
            spike_duration_samples=4,
            noise=0.02,
        ),
    )


def arrival_times(
    pattern: DemandPattern,
    duration_s: float,
    mean_rps: float,
    n_bins: int = 48,
    rng=None,
) -> list[float]:
    """An open-loop arrival schedule shaped by a demand pattern.

    The pattern's demand curve (sampled at ``n_bins`` points, its
    nominal cadence compressed onto ``duration_s`` seconds) is
    normalized so the *mean* arrival rate is ``mean_rps``; each bin
    then receives a proportional number of arrivals, spread uniformly
    at random inside the bin.  Returns offsets in seconds from the
    driver's start, sorted ascending.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    if mean_rps <= 0:
        raise ValueError(f"mean_rps must be positive, got {mean_rps!r}")
    generator = resolve_rng(rng)
    levels = np.asarray(
        pattern.generate(n_bins, interval_minutes=10.0, rng=generator), dtype=float
    )
    levels = np.maximum(levels, 0.0)
    if levels.sum() <= 0:
        levels = np.ones(n_bins)
    n_total = max(1, round(mean_rps * duration_s))
    weights = levels / levels.sum()
    counts = np.floor(weights * n_total).astype(int)
    # Distribute the rounding remainder onto the highest-demand bins.
    remainder = n_total - int(counts.sum())
    for index in np.argsort(weights)[::-1][:remainder]:
        counts[index] += 1
    bin_len = duration_s / n_bins
    times: list[float] = []
    for index, count in enumerate(counts):
        if count:
            start = index * bin_len
            times.extend(start + generator.random(int(count)) * bin_len)
    times.sort()
    return times


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-driver run.

    ``requests_per_sec`` counts *completed* (ok) requests over the
    run's wall-clock; rejections and errors are accounted but not
    credited as throughput.
    """

    name: str
    n_requests: int
    n_ok: int
    n_rejected: int
    n_errors: int
    duration_s: float
    latency: LatencyRecorder

    @property
    def requests_per_sec(self) -> float:
        return self.n_ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.n_rejected / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "requests_per_sec": self.requests_per_sec,
            "rejection_rate": self.rejection_rate,
        }
        for label, _ in REPORTED_PERCENTILES:
            out[label] = 0.0
        out.update(
            (label, value)
            for label, value in self.latency.summary().items()
            if label.endswith("_ms")
        )
        return out


async def _timed_call(
    submit: Callable[[], Awaitable], latency: LatencyRecorder
) -> str:
    loop = asyncio.get_running_loop()
    started = loop.time()
    try:
        await submit()
    except AdmissionError:
        return "rejected"
    except Exception:  # noqa: BLE001 - drivers classify, not crash
        return "error"
    latency.record(loop.time() - started)
    return "ok"


async def open_loop(
    submit: Callable[[], Awaitable], schedule: Sequence[float], name: str = "open_loop"
) -> LoadReport:
    """Fire ``submit`` at each schedule offset; never wait in between.

    Late tasks fire immediately (the driver never *re-throttles* a
    backlog -- that would close the loop); every request's latency is
    measured from its actual dispatch.
    """
    loop = asyncio.get_running_loop()
    latency = LatencyRecorder()
    started = loop.time()
    tasks: list[asyncio.Task] = []

    async def fire_at(offset: float) -> str:
        delay = started + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await _timed_call(submit, latency)

    tasks = [loop.create_task(fire_at(offset)) for offset in schedule]
    outcomes = await asyncio.gather(*tasks)
    duration = loop.time() - started
    return LoadReport(
        name=name,
        n_requests=len(outcomes),
        n_ok=sum(1 for outcome in outcomes if outcome == "ok"),
        n_rejected=sum(1 for outcome in outcomes if outcome == "rejected"),
        n_errors=sum(1 for outcome in outcomes if outcome == "error"),
        duration_s=duration,
        latency=latency,
    )


async def closed_loop(
    submit: Callable[[], Awaitable],
    n_workers: int,
    n_requests: int,
    name: str = "closed_loop",
) -> LoadReport:
    """``n_workers`` callers issue ``n_requests`` total, one at a time each."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers!r}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests!r}")
    loop = asyncio.get_running_loop()
    latency = LatencyRecorder()
    remaining = iter(range(n_requests))
    outcomes: list[str] = []

    async def worker() -> None:
        for _ in remaining:
            outcomes.append(await _timed_call(submit, latency))

    started = loop.time()
    await asyncio.gather(*(worker() for _ in range(n_workers)))
    duration = loop.time() - started
    return LoadReport(
        name=name,
        n_requests=len(outcomes),
        n_ok=sum(1 for outcome in outcomes if outcome == "ok"),
        n_rejected=sum(1 for outcome in outcomes if outcome == "rejected"),
        n_errors=sum(1 for outcome in outcomes if outcome == "error"),
        duration_s=duration,
        latency=latency,
    )


class HttpLoadClient:
    """Pooled keep-alive HTTP client for the serving front end.

    Speaks the exact wire shapes :mod:`repro.serve.http` accepts, over
    at most ``pool_size`` persistent connections.  Concurrent callers
    beyond the pool size queue for a free connection, so a closed-loop
    driver with ``n_workers`` callers wants ``pool_size >= n_workers``.

    A 429 response is raised as
    :class:`~repro.serve.service.AdmissionError` (lane and suggested
    back-off taken from the response body), matching what the
    in-process call would have raised; any other non-200 status raises
    :class:`RuntimeError`.
    """

    def __init__(self, host: str, port: int, pool_size: int = 8) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size!r}")
        self._host = host
        self._port = port
        # Unopened slots are ``None``; connections dial lazily on
        # first acquire and return to the pool after each exchange.
        self._pool: asyncio.Queue = asyncio.Queue()
        for _ in range(pool_size):
            self._pool.put_nowait(None)
        self._closed = False

    async def observe(self, sample: FleetSample) -> dict:
        """POST one telemetry sample; the observe outcome document."""
        return await self._request(
            "POST",
            "/observe",
            {
                "customer_id": sample.customer_id,
                "values": {
                    dimension.name: float(value)
                    for dimension, value in sample.values.items()
                },
                "deployment": sample.deployment.value,
            },
        )

    async def recommend(self, customer: FleetCustomer) -> dict:
        """POST one customer's trace; the recommendation document."""
        payload: dict = {
            "customer_id": customer.customer_id,
            "trace": trace_to_dict(customer.trace),
            "deployment": customer.deployment.value,
        }
        if customer.file_sizes_gib is not None:
            payload["file_sizes_gib"] = list(customer.file_sizes_gib)
        if customer.current_sku_name is not None:
            payload["current_sku_name"] = customer.current_sku_name
        return await self._request("POST", "/recommend", payload)

    async def stats(self) -> dict:
        """GET the service's metrics snapshot."""
        return await self._request("GET", "/stats")

    async def close(self) -> None:
        """Close every pooled connection; the client is done after."""
        self._closed = True
        while not self._pool.empty():
            connection = self._pool.get_nowait()
            if connection is not None:
                _reader, writer = connection
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

    async def __aenter__(self) -> "HttpLoadClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        if self._closed:
            raise RuntimeError("HttpLoadClient is closed")
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        connection = await self._pool.get()
        try:
            if connection is None:
                connection = await asyncio.open_connection(self._host, self._port)
            reader, writer = connection
            writer.write(head + body)
            await writer.drain()
            status, document = await self._read_response(reader)
        except BaseException:
            # Connection state is unknown; drop it and free the slot.
            if connection is not None:
                connection[1].close()
            self._pool.put_nowait(None)
            raise
        self._pool.put_nowait(connection)
        if status == 200:
            return document
        if status == 429:
            lane = document.get("lane", "unknown")
            retry_after = float(document.get("retry_after_s", 0.001))
            raise AdmissionError(lane, retry_after, "server returned 429")
        raise RuntimeError(f"HTTP {status} from {method} {path}: {document}")

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise RuntimeError(f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        document = json.loads(body.decode("utf-8")) if body else {}
        return status, document
