"""Request-level metrics for the serving tier.

Percentile tracking rides the repo's own
:class:`~repro.ml.sketch.MergingQuantileSketch` (whole-stream mode)
instead of keeping every latency sample: a serving process answering
millions of requests must account for its tail in O(compressed
blocks) memory, and the sketch's rank error is far below the
run-to-run noise of any latency measurement.

Everything here is synchronous and lock-free on purpose: recorders
are only touched from the event-loop thread, so plain attributes are
safe and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ml.sketch import MergingQuantileSketch

__all__ = ["BatchStats", "LatencyRecorder"]

#: The percentiles every latency summary reports, as (label, q) pairs.
REPORTED_PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50_ms", 0.50),
    ("p95_ms", 0.95),
    ("p99_ms", 0.99),
)


class LatencyRecorder:
    """Streaming latency percentiles, recorded in seconds, read in ms."""

    def __init__(self) -> None:
        self._sketch = MergingQuantileSketch(window=None)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._sketch.update(seconds * 1000.0)
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile_ms(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        return float(self._sketch.quantile(q))

    def summary(self) -> dict:
        """The stats-endpoint projection: counts, mean and tail."""
        mean_ms = (self.total_seconds / self.count * 1000.0) if self.count else 0.0
        out = {"count": self.count, "mean_ms": mean_ms, "max_ms": self.max_seconds * 1000.0}
        for label, q in REPORTED_PERCENTILES:
            out[label] = self.quantile_ms(q)
        return out


@dataclass
class BatchStats:
    """Flush accounting for one microbatcher.

    ``n_size_flushes`` vs ``n_deadline_flushes`` is the observable
    split between "the batch filled up" and "the SLO deadline forced a
    partial batch out" -- the quantity the microbatch tests pin down.
    """

    n_flushes: int = 0
    n_items: int = 0
    n_size_flushes: int = 0
    n_deadline_flushes: int = 0
    max_batch: int = 0

    def record(self, batch_size: int, reason: str) -> None:
        self.n_flushes += 1
        self.n_items += batch_size
        if reason == "size":
            self.n_size_flushes += 1
        else:
            self.n_deadline_flushes += 1
        if batch_size > self.max_batch:
            self.max_batch = batch_size

    @property
    def mean_batch(self) -> float:
        return self.n_items / self.n_flushes if self.n_flushes else 0.0

    def summary(self) -> dict:
        return {
            "n_flushes": self.n_flushes,
            "n_items": self.n_items,
            "n_size_flushes": self.n_size_flushes,
            "n_deadline_flushes": self.n_deadline_flushes,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
        }
