"""Incremental (online) throttling-probability estimation.

:class:`~repro.core.throttling.EmpiricalThrottlingEstimator` answers
"what fraction of time points violate each SKU's capacity" by
materializing the full ``(n_skus, n_samples, n_dims)`` broadcast on
every call -- exact, but O(n_skus * n_samples * n_dims) per
evaluation.  Under continuous telemetry that cost is paid per *sample*
if recommendations must stay fresh, turning a linear stream into a
quadratic bill.

:class:`IncrementalThrottlingEstimator` maintains the same statistic
online: per-SKU running violation counts over a bounded sliding
window.  Each new sample costs O(n_skus * n_dims) -- evaluate the
violation predicate once against the capacity matrix, add the fresh
violation row, retire the aged-out one.  Because both estimators count
the same integer violations and divide by the same window length, the
incremental probabilities match the batch estimator *exactly* on
identical windows (integer counts are exact in float64 far beyond any
realistic window size), which the streaming test suite pins to 1e-12.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..catalog.models import SkuSpec
from ..telemetry.counters import PerfDimension
from ..telemetry.streaming import parse_sample
from ..telemetry.trace import PerformanceTrace
from .throttling import (
    ThrottlingEstimator,
    _violation_mask,
    demand_matrix,
    invert_latency,
)

__all__ = ["IncrementalThrottlingEstimator"]


class IncrementalThrottlingEstimator:
    """Per-SKU running violation counts over a sliding sample window.

    Unlike the stateless :class:`ThrottlingEstimator` family, this
    estimator is bound at construction to one candidate SKU set and
    one dimension tuple -- the configuration of a live assessment --
    and carries mutable window state between updates.

    Typical use::

        estimator = IncrementalThrottlingEstimator(skus, dimensions, window=1008)
        for sample in telemetry_feed:          # {dimension: value}
            estimator.update(sample)
            fresh = estimator.probabilities()  # O(n_skus), no re-scan

    Attributes:
        skus: Candidate SKUs, fixed for the estimator's lifetime.
        dimensions: Performance dimensions evaluated jointly.
        window: Sliding-window length in samples; ``None`` keeps the
            whole stream (running counts, no eviction).
    """

    def __init__(
        self,
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        window: int | None = None,
        iops_overrides: dict[str, float] | None = None,
    ) -> None:
        if not dimensions:
            raise ValueError("the estimator needs at least one dimension")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1 sample, got {window!r}")
        self.skus = tuple(skus)
        self.dimensions = tuple(dimensions)
        self.window = window
        # Same capacity construction as the batch estimators, so the
        # two agree bit-for-bit on the violation predicate.
        self._caps = ThrottlingEstimator._capacity_matrix(
            list(skus), self.dimensions, iops_overrides
        )
        self._iops_overrides = dict(iops_overrides) if iops_overrides else None
        self._invert = np.array([dim.lower_is_better for dim in self.dimensions])
        self._counts = np.zeros(len(self.skus), dtype=np.int64)
        self._ring = (
            np.zeros((window, len(self.skus)), dtype=bool) if window is not None else None
        )
        self._n_seen = 0

    @classmethod
    def from_trace(
        cls,
        trace: PerformanceTrace,
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...] | None = None,
        window: int | None = None,
        iops_overrides: dict[str, float] | None = None,
    ) -> "IncrementalThrottlingEstimator":
        """Seed an estimator from an existing trace's samples.

        The batch-ingestion path for warm starts: the trace's samples
        enter the window in chronological order, so the resulting
        state equals feeding them through :meth:`update` one by one.
        """
        dims = dimensions if dimensions is not None else trace.dimensions
        estimator = cls(skus, dims, window=window, iops_overrides=iops_overrides)
        estimator.ingest_trace(trace)
        return estimator

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, sample: Mapping[PerfDimension, float]) -> None:
        """Fold one aligned counter sample into the window.

        O(n_skus * n_dims): one violation-predicate evaluation against
        the capacity matrix plus a count add/retire -- no traversal of
        the sample history.

        Raises:
            KeyError: If a declared dimension is missing.
            ValueError: If any declared value is non-finite.
        """
        self.update_vector(parse_sample(sample, self.dimensions))

    def update_vector(self, raw: np.ndarray) -> None:
        """Fold one already-validated raw counter row into the window.

        The fast path for callers that parsed the sample themselves
        (the live loop validates once in its ring buffer and hands the
        row straight through).  ``raw`` must align with
        :attr:`dimensions` and contain finite, *uninverted* values.
        """
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (len(self.dimensions),):
            raise ValueError(
                f"expected {len(self.dimensions)} values, got shape {raw.shape}"
            )
        demand = np.where(self._invert, invert_latency(raw), raw)
        self._apply_row((demand[None, :] > self._caps).any(axis=1))

    def ingest_trace(self, trace: PerformanceTrace) -> None:
        """Fold a whole trace in chronological order (vectorized).

        Equivalent to feeding the samples through :meth:`update` one
        by one, but the dominant cases never drop to a Python loop:
        unbounded windows accumulate in one sum, and batches at least
        as long as the window replace the ring wholesale (everything
        older ages out anyway).
        """
        demands = demand_matrix(trace, self.dimensions)
        # Dimension-major kernel shared with the batch estimators: two
        # 2-D temps instead of the (n_samples, n_skus, n_dims) 3-D
        # broadcast, bit-identical comparisons.
        violated = _violation_mask(demands, self._caps).T
        n_rows = len(violated)
        if self._ring is None:
            self._counts += violated.sum(axis=0, dtype=np.int64)
            self._n_seen += n_rows
            return
        if n_rows >= self.window:
            tail = violated[-self.window :]
            start = self._n_seen + n_rows - self.window
            slots = np.arange(start, start + self.window) % self.window
            self._ring[slots] = tail
            self._counts = tail.sum(axis=0, dtype=np.int64)
            self._n_seen += n_rows
            return
        for row in violated:  # partial batch: merge with surviving state
            self._apply_row(row)

    @property
    def iops_overrides(self) -> dict[str, float] | None:
        """The per-SKU IOPS overrides folded into the capacity matrix."""
        return dict(self._iops_overrides) if self._iops_overrides else None

    def rebase_capacity(
        self,
        iops_overrides: dict[str, float] | None,
        trace: PerformanceTrace | None = None,
    ) -> None:
        """Replace the IOPS overrides and rebuild window state.

        The MI streaming-parity hook (paper Section 3.2 Step 2): the
        GP IOPS capacity is the planned file layout's summed disk
        limit, and the layout moves when the data footprint crosses a
        disk-size boundary.  Counted violations in the window were
        evaluated against the *old* capacities, so they cannot be
        patched in place; the caller supplies the current window
        (normally the live ring buffer's snapshot) and the estimator
        re-derives counts against the new capacity matrix in one
        vectorized pass -- an O(window) cost paid only when the layout
        actually changes.

        After the call the estimator matches a fresh
        ``from_trace(trace, ..., iops_overrides=...)`` construction
        exactly; ``n_seen`` restarts at the window length.

        Args:
            iops_overrides: The new per-SKU-name IOPS capacities
                (None clears every override).
            trace: The current assessment window to replay; omit only
                when no samples have been ingested yet.

        Raises:
            ValueError: If samples were ingested but no trace is
                given -- silently dropping the window would skew every
                subsequent estimate.
        """
        if trace is None and self._n_seen > 0:
            raise ValueError(
                "rebase_capacity needs the current window trace once samples "
                "have been ingested; the counted violations are stale under "
                "the new capacity matrix"
            )
        self._caps = ThrottlingEstimator._capacity_matrix(
            list(self.skus), self.dimensions, iops_overrides
        )
        self._iops_overrides = dict(iops_overrides) if iops_overrides else None
        self._counts[:] = 0
        if self._ring is not None:
            self._ring[:] = False
        self._n_seen = 0
        if trace is not None:
            self.ingest_trace(trace)

    def _apply_row(self, violated: np.ndarray) -> None:
        if self._ring is not None:
            slot = self._n_seen % self.window
            if self._n_seen >= self.window:
                self._counts -= self._ring[slot]
            self._ring[slot] = violated
        self._counts += violated
        self._n_seen += 1

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    @property
    def n_seen(self) -> int:
        """Samples ever ingested (including aged-out ones)."""
        return self._n_seen

    @property
    def n_window(self) -> int:
        """Samples currently inside the window."""
        if self.window is None:
            return self._n_seen
        return min(self._n_seen, self.window)

    def probabilities(self) -> np.ndarray:
        """Current per-SKU throttling probability, aligned with ``skus``.

        Exactly ``violations_in_window / n_window`` -- the statistic
        :class:`EmpiricalThrottlingEstimator` computes from scratch.

        Raises:
            ValueError: If no samples have been ingested yet.
        """
        if self.n_window == 0:
            raise ValueError("no samples ingested yet")
        return self._counts / self.n_window

    # ------------------------------------------------------------------
    # Snapshot / restore (worker handoff)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Picklable snapshot of the window state and capacity overrides.

        Configuration (SKU set, dimensions, window length) is not
        included: restore targets must be constructed with matching
        parameters.  Overrides *are* included, since they move at run
        time (:meth:`rebase_capacity`).
        """
        return {
            "n_seen": self._n_seen,
            "counts": self._counts.copy(),
            "ring": None if self._ring is None else self._ring.copy(),
            "iops_overrides": dict(self._iops_overrides)
            if self._iops_overrides
            else None,
        }

    def load_state(self, state: dict) -> None:
        """Adopt a :meth:`state_dict` snapshot; the inverse operation.

        Rebuilds the capacity matrix from the snapshot's overrides, so
        the restored estimator continues exactly where the source left
        off -- including mid-stream MI layout rebases.

        Raises:
            ValueError: If the snapshot's count/ring shapes disagree
                with this estimator's SKU set or window.
        """
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != self._counts.shape:
            raise ValueError(
                f"snapshot tracks {counts.shape[0]} SKUs; this estimator "
                f"tracks {self._counts.shape[0]}"
            )
        ring = state["ring"]
        if (ring is None) != (self._ring is None):
            raise ValueError(
                "snapshot and estimator disagree on windowing "
                "(bounded vs unbounded)"
            )
        if ring is not None:
            ring = np.asarray(ring, dtype=bool)
            if ring.shape != self._ring.shape:
                raise ValueError(
                    f"snapshot ring shape {ring.shape} does not match "
                    f"this estimator's {self._ring.shape}"
                )
        overrides = state["iops_overrides"]
        self._caps = ThrottlingEstimator._capacity_matrix(
            list(self.skus), self.dimensions, overrides
        )
        self._iops_overrides = dict(overrides) if overrides else None
        self._counts = counts.copy()
        self._ring = None if ring is None else ring.copy()
        self._n_seen = int(state["n_seen"])

    @staticmethod
    def state_arrays(state: dict, arrays: list[np.ndarray]) -> dict:
        """Flatten a :meth:`state_dict` into numpy payloads + skeleton.

        The counts vector and the (potentially multi-megabyte)
        violation ring land in ``arrays`` for the zero-copy handoff;
        the overrides dict stays pickled -- it is a handful of floats.
        :meth:`state_from_arrays` is the exact inverse.
        """
        base = len(arrays)
        arrays.append(np.asarray(state["counts"], dtype=np.int64))
        ring = state["ring"]
        if ring is not None:
            arrays.append(np.asarray(ring, dtype=bool))
        return {
            "n_seen": state["n_seen"],
            "has_ring": ring is not None,
            "iops_overrides": state["iops_overrides"],
            "base": base,
        }

    @staticmethod
    def state_from_arrays(skeleton: dict, arrays: list[np.ndarray]) -> dict:
        """Rebuild a :meth:`state_dict` from framed arrays (copies out)."""
        base = skeleton["base"]
        return {
            "n_seen": skeleton["n_seen"],
            "counts": np.array(arrays[base], dtype=np.int64),
            "ring": np.array(arrays[base + 1], dtype=bool)
            if skeleton["has_ring"]
            else None,
            "iops_overrides": skeleton["iops_overrides"],
        }

    def estimates_by_name(self) -> dict[str, float]:
        """``{sku_name: probability}`` convenience view for drift checks."""
        return {
            sku.name: probability
            for sku, probability in zip(self.skus, self.probabilities())
        }
