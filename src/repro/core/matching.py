"""Profile matching: from group membership to one optimal SKU.

Implements equations (3)-(6) of the paper.  For each customer group
``g`` the model learns the expected throttling probability at the
group's chosen SKUs,

    P_g = E_{n : g_n = g} [ P_n(SKU*_n) ]            (3)

and recommends, for a new customer ``n'`` in group ``g``, the SKU

    argmin_i | P_n'(SKU_i) - P_g |                   (4)
    subject to  P_n'(SKU_i) <= P_g                   (6)

i.e. the SKU whose throttling probability is closest to -- but not
worse than -- what similar migrated customers settled on.  When no
curve point satisfies the constraint (the whole curve throttles more
than the group target), the closest point overall is returned,
mirroring the deployed engine's always-recommend contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from .curve import CurvePoint, PricePerformanceCurve
from .profiler import GroupKey, group_key_to_label

__all__ = ["GroupObservation", "GroupStatistics", "GroupScoreModel"]


@dataclass(frozen=True)
class GroupObservation:
    """One migrated customer's contribution to the group statistics.

    Attributes:
        group_key: The customer's negotiability group.
        throttling_probability: ``P_n(SKU*_n)`` -- the throttling
            probability of the SKU the customer fixed, read off their
            own price-performance curve.
    """

    group_key: GroupKey
    throttling_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.throttling_probability <= 1.0:
            raise ValueError(
                f"throttling probability must be in [0, 1], "
                f"got {self.throttling_probability!r}"
            )


@dataclass(frozen=True)
class GroupStatistics:
    """Per-group summary of chosen-SKU throttling (paper Table 3).

    Attributes:
        p_mean: ``P_g`` -- mean throttling probability (equation (3)).
        p_std: Standard deviation of the members' probabilities.
        count: Number of customers in the group.
    """

    p_mean: float
    p_std: float
    count: int

    @property
    def score_mean(self) -> float:
        """Mean score ``1 - P`` (the "Average Score" column of Table 3)."""
        return 1.0 - self.p_mean

    @property
    def score_std(self) -> float:
        return self.p_std


@dataclass(frozen=True)
class GroupScoreModel:
    """Learned group targets plus the equation-(4)-(6) selector.

    Attributes:
        groups: Statistics per group key.
        fallback: Statistics pooled across all observations, used for
            groups never seen in training.
    """

    groups: Mapping[GroupKey, GroupStatistics]
    fallback: GroupStatistics

    @classmethod
    def fit(cls, observations: Iterable[GroupObservation]) -> "GroupScoreModel":
        """Estimate ``P_g`` per group from migrated-customer data.

        Raises:
            ValueError: If no observations are supplied.
        """
        by_group: dict[GroupKey, list[float]] = {}
        everything: list[float] = []
        for observation in observations:
            by_group.setdefault(observation.group_key, []).append(
                observation.throttling_probability
            )
            everything.append(observation.throttling_probability)
        if not everything:
            raise ValueError("cannot fit a group model from zero observations")
        groups = {
            key: GroupStatistics(
                p_mean=float(np.mean(values)),
                p_std=float(np.std(values)),
                count=len(values),
            )
            for key, values in by_group.items()
        }
        fallback = GroupStatistics(
            p_mean=float(np.mean(everything)),
            p_std=float(np.std(everything)),
            count=len(everything),
        )
        return cls(groups=groups, fallback=fallback)

    def statistics_for(self, group_key: GroupKey) -> GroupStatistics:
        """Group statistics, falling back to the pooled estimate."""
        return self.groups.get(group_key, self.fallback)

    def target_probability(self, group_key: GroupKey) -> float:
        """``P_g`` for the group (equation (3))."""
        return self.statistics_for(group_key).p_mean

    def recommend(
        self, curve: PricePerformanceCurve, group_key: GroupKey
    ) -> CurvePoint:
        """Pick the optimal SKU for a profiled customer (eqs. (4)-(6)).

        Scans the monotone curve for the point whose throttling
        probability is closest to the group target without exceeding
        it; ties resolve to the cheapest SKU.  If nothing satisfies the
        constraint, the overall closest point is returned.
        """
        target = self.target_probability(group_key)
        feasible_best: CurvePoint | None = None
        feasible_gap = float("inf")
        overall_best = curve.points[0]
        overall_gap = float("inf")
        for point in curve.points:
            # Selection deliberately runs in monotone score space, NOT
            # raw throttling_probability (which training and reporting
            # use): a lifted point's 1 - score is an exact float copy
            # of its cheaper dominator's, so it ties and loses to the
            # cheaper SKU -- the paper's guarantee that customers
            # cannot be steered to a more expensive, less performant
            # target.  Raw-probability selection would let a dominated
            # point win on gap alone.
            probability = 1.0 - point.score
            gap = abs(probability - target)
            if gap < overall_gap - 1e-12:
                overall_gap = gap
                overall_best = point
            if probability <= target + 1e-12 and gap < feasible_gap - 1e-12:
                feasible_gap = gap
                feasible_best = point
        return feasible_best if feasible_best is not None else overall_best

    def describe(self) -> str:
        """Table-3-style rendering of the learned group scores."""
        lines = ["group  count  avg_score  (std)"]
        for key in sorted(self.groups):
            stats = self.groups[key]
            lines.append(
                f"{group_key_to_label(key):>5}  {stats.count:>5}  "
                f"{stats.score_mean:>9.4f}  ({stats.score_std:.3f})"
            )
        return "\n".join(lines)
