"""Customer Profiler: negotiability vectors and customer groups.

The second Doppler module (paper Figure 3 and Section 3.3).  Each
customer's counter matrix is summarized into a per-dimension
negotiability vector; customers sharing a vector form a group.  The
deployed engine groups by "straightforward enumeration" of the binary
vector -- 2^4 = 16 groups for SQL DB (CPU, memory, IOPS, log rate) and
2^3 = 8 for SQL MI (CPU, memory, IOPS).  Generic k-means and
hierarchical clustering over the continuous feature vectors are kept
as the "standard ML clustering" alternatives the paper tested.

Convention: following paper Table 3, a group key component of ``0``
denotes *negotiable* and ``1`` denotes *non-negotiable*.  (Section
5.2.1's prose uses the opposite encoding in one example; Table 3 is
the normative source because the group scores depend on it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Mapping, Sequence

import numpy as np

from ..ml.hierarchical import agglomerative
from ..ml.kmeans import kmeans
from ..telemetry.counters import PerfDimension
from ..telemetry.streaming import StreamingSeriesStats
from ..telemetry.trace import PerformanceTrace
from .negotiability import NegotiabilitySummarizer, ThresholdingSummarizer

__all__ = ["CustomerProfile", "CustomerProfiler", "group_key_to_label"]

GroupKey = tuple[int, ...]


def group_key_to_label(key: GroupKey) -> str:
    """Readable group label, e.g. ``(0, 1, 0)`` -> ``"010"``."""
    return "".join(str(bit) for bit in key)


@dataclass(frozen=True)
class CustomerProfile:
    """One customer's profiling outcome.

    Attributes:
        entity_id: The profiled workload.
        dimensions: Profiled dimensions, in group-key order.
        negotiable: Per-dimension negotiability decision.
        features: Concatenated continuous summarizer features.
        group_key: Enumeration group key; 0 = negotiable (Table 3).
    """

    entity_id: str
    dimensions: tuple[PerfDimension, ...]
    negotiable: tuple[bool, ...]
    features: np.ndarray
    group_key: GroupKey

    @property
    def group_label(self) -> str:
        return group_key_to_label(self.group_key)

    def negotiable_dimensions(self) -> tuple[PerfDimension, ...]:
        return tuple(
            dim for dim, flag in zip(self.dimensions, self.negotiable) if flag
        )

    def describe(self) -> str:
        parts = [
            f"{dim.name}={'negotiable' if flag else 'non-negotiable'}"
            for dim, flag in zip(self.dimensions, self.negotiable)
        ]
        return f"group {self.group_label}: " + ", ".join(parts)


@dataclass(frozen=True)
class CustomerProfiler:
    """Profiles workloads into negotiability groups.

    Attributes:
        dimensions: Dimensions to summarize; use
            :data:`~repro.telemetry.counters.PROFILING_DB_DIMENSIONS`
            for DB and
            :data:`~repro.telemetry.counters.PROFILING_MI_DIMENSIONS`
            for MI.
        summarizer: Negotiability strategy; defaults to the deployed
            thresholding algorithm.
    """

    dimensions: tuple[PerfDimension, ...]
    summarizer: NegotiabilitySummarizer = field(default_factory=ThresholdingSummarizer)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("profiler needs at least one dimension")

    @property
    def n_groups(self) -> int:
        """Number of enumeration groups (2^n_dimensions)."""
        return 2 ** len(self.dimensions)

    def profile(self, trace: PerformanceTrace) -> CustomerProfile:
        """Summarize one trace into its negotiability profile.

        Raises:
            KeyError: If the trace lacks one of the profiled
                dimensions.
        """
        negotiable = []
        features = []
        for dim in self.dimensions:
            dim_features, dim_negotiable = self.summarizer.summarize(trace[dim])
            negotiable.append(dim_negotiable)
            features.append(dim_features)
        key = tuple(0 if flag else 1 for flag in negotiable)
        return CustomerProfile(
            entity_id=trace.entity_id,
            dimensions=self.dimensions,
            negotiable=tuple(negotiable),
            features=np.concatenate(features),
            group_key=key,
        )

    def profile_streaming(
        self,
        stats_by_dimension: Mapping[PerfDimension, StreamingSeriesStats],
        entity_id: str = "stream",
    ) -> CustomerProfile:
        """Profile from incremental window state instead of a trace.

        The O(1)-per-refresh profiling path of the live recommender:
        each profiled dimension's summary comes from a
        :class:`~repro.telemetry.streaming.StreamingSeriesStats`
        maintained sample-by-sample, so no counter window is
        re-scanned.  Accuracy follows the summarizer's
        ``summarize_streaming`` contract (exact for the AUC, outlier
        and STL summarizers, sketch rank error for thresholding).

        Raises:
            KeyError: If a profiled dimension has no streaming stats.
            NotImplementedError: If the summarizer has no streaming
                evaluation (``supports_streaming`` is False).
        """
        negotiable = []
        features = []
        for dim in self.dimensions:
            try:
                stats = stats_by_dimension[dim]
            except KeyError:
                raise KeyError(
                    f"no streaming stats for profiled dimension {dim.name}; "
                    f"available: {[d.name for d in stats_by_dimension]}"
                ) from None
            dim_features, dim_negotiable = self.summarizer.summarize_streaming(stats)
            negotiable.append(dim_negotiable)
            features.append(dim_features)
        key = tuple(0 if flag else 1 for flag in negotiable)
        return CustomerProfile(
            entity_id=entity_id,
            dimensions=self.dimensions,
            negotiable=tuple(negotiable),
            features=np.concatenate(features),
            group_key=key,
        )

    def profile_batch(
        self, traces: Sequence[PerformanceTrace]
    ) -> list[CustomerProfile]:
        """Profile many traces in one summarizer broadcast per dimension.

        The columnar tail of the fleet fit path: traces whose profiled
        windows have identical lengths stack into one
        ``(n_traces, n_samples)`` matrix per dimension and run through
        the summarizer's batched evaluation
        (``summarize_batch``, advertised via ``supports_batch``) --
        byte-identical features and decisions to per-trace
        :meth:`profile` calls, without the per-record series/summary
        dispatch overhead.  Mixed-length populations split into
        same-shape groups; summarizers without a batched evaluation
        (STL today -- thresholding, the outlier share and all three
        AUC strategies batch) fall back to the per-trace loop.

        Returns:
            Profiles aligned with ``traces``.

        Raises:
            KeyError: If any trace lacks a profiled dimension.
        """
        traces = list(traces)
        if not getattr(self.summarizer, "supports_batch", False):
            return [self.profile(trace) for trace in traces]
        profiles: list[CustomerProfile | None] = [None] * len(traces)
        groups: dict[tuple[int, ...], list[int]] = {}
        for index, trace in enumerate(traces):
            shape = tuple(len(trace[dim]) for dim in self.dimensions)
            groups.setdefault(shape, []).append(index)
        for indices in groups.values():
            features_by_dim = []
            negotiable_by_dim = []
            for dim in self.dimensions:
                matrix = np.stack([traces[index][dim].values for index in indices])
                dim_features, dim_negotiable = self.summarizer.summarize_batch(matrix)
                features_by_dim.append(dim_features)
                negotiable_by_dim.append(dim_negotiable)
            for row, index in enumerate(indices):
                negotiable = tuple(bool(flags[row]) for flags in negotiable_by_dim)
                key = tuple(0 if flag else 1 for flag in negotiable)
                profiles[index] = CustomerProfile(
                    entity_id=traces[index].entity_id,
                    dimensions=self.dimensions,
                    negotiable=negotiable,
                    features=np.concatenate(
                        [features[row] for features in features_by_dim]
                    ),
                    group_key=key,
                )
        return profiles  # type: ignore[return-value]  # every slot filled above

    def feature_matrix(self, traces: Iterable[PerformanceTrace]) -> np.ndarray:
        """Stack continuous profiles into an ``(n_customers, n_features)`` matrix."""
        rows = [self.profile(trace).features for trace in traces]
        if not rows:
            raise ValueError("feature matrix needs at least one trace")
        return np.vstack(rows)

    def cluster(
        self,
        traces: Sequence[PerformanceTrace],
        method: Literal["kmeans", "hierarchical", "enumeration"] = "enumeration",
        n_clusters: int | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Assign a cluster label to every trace.

        Args:
            traces: Workloads to cluster.
            method: ``enumeration`` (the deployed strategy), or the
                generic ``kmeans`` / ``hierarchical`` alternatives over
                the continuous features.
            n_clusters: Cluster count for the generic methods; defaults
                to the enumeration group count (capped at the number
                of traces).
            rng: Seed or generator for k-means.

        Returns:
            Integer labels, one per trace.  For ``enumeration`` the
            label is the group key read as a binary number, so labels
            are comparable across calls.
        """
        if not traces:
            raise ValueError("clustering needs at least one trace")
        if method == "enumeration":
            labels = []
            for trace in traces:
                key = self.profile(trace).group_key
                labels.append(int("".join(map(str, key)), 2))
            return np.asarray(labels, dtype=int)
        matrix = self.feature_matrix(traces)
        k = n_clusters if n_clusters is not None else min(self.n_groups, len(traces))
        if method == "kmeans":
            return kmeans(matrix, k=k, rng=rng).labels
        if method == "hierarchical":
            return agglomerative(matrix, n_clusters=k).labels
        raise ValueError(f"unknown clustering method {method!r}")
