"""Confidence score via bootstrapping (paper Section 3.4, Figure 7).

The recommendation is sensitive to the collection window, so Doppler
surfaces a secondary metric: re-run the full recommendation on
bootstrapped subsets of the counter data and report the fraction of
runs that return the same SKU as the original.  Stable utilization
yields high confidence; erratic or too-short histories yield low
confidence, which DMA uses as a guardrail to request a longer
collection period (at least one week, per Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from ..ml.bootstrap import block_bootstrap_indices, bootstrap_indices, resolve_rng
from ..telemetry.trace import PerformanceTrace

__all__ = ["ConfidenceResult", "confidence_score"]

#: A recommender: trace in, recommended SKU name out.
Recommender = Callable[[PerformanceTrace], str]


@dataclass(frozen=True)
class ConfidenceResult:
    """Outcome of the bootstrap confidence computation.

    Attributes:
        score: Fraction of bootstrap runs agreeing with the original
            recommendation, in [0, 1].
        original_sku: Recommendation on the full trace.
        votes: SKU name -> number of bootstrap runs recommending it.
        n_rounds: Number of bootstrap rounds executed.
    """

    score: float
    original_sku: str
    votes: dict[str, int]
    n_rounds: int

    @property
    def is_confident(self) -> bool:
        """The DMA guardrail: below 0.7 the tool suggests collecting
        more data before trusting the recommendation."""
        return self.score >= 0.7


def confidence_score(
    trace: PerformanceTrace,
    recommender: Recommender,
    n_rounds: int = 20,
    mode: Literal["block", "iid"] = "block",
    window_samples: int | None = None,
    sample_fraction: float = 0.8,
    rng: int | np.random.Generator | None = None,
) -> ConfidenceResult:
    """Bootstrap the trace and measure recommendation stability.

    Args:
        trace: Full customer performance history.
        recommender: The end-to-end recommendation function to probe
            (typically ``lambda t: engine.recommend(t, dep).sku.name``).
        n_rounds: Bootstrap repetitions; the paper's figures use a
            handful of rounds per window size.
        mode: ``block`` draws one contiguous random window per round
            (the Figure-10 "window size" experiment); ``iid`` resamples
            time points with replacement.
        window_samples: Window length for ``block`` mode; defaults to
            half the trace.
        sample_fraction: Resample size for ``iid`` mode.
        rng: Seed or generator.

    Returns:
        The :class:`ConfidenceResult`; ``score`` is the proportion of
        rounds matching the full-trace recommendation (paper
        Section 3.4).
    """
    generator = resolve_rng(rng)
    original = recommender(trace)
    n = trace.n_samples
    if mode == "block":
        window = window_samples if window_samples is not None else max(1, n // 2)
        index_stream = block_bootstrap_indices(n, n_rounds, window=window, rng=generator)
    elif mode == "iid":
        index_stream = bootstrap_indices(
            n, n_rounds, rng=generator, sample_fraction=sample_fraction
        )
    else:
        raise ValueError(f"unknown bootstrap mode {mode!r}")

    votes: dict[str, int] = {}
    agreements = 0
    rounds = 0
    for indices in index_stream:
        choice = recommender(trace.subsample(indices))
        votes[choice] = votes.get(choice, 0) + 1
        if choice == original:
            agreements += 1
        rounds += 1
    return ConfidenceResult(
        score=agreements / rounds,
        original_sku=original,
        votes=votes,
        n_rounds=rounds,
    )
