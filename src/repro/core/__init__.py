"""Doppler core: the paper's primary contribution.

Price-performance modelling (throttling probabilities, monotone
curves, MI storage tiering), curve heuristics, customer profiling
(negotiability summarizers and grouping), profile matching
(equations (3)-(6)), bootstrap confidence scores, the naive baseline
and the :class:`DopplerEngine` facade.
"""

from .baseline import BaselineStrategy
from .confidence import ConfidenceResult, Recommender, confidence_score
from .curve import CurvePoint, CurveShape, PricePerformanceCurve
from .engine import DopplerEngine
from .heuristics import (
    DEFAULT_EPSILON,
    DEFAULT_GAMMA,
    HeuristicChoice,
    largest_performance_increase,
    largest_slope,
    performance_threshold,
)
from .incremental import IncrementalThrottlingEstimator
from .matching import GroupObservation, GroupScoreModel, GroupStatistics
from .negotiability import (
    ALL_SUMMARIZERS,
    CombinedSummarizer,
    MaxAucSummarizer,
    MinMaxAucSummarizer,
    NegotiabilitySummarizer,
    OutlierSummarizer,
    StlSummarizer,
    ThresholdingSummarizer,
)
from .persistence import (
    dump_group_model_json,
    group_model_from_dict,
    group_model_to_dict,
    load_group_model_json,
)
from .ppm import MiStoragePlan, PricePerformanceModeler
from .profiler import CustomerProfile, CustomerProfiler, group_key_to_label
from .throttling import (
    DEFAULT_KERNEL_MEMORY_CAP_MB,
    CopulaThrottlingEstimator,
    EmpiricalThrottlingEstimator,
    KdeThrottlingEstimator,
    ThrottlingEstimator,
    batch_violation_counts,
    capacity_matrix,
    capacity_vector,
    demand_matrix,
    violation_counts,
)
from .types import CloudCustomerRecord, DopplerRecommendation, OverProvisionReport

__all__ = [
    "BaselineStrategy",
    "ConfidenceResult",
    "Recommender",
    "confidence_score",
    "CurvePoint",
    "CurveShape",
    "PricePerformanceCurve",
    "DopplerEngine",
    "DEFAULT_EPSILON",
    "DEFAULT_GAMMA",
    "HeuristicChoice",
    "largest_performance_increase",
    "largest_slope",
    "performance_threshold",
    "GroupObservation",
    "GroupScoreModel",
    "GroupStatistics",
    "ALL_SUMMARIZERS",
    "CombinedSummarizer",
    "MaxAucSummarizer",
    "MinMaxAucSummarizer",
    "NegotiabilitySummarizer",
    "OutlierSummarizer",
    "StlSummarizer",
    "ThresholdingSummarizer",
    "dump_group_model_json",
    "group_model_from_dict",
    "group_model_to_dict",
    "load_group_model_json",
    "MiStoragePlan",
    "PricePerformanceModeler",
    "CustomerProfile",
    "CustomerProfiler",
    "group_key_to_label",
    "CopulaThrottlingEstimator",
    "EmpiricalThrottlingEstimator",
    "IncrementalThrottlingEstimator",
    "KdeThrottlingEstimator",
    "ThrottlingEstimator",
    "DEFAULT_KERNEL_MEMORY_CAP_MB",
    "batch_violation_counts",
    "capacity_matrix",
    "capacity_vector",
    "demand_matrix",
    "violation_counts",
    "CloudCustomerRecord",
    "DopplerRecommendation",
    "OverProvisionReport",
]
