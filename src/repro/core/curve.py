"""Price-performance curves (paper Section 3.2, Figures 4, 5, 8).

A price-performance curve relates the monthly price of every relevant
SKU to its *score* -- one minus the throttling probability -- giving
the customer a personalized rank of cloud targets.  The paper enforces
monotonicity "so that customers cannot select SKUs that are more
expensive and less performant", and classifies curves into three
typical shapes (Section 5.1): *flat* (every SKU already satisfies the
workload), *simple* (a clean 0 %/100 % bifurcation) and *complex* (a
genuine ranking across many throttling levels).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Sequence

import numpy as np

from ..catalog.models import SkuSpec

__all__ = ["CurvePoint", "CurveShape", "PricePerformanceCurve"]

#: Scores within this tolerance of the extremes count as exactly 0/1
#: for shape classification.
_SHAPE_TOLERANCE = 0.005


class CurveShape(enum.Enum):
    """The three typical price-performance curve shapes (Section 5.1)."""

    FLAT = "flat"
    SIMPLE = "simple"
    COMPLEX = "complex"


class CurvePoint(NamedTuple):
    """One SKU's position on a price-performance curve.

    A named tuple rather than a dataclass: fleet-scale passes create
    hundreds of points per customer, and tuple construction is the
    cheapest immutable record Python offers.

    Attributes:
        sku: The cloud target.
        monthly_price: Monthly subscription cost (x axis).
        throttling_probability: Raw estimated ``P_n(SKU_i)``.
        score: Monotonicity-adjusted performance score ``1 - P``
            (y axis).  May exceed ``1 - throttling_probability`` when
            the running-max adjustment lifted a point dominated by a
            cheaper, better SKU.
    """

    sku: SkuSpec
    monthly_price: float
    throttling_probability: float
    score: float


@dataclass(frozen=True)
class PricePerformanceCurve:
    """A monotone price-performance ranking of candidate SKUs.

    Attributes:
        points: Curve points sorted by monthly price ascending; the
            ``score`` field is monotone non-decreasing.
        entity_id: The assessed workload's identifier.
    """

    points: tuple[CurvePoint, ...]
    entity_id: str = "unnamed"

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a price-performance curve needs at least one point")
        prices = [point.monthly_price for point in self.points]
        if any(b < a for a, b in zip(prices, prices[1:])):
            raise ValueError("curve points must be sorted by price ascending")
        scores = [point.score for point in self.points]
        if any(b < a - 1e-12 for a, b in zip(scores, scores[1:])):
            raise ValueError("curve scores must be monotone non-decreasing")

    @classmethod
    def from_probabilities(
        cls,
        skus: list[SkuSpec],
        probabilities: np.ndarray,
        entity_id: str = "unnamed",
    ) -> "PricePerformanceCurve":
        """Build a curve from raw throttling probabilities.

        SKUs are sorted by price and the score is made monotone with a
        running maximum of ``1 - P`` (the paper's monotonicity
        enforcement): a SKU can never be ranked below a cheaper SKU
        that throttles less.

        Args:
            skus: Candidate SKUs in any order.
            probabilities: ``P_n(SKU_i)`` aligned with ``skus``.
            entity_id: Workload identifier for reports.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (len(skus),):
            raise ValueError(
                f"expected {len(skus)} probabilities, got shape {probabilities.shape}"
            )
        if probabilities.size and (
            probabilities.min() < -1e-9 or probabilities.max() > 1.0 + 1e-9
        ):
            raise ValueError("throttling probabilities must lie in [0, 1]")
        prices = np.array([sku.monthly_price for sku in skus])
        vcores = np.array([sku.vcores for sku in skus])
        # Stable (price, vcores) ordering; lexsort keys are applied
        # last-key-primary and each pass is stable, so ties preserve
        # input order exactly like sorted() with a key tuple.
        order = np.lexsort((vcores, prices))
        raw = np.clip(probabilities[order], 0.0, 1.0)
        scores = np.maximum.accumulate(1.0 - raw)
        points = tuple(
            CurvePoint(
                sku=skus[index],
                monthly_price=float(prices[index]),
                throttling_probability=float(raw[rank]),
                score=float(scores[rank]),
            )
            for rank, index in enumerate(order)
        )
        return cls(points=points, entity_id=entity_id)

    @classmethod
    def from_price_ordered(
        cls,
        skus: Sequence[SkuSpec],
        monthly_prices: Sequence[float],
        probabilities: np.ndarray,
        entity_id: str = "unnamed",
    ) -> "PricePerformanceCurve":
        """Trusted fast constructor for already-price-ordered SKUs.

        The columnar fleet kernel's assembly path: the caller
        guarantees ``skus`` are sorted by (monthly price, vCores) --
        catalog order is -- and supplies the precomputed monthly
        prices, so the per-curve sort and per-point price property
        lookups of :meth:`from_probabilities` disappear.  Produces
        bit-identical curves to :meth:`from_probabilities` for such
        input (same clip, same running-max), and skips re-validating
        the ordering the caller established (``__post_init__``-less
        construction); misuse with unsorted SKUs is on the caller.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.size and (
            probabilities.min() < -1e-9 or probabilities.max() > 1.0 + 1e-9
        ):
            raise ValueError("throttling probabilities must lie in [0, 1]")
        raw = np.clip(probabilities, 0.0, 1.0)
        scores = np.maximum.accumulate(1.0 - raw)
        points = tuple(
            CurvePoint(sku, price, probability, score)
            for sku, price, probability, score in zip(
                skus, monthly_prices, raw.tolist(), scores.tolist()
            )
        )
        if not points:
            raise ValueError("a price-performance curve needs at least one point")
        curve = object.__new__(cls)
        object.__setattr__(curve, "points", points)
        object.__setattr__(curve, "entity_id", entity_id)
        return curve

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def scores(self) -> np.ndarray:
        return np.array([point.score for point in self.points])

    def prices(self) -> np.ndarray:
        return np.array([point.monthly_price for point in self.points])

    def point_for(self, sku_name: str) -> CurvePoint:
        """The curve point of a given SKU.

        Raises:
            KeyError: If the SKU is not on this curve.
        """
        for point in self.points:
            if point.sku.name == sku_name:
                return point
        raise KeyError(sku_name)

    def shape(self) -> CurveShape:
        """Classify into flat / simple / complex (paper Section 5.1)."""
        scores = self.scores()
        all_full = np.all(scores >= 1.0 - _SHAPE_TOLERANCE)
        if all_full:
            return CurveShape.FLAT
        at_extremes = np.all(
            (scores >= 1.0 - _SHAPE_TOLERANCE) | (scores <= _SHAPE_TOLERANCE)
        )
        if at_extremes and scores.max() >= 1.0 - _SHAPE_TOLERANCE:
            return CurveShape.SIMPLE
        return CurveShape.COMPLEX

    # ------------------------------------------------------------------
    # Selection helpers
    # ------------------------------------------------------------------
    def cheapest_full_performance(self) -> CurvePoint | None:
        """Cheapest point with (near-)zero throttling, or None."""
        for point in self.points:
            if point.score >= 1.0 - _SHAPE_TOLERANCE:
                return point
        return None

    def cheapest_at_least(self, score: float) -> CurvePoint | None:
        """Cheapest point whose score reaches ``score``, or None."""
        for point in self.points:
            if point.score >= score:
                return point
        return None

    def position_of(self, sku_name: str) -> int:
        """Rank of a SKU on the curve (0 = cheapest).

        Raises:
            KeyError: If the SKU is not on this curve.
        """
        for index, point in enumerate(self.points):
            if point.sku.name == sku_name:
                return index
        raise KeyError(sku_name)

    def render_ascii(self, width: int = 60, height: int = 12) -> str:
        """Plain-text rendering for the resource-use dashboard."""
        prices = self.prices()
        scores = self.scores()
        lo, hi = prices.min(), prices.max()
        span = hi - lo if hi > lo else 1.0
        grid = [[" "] * width for _ in range(height)]
        for price, score in zip(prices, scores):
            x = int((price - lo) / span * (width - 1))
            y = int((1.0 - score) * (height - 1))
            grid[y][x] = "o"
        lines = ["1.0 |" + "".join(grid[0])]
        lines += ["    |" + "".join(row) for row in grid[1:-1]]
        lines.append("0.0 |" + "".join(grid[-1]))
        lines.append("    +" + "-" * width)
        lines.append(f"     ${lo:,.0f}/mo{' ' * max(1, width - 20)}${hi:,.0f}/mo")
        return "\n".join(lines)
