"""Curve-shape heuristics for picking one SKU (paper Section 3.2).

Before the profiling module, the paper explored three heuristics that
read the recommendation straight off the price-performance curve:

* *Largest Performance Increase* -- the SKU after which further spend
  buys no meaningful score gain (gain <= epsilon);
* *Largest Slope* -- the SKU at the steepest score-per-dollar step;
* *Performance Threshold* -- the first SKU whose score reaches gamma.

The paper demonstrates on Figure 5 that the three disagree on complex
curves and none reliably matches the expert-vetted choice; they are
retained here both as selectable strategies and as the foil for the
profiling-based selection in the Figure-5 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .curve import CurvePoint, PricePerformanceCurve

__all__ = [
    "largest_performance_increase",
    "largest_slope",
    "performance_threshold",
    "HeuristicChoice",
]

#: Default epsilon of the largest-performance-increase rule (paper: .001).
DEFAULT_EPSILON = 0.001

#: Default gamma of the performance-threshold rule (paper example: 95 %).
DEFAULT_GAMMA = 0.95


@dataclass(frozen=True)
class HeuristicChoice:
    """A heuristic's pick with its provenance for explanations."""

    point: CurvePoint
    heuristic: str
    detail: str

    @property
    def sku_name(self) -> str:
        return self.point.sku.name


def largest_performance_increase(
    curve: PricePerformanceCurve, epsilon: float = DEFAULT_EPSILON
) -> HeuristicChoice:
    """Pick the SKU after which score gains become insignificant.

    Walks the curve in price order and selects the point following the
    last consecutive pair whose score difference exceeds ``epsilon``
    (the paper's ``P(SKU_i) - P(SKU_{i-1}) <= eps`` stopping rule).
    On a flat curve this is the cheapest SKU.
    """
    points = curve.points
    chosen = points[0]
    for previous, current in zip(points, points[1:]):
        if current.score - previous.score > epsilon:
            chosen = current
    return HeuristicChoice(
        point=chosen,
        heuristic="largest_performance_increase",
        detail=f"last point with score gain > {epsilon:g}",
    )


def largest_slope(curve: PricePerformanceCurve) -> HeuristicChoice:
    """Pick the SKU at the steepest score-per-dollar increase.

    Maximizes ``(score_i - score_{i-1}) / (price_i - price_{i-1})``
    over consecutive curve points.  Degenerate single-point curves
    return that point.
    """
    points = curve.points
    chosen = points[0]
    best_slope = -1.0
    for previous, current in zip(points, points[1:]):
        price_step = current.monthly_price - previous.monthly_price
        if price_step <= 0:
            continue
        slope = (current.score - previous.score) / price_step
        if slope > best_slope:
            best_slope = slope
            chosen = current
    return HeuristicChoice(
        point=chosen,
        heuristic="largest_slope",
        detail=f"max score/price slope = {max(best_slope, 0.0):.3g} per $",
    )


def performance_threshold(
    curve: PricePerformanceCurve, gamma: float = DEFAULT_GAMMA
) -> HeuristicChoice:
    """Pick the first (cheapest) SKU whose score reaches ``gamma``.

    Falls back to the best-scoring point when nothing reaches the
    threshold (so that a recommendation is always produced).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma!r}")
    point = curve.cheapest_at_least(gamma)
    if point is None:
        point = curve.points[-1]
        detail = f"no SKU reaches score {gamma:g}; best available"
    else:
        detail = f"first SKU with score >= {gamma:g}"
    return HeuristicChoice(point=point, heuristic="performance_threshold", detail=detail)
