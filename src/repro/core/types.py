"""Shared record types of the Doppler engine's public API."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.models import DeploymentType, SkuSpec
from ..telemetry.trace import PerformanceTrace
from .confidence import ConfidenceResult
from .curve import PricePerformanceCurve
from .profiler import CustomerProfile

__all__ = [
    "CloudCustomerRecord",
    "DopplerRecommendation",
    "OverProvisionReport",
]


@dataclass(frozen=True)
class CloudCustomerRecord:
    """One successfully migrated Azure customer used for training.

    The paper's training population: customers "that have fixed their
    SKU choice for at least 40 days", whose fixed SKU is taken as the
    optimal ground truth (Section 5.2).

    Attributes:
        trace: The customer's cloud performance history.
        deployment: Their deployment type.
        chosen_sku_name: Name of the SKU they fixed.
        days_on_sku: How long the SKU has been fixed; records under
            40 days are excluded from training by the engine.
    """

    trace: PerformanceTrace
    deployment: DeploymentType
    chosen_sku_name: str
    days_on_sku: float = 40.0

    @property
    def is_settled(self) -> bool:
        """The paper's >= 40-day retention filter."""
        return self.days_on_sku >= 40.0


@dataclass(frozen=True)
class DopplerRecommendation:
    """Full output of one Doppler assessment.

    Attributes:
        sku: The recommended cloud target.
        curve: The customer's price-performance curve (the
            interpretability artifact shown in the dashboard).
        profile: The customer's negotiability profile.
        target_probability: The group throttling target ``P_g`` the
            selection matched against.
        expected_throttling: The recommended SKU's own throttling
            probability on this workload.
        confidence: Optional bootstrap confidence result.
        strategy: Which selection path produced the SKU
            (``profile_match`` or a fallback heuristic name).
        notes: Human-readable explanation lines.
    """

    sku: SkuSpec
    curve: PricePerformanceCurve
    profile: CustomerProfile
    target_probability: float
    expected_throttling: float
    confidence: ConfidenceResult | None = None
    strategy: str = "profile_match"
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def monthly_price(self) -> float:
        return self.sku.monthly_price

    def explain(self) -> str:
        """Multi-line, customer-facing explanation of the choice."""
        lines = [
            f"Recommended SKU: {self.sku.describe()}",
            f"Workload profile: {self.profile.describe()}",
            (
                f"Expected throttling on this SKU: "
                f"{self.expected_throttling:.1%} (group target {self.target_probability:.1%})"
            ),
            f"Selection strategy: {self.strategy}",
        ]
        if self.confidence is not None:
            lines.append(
                f"Confidence: {self.confidence.score:.0%} over "
                f"{self.confidence.n_rounds} bootstrap runs"
                + ("" if self.confidence.is_confident else " -- collect more data")
            )
        lines.extend(self.notes)
        return "\n".join(lines)


@dataclass(frozen=True)
class OverProvisionReport:
    """Right-sizing assessment of an existing cloud customer.

    Attributes:
        current_sku: The SKU the customer is paying for.
        recommended_sku: The cheapest SKU meeting the workload at
            100 % (None when even the current SKU throttles).
        is_over_provisioned: Whether the customer sits materially past
            the cheapest full-performance point (>= 2 price steps, see
            DESIGN.md).
        utilization_ratio: Peak observed demand over current capacity
            on the binding CPU dimension.
        monthly_savings: Price delta current - recommended.
    """

    current_sku: SkuSpec
    recommended_sku: SkuSpec | None
    is_over_provisioned: bool
    utilization_ratio: float
    monthly_savings: float

    @property
    def annual_savings(self) -> float:
        return self.monthly_savings * 12.0
