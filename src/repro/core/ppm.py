"""Price-Performance Modeler (PPM) -- paper Section 3.2 and Figure 3.

The PPM is the first of Doppler's two modules.  It takes three inputs
-- the customer's performance counters, the SKU catalog and the
billing interface (already folded into each SKU's price) -- and
produces the price-performance curve.

For SQL DB targets it evaluates the full six-dimension throttling
probability directly.  For SQL MI it first runs the two-step
storage-tier procedure: plan the premium-disk file layout from the
data size, verify the layout covers 100 % of storage and >= 95 % of
the IOPS/throughput demand (else restrict the candidate set to
Business Critical), then build the instance-level curve with the
layout's summed IOPS as the GP IOPS limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..catalog.catalog import SkuCatalog
from ..catalog.models import DeploymentType, ServiceTier, SkuSpec
from ..catalog.storage import IOPS_THROUGHPUT_COVERAGE, FileLayout, plan_file_layout
from ..telemetry.counters import DB_DIMENSIONS, MI_DIMENSIONS, PerfDimension
from ..telemetry.trace import PerformanceTrace
from .curve import PricePerformanceCurve
from .throttling import (
    EmpiricalThrottlingEstimator,
    ThrottlingEstimator,
    capacity_matrix,
)

__all__ = ["PricePerformanceModeler", "MiStoragePlan", "gp_iops_overrides"]


def gp_iops_overrides(
    skus: Sequence[SkuSpec], plan: "MiStoragePlan"
) -> dict[str, float]:
    """Step-2 IOPS overrides: GP SKUs inherit the layout's summed limit.

    The single definition of the MI override policy (paper Section 3.2
    Step 2), shared by curve construction and the live recommender's
    drift-estimator sync -- the parity contract requires both to see
    identical capacities, so neither may encode the rule privately.
    """
    return {
        sku.name: plan.layout.total_iops
        for sku in skus
        if sku.tier is ServiceTier.GENERAL_PURPOSE
    }


def _no_storage_fit_message(footprint: float) -> str:
    """Shared error text for the storage-fit failure.

    One definition for the serial and columnar paths: fleet error
    results embed this string, and the determinism contract requires
    both paths to produce identical bytes.
    """
    return f"no candidate SKU can hold {footprint:.0f} GB of data"


class _DeploymentCurveState:
    """Precomputed per-deployment inputs of the columnar curve kernel.

    Built once per modeler and deployment: the candidate SKUs in
    catalog (price) order plus the vectorized per-SKU attributes that
    the batch path needs -- storage limits for the per-customer fit
    mask, the GP-tier mask for MI IOPS overrides, and a memo of
    capacity matrices per dimension tuple.
    """

    def __init__(self, skus: Sequence[SkuSpec]) -> None:
        self.skus: tuple[SkuSpec, ...] = tuple(skus)
        self.monthly_prices: tuple[float, ...] = tuple(
            sku.monthly_price for sku in self.skus
        )
        self.max_data_size_gb = np.array(
            [sku.limits.max_data_size_gb for sku in self.skus]
        )
        self.gp_mask = np.array(
            [sku.tier is ServiceTier.GENERAL_PURPOSE for sku in self.skus]
        )
        self.bc_mask = np.array(
            [sku.tier is ServiceTier.BUSINESS_CRITICAL for sku in self.skus]
        )
        self._caps_by_dims: dict[tuple[PerfDimension, ...], np.ndarray] = {}

    def caps_for(self, dimensions: tuple[PerfDimension, ...]) -> np.ndarray:
        """Capacity matrix over all candidates, memoized per dim tuple."""
        caps = self._caps_by_dims.get(dimensions)
        if caps is None:
            caps = capacity_matrix(list(self.skus), dimensions)
            caps.flags.writeable = False
            self._caps_by_dims[dimensions] = caps
        return caps

#: Quantile summarizing the IOPS/throughput demand checked in Step 1.
_STEP1_DEMAND_QUANTILE = 0.99

#: Assumed IO transfer size for converting IOPS into MiB/s when the
#: workload trace has no native throughput counter (8 KiB SQL pages).
_IO_TRANSFER_KIB = 8.0


@dataclass(frozen=True)
class MiStoragePlan:
    """Outcome of the MI Step-1 storage-tier determination.

    Attributes:
        layout: The planned premium-disk file layout.
        gp_allowed: Whether GP SKUs stay in the candidate set (the
            layout covered >= 95 % of IOPS and throughput demand).
        required_iops: IOPS demand checked against the layout.
        required_throughput_mibps: Throughput demand checked.
    """

    layout: FileLayout
    gp_allowed: bool
    required_iops: float
    required_throughput_mibps: float


@dataclass(frozen=True)
class PricePerformanceModeler:
    """Builds price-performance curves from counters and a catalog.

    Attributes:
        catalog: All candidate SKUs (both deployments; filtered per
            call).
        estimator: Joint throttling-probability estimator; defaults to
            the paper's non-parametric production estimator.
    """

    catalog: SkuCatalog
    estimator: ThrottlingEstimator = field(default_factory=EmpiricalThrottlingEstimator)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build_curve(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        file_sizes_gib: list[float] | None = None,
        mi_plan: "MiStoragePlan | None" = None,
    ) -> PricePerformanceCurve:
        """Produce the price-performance curve for one workload.

        Args:
            trace: Customer performance history.  DB curves use up to
                six dimensions, MI curves four (paper Section 3.2);
                dimensions absent from the trace are skipped.
            deployment: Target deployment type.
            file_sizes_gib: Explicit MI data-file sizes; default is a
                single file holding the observed data size.
            mi_plan: Optional precomputed Step-1 storage plan for this
                exact trace/file layout (callers that already planned
                -- e.g. the live recommender's MI override sync --
                pass it to avoid planning twice).  Ignored for DB.

        Returns:
            The monotone price-performance curve over every catalog
            SKU of the deployment that can hold the data.

        Raises:
            ValueError: If no SKU can accommodate the workload's
                storage footprint.
        """
        if deployment is DeploymentType.SQL_DB:
            return self._build_db_curve(trace)
        return self._build_mi_curve(trace, file_sizes_gib, plan=mi_plan)

    def build_curves_batch(
        self,
        traces: Sequence[PerformanceTrace],
        deployment: DeploymentType,
        file_sizes_gib: Sequence[Sequence[float] | None] | None = None,
    ) -> list[PricePerformanceCurve | Exception]:
        """Columnar batch counterpart of :meth:`build_curve`.

        Evaluates a whole fleet shard as stacked NumPy operations: the
        per-deployment capacity matrix is built once (memoized on the
        modeler), customers are grouped by their evaluated dimension
        tuple (and, for MI, by the planned file layout's IOPS
        override), each group's demand rows flow through one chunked
        broadcast, and the per-customer storage fit reduces to a
        vectorized mask over precomputed SKU storage limits.

        The results are byte-identical to calling :meth:`build_curve`
        per trace -- same probabilities (per-SKU estimates are
        independent of the candidate subset), same candidate order
        (catalog price order), same error types and messages in the
        same precedence.  Estimators without a columnar kernel (KDE,
        copula) transparently fall back to the serial path per trace.

        Args:
            traces: One trace per customer.
            deployment: Target deployment type, shared by the batch.
            file_sizes_gib: Optional per-customer MI file layouts,
                aligned with ``traces``.

        Returns:
            One entry per trace, aligned with the input: the built
            curve, or the exception :meth:`build_curve` would have
            raised for that trace (exceptions are returned, not
            raised, so one pathological customer cannot abort a fleet
            shard).
        """
        n_traces = len(traces)
        sizes_per_trace: Sequence[Sequence[float] | None]
        if file_sizes_gib is None:
            sizes_per_trace = [None] * n_traces
        elif len(file_sizes_gib) != n_traces:
            raise ValueError(
                f"expected {n_traces} file-size entries, got {len(file_sizes_gib)}"
            )
        else:
            sizes_per_trace = file_sizes_gib

        if not isinstance(self.estimator, EmpiricalThrottlingEstimator):
            return [
                self._build_one_guarded(trace, deployment, sizes)
                for trace, sizes in zip(traces, sizes_per_trace)
            ]

        results: list[PricePerformanceCurve | Exception | None] = [None] * n_traces
        state = self._deployment_state(deployment)
        base_dims = (
            DB_DIMENSIONS if deployment is DeploymentType.SQL_DB else MI_DIMENSIONS
        )
        fit_masks: list[np.ndarray | None] = [None] * n_traces
        groups: dict[tuple, list[int]] = {}
        for index, trace in enumerate(traces):
            try:
                dims = tuple(dim for dim in base_dims if dim in trace)
                if not dims:
                    raise ValueError(
                        f"trace has none of the {deployment.short_name} "
                        "performance dimensions"
                    )
                iops_override: float | None = None
                if deployment is DeploymentType.SQL_MI:
                    sizes = sizes_per_trace[index]
                    plan = self.plan_mi_storage(
                        trace, list(sizes) if sizes else None
                    )
                    iops_override = plan.layout.total_iops
                footprint = self._storage_footprint(trace)
                mask = state.max_data_size_gb >= footprint
                if not mask.any():
                    raise ValueError(_no_storage_fit_message(footprint))
                if deployment is DeploymentType.SQL_MI and not plan.gp_allowed:
                    mask = mask & state.bc_mask
                    if not mask.any():
                        raise ValueError("no MI SKU satisfies the storage requirement")
                fit_masks[index] = mask
                groups.setdefault((dims, iops_override), []).append(index)
            except Exception as exc:  # noqa: BLE001 - per-customer containment
                results[index] = exc

        for (dims, iops_override), indices in groups.items():
            caps = state.caps_for(dims)
            if iops_override is not None and PerfDimension.IOPS in dims:
                caps = caps.copy()
                caps[state.gp_mask, dims.index(PerfDimension.IOPS)] = float(
                    iops_override
                )
            probabilities = self.estimator.probabilities_batch_from_caps(
                [traces[i].demand_matrix(dims) for i in indices], caps
            )
            for row, index in zip(probabilities, indices):
                fitted = np.flatnonzero(fit_masks[index]).tolist()
                try:
                    # Candidate subsets inherit catalog (price) order,
                    # so the trusted sorted-input constructor applies.
                    results[index] = PricePerformanceCurve.from_price_ordered(
                        [state.skus[j] for j in fitted],
                        [state.monthly_prices[j] for j in fitted],
                        row[fitted],
                        entity_id=traces[index].entity_id,
                    )
                except Exception as exc:  # noqa: BLE001 - per-customer containment
                    results[index] = exc
        return results  # type: ignore[return-value]

    def _build_one_guarded(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        sizes: Sequence[float] | None,
    ) -> PricePerformanceCurve | Exception:
        try:
            return self.build_curve(
                trace, deployment, file_sizes_gib=list(sizes) if sizes else None
            )
        except Exception as exc:  # noqa: BLE001 - per-customer containment
            return exc

    # ------------------------------------------------------------------
    # Capacity-matrix sharing (fleet shared-memory data plane)
    # ------------------------------------------------------------------
    def capacity_matrix_for(
        self, deployment: DeploymentType, dimensions: tuple[PerfDimension, ...]
    ) -> np.ndarray:
        """The memoized candidate capacity matrix for a dimension tuple.

        Public accessor over the columnar state's memo, used by the
        fleet arena publisher to export capacities into shared memory
        exactly as the batch kernel would build them.
        """
        return self._deployment_state(deployment).caps_for(dimensions)

    def has_capacity_matrix(
        self, deployment: DeploymentType, dimensions: tuple[PerfDimension, ...]
    ) -> bool:
        """Whether the matrix for this tuple is already memoized."""
        return dimensions in self._deployment_state(deployment)._caps_by_dims

    def adopt_capacity_matrix(
        self,
        deployment: DeploymentType,
        dimensions: tuple[PerfDimension, ...],
        caps: np.ndarray,
    ) -> None:
        """Seed the capacity memo with a parent-published matrix.

        The zero-copy rehydration hook: a process-pool worker installs
        the capacity matrix its parent exported over shared memory so
        the batch kernel skips rebuilding it from the catalog.  The
        caller asserts the matrix equals what :meth:`caps_for` would
        compute (the publisher exports from a sibling modeler's memo,
        which guarantees it).  An already-memoized tuple is left
        untouched.

        Raises:
            ValueError: If the matrix shape does not match the
                deployment's candidate set.
        """
        state = self._deployment_state(deployment)
        if dimensions in state._caps_by_dims:
            return
        expected = (len(state.skus), len(dimensions))
        if caps.shape != expected:
            raise ValueError(
                f"capacity matrix for {deployment.short_name} over "
                f"{len(dimensions)} dimensions must have shape {expected}, "
                f"got {caps.shape}"
            )
        caps = np.ascontiguousarray(caps, dtype=np.float64)
        caps.flags.writeable = False
        state._caps_by_dims[dimensions] = caps

    def _deployment_state(self, deployment: DeploymentType) -> _DeploymentCurveState:
        """Columnar candidate state, memoized per deployment.

        Lazily attached to the (frozen) modeler; dropped on pickling
        so worker processes rebuild it locally instead of shipping
        redundant capacity matrices.
        """
        cache = self.__dict__.get("_columnar_state")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_columnar_state", cache)
        state = cache.get(deployment)
        if state is None:
            state = _DeploymentCurveState(self.catalog.for_deployment(deployment))
            cache[deployment] = state
        return state

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_columnar_state", None)
        return state

    def plan_mi_storage(
        self,
        trace: PerformanceTrace,
        file_sizes_gib: list[float] | None = None,
    ) -> MiStoragePlan:
        """Run MI Step 1: storage-tier planning and the 95 % filter."""
        data_size = self._storage_footprint(trace)
        sizes = file_sizes_gib if file_sizes_gib else [data_size]
        layout = plan_file_layout(sizes)
        required_iops, required_throughput = self._io_demand(trace)
        gp_allowed = layout.covers(
            required_iops, required_throughput, coverage=IOPS_THROUGHPUT_COVERAGE
        )
        return MiStoragePlan(
            layout=layout,
            gp_allowed=gp_allowed,
            required_iops=required_iops,
            required_throughput_mibps=required_throughput,
        )

    # ------------------------------------------------------------------
    # DB path
    # ------------------------------------------------------------------
    def _build_db_curve(self, trace: PerformanceTrace) -> PricePerformanceCurve:
        dimensions = tuple(dim for dim in DB_DIMENSIONS if dim in trace)
        if not dimensions:
            raise ValueError("trace has none of the DB performance dimensions")
        candidates = self.catalog.for_deployment(DeploymentType.SQL_DB)
        candidates = self._fit_storage(candidates, trace)
        skus = list(candidates)
        probabilities = self.estimator.probabilities(trace, skus, dimensions)
        return PricePerformanceCurve.from_probabilities(
            skus, probabilities, entity_id=trace.entity_id
        )

    # ------------------------------------------------------------------
    # MI path (two-step procedure, paper Section 3.2)
    # ------------------------------------------------------------------
    def _build_mi_curve(
        self,
        trace: PerformanceTrace,
        file_sizes_gib: list[float] | None,
        plan: MiStoragePlan | None = None,
    ) -> PricePerformanceCurve:
        dimensions = tuple(dim for dim in MI_DIMENSIONS if dim in trace)
        if not dimensions:
            raise ValueError("trace has none of the MI performance dimensions")
        if plan is None:
            plan = self.plan_mi_storage(trace, file_sizes_gib)

        candidates = self.catalog.for_deployment(DeploymentType.SQL_MI)
        candidates = self._fit_storage(candidates, trace)
        if not plan.gp_allowed:
            candidates = candidates.for_tier(ServiceTier.BUSINESS_CRITICAL)
        skus = list(candidates)
        if not skus:
            raise ValueError("no MI SKU satisfies the storage requirement")

        # Step 2: GP SKUs inherit the file layout's summed IOPS limit.
        overrides = gp_iops_overrides(skus, plan)
        probabilities = self.estimator.probabilities(
            trace, skus, dimensions, iops_overrides=overrides
        )
        return PricePerformanceCurve.from_probabilities(
            skus, probabilities, entity_id=trace.entity_id
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _storage_footprint(trace: PerformanceTrace) -> float:
        if PerfDimension.STORAGE in trace:
            return trace[PerfDimension.STORAGE].max()
        return 1.0

    def _fit_storage(self, candidates: SkuCatalog, trace: PerformanceTrace) -> SkuCatalog:
        """Drop SKUs that cannot hold the data at 100 % (never negotiable)."""
        footprint = self._storage_footprint(trace)
        fitted = candidates.fitting_storage(footprint)
        if not len(fitted):
            raise ValueError(_no_storage_fit_message(footprint))
        return fitted

    @staticmethod
    def _io_demand(trace: PerformanceTrace) -> tuple[float, float]:
        """(IOPS, MiB/s) demand summarized at a high quantile."""
        if PerfDimension.IOPS not in trace:
            return 0.0, 0.0
        iops = trace[PerfDimension.IOPS].quantile(_STEP1_DEMAND_QUANTILE)
        throughput = iops * _IO_TRANSFER_KIB / 1024.0
        return iops, throughput
