"""Price-Performance Modeler (PPM) -- paper Section 3.2 and Figure 3.

The PPM is the first of Doppler's two modules.  It takes three inputs
-- the customer's performance counters, the SKU catalog and the
billing interface (already folded into each SKU's price) -- and
produces the price-performance curve.

For SQL DB targets it evaluates the full six-dimension throttling
probability directly.  For SQL MI it first runs the two-step
storage-tier procedure: plan the premium-disk file layout from the
data size, verify the layout covers 100 % of storage and >= 95 % of
the IOPS/throughput demand (else restrict the candidate set to
Business Critical), then build the instance-level curve with the
layout's summed IOPS as the GP IOPS limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..catalog.catalog import SkuCatalog
from ..catalog.models import DeploymentType, ServiceTier
from ..catalog.storage import IOPS_THROUGHPUT_COVERAGE, FileLayout, plan_file_layout
from ..telemetry.counters import DB_DIMENSIONS, MI_DIMENSIONS, PerfDimension
from ..telemetry.trace import PerformanceTrace
from .curve import PricePerformanceCurve
from .throttling import EmpiricalThrottlingEstimator, ThrottlingEstimator

__all__ = ["PricePerformanceModeler", "MiStoragePlan"]

#: Quantile summarizing the IOPS/throughput demand checked in Step 1.
_STEP1_DEMAND_QUANTILE = 0.99

#: Assumed IO transfer size for converting IOPS into MiB/s when the
#: workload trace has no native throughput counter (8 KiB SQL pages).
_IO_TRANSFER_KIB = 8.0


@dataclass(frozen=True)
class MiStoragePlan:
    """Outcome of the MI Step-1 storage-tier determination.

    Attributes:
        layout: The planned premium-disk file layout.
        gp_allowed: Whether GP SKUs stay in the candidate set (the
            layout covered >= 95 % of IOPS and throughput demand).
        required_iops: IOPS demand checked against the layout.
        required_throughput_mibps: Throughput demand checked.
    """

    layout: FileLayout
    gp_allowed: bool
    required_iops: float
    required_throughput_mibps: float


@dataclass(frozen=True)
class PricePerformanceModeler:
    """Builds price-performance curves from counters and a catalog.

    Attributes:
        catalog: All candidate SKUs (both deployments; filtered per
            call).
        estimator: Joint throttling-probability estimator; defaults to
            the paper's non-parametric production estimator.
    """

    catalog: SkuCatalog
    estimator: ThrottlingEstimator = field(default_factory=EmpiricalThrottlingEstimator)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build_curve(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        file_sizes_gib: list[float] | None = None,
    ) -> PricePerformanceCurve:
        """Produce the price-performance curve for one workload.

        Args:
            trace: Customer performance history.  DB curves use up to
                six dimensions, MI curves four (paper Section 3.2);
                dimensions absent from the trace are skipped.
            deployment: Target deployment type.
            file_sizes_gib: Explicit MI data-file sizes; default is a
                single file holding the observed data size.

        Returns:
            The monotone price-performance curve over every catalog
            SKU of the deployment that can hold the data.

        Raises:
            ValueError: If no SKU can accommodate the workload's
                storage footprint.
        """
        if deployment is DeploymentType.SQL_DB:
            return self._build_db_curve(trace)
        return self._build_mi_curve(trace, file_sizes_gib)

    def plan_mi_storage(
        self,
        trace: PerformanceTrace,
        file_sizes_gib: list[float] | None = None,
    ) -> MiStoragePlan:
        """Run MI Step 1: storage-tier planning and the 95 % filter."""
        data_size = self._storage_footprint(trace)
        sizes = file_sizes_gib if file_sizes_gib else [data_size]
        layout = plan_file_layout(sizes)
        required_iops, required_throughput = self._io_demand(trace)
        gp_allowed = layout.covers(
            required_iops, required_throughput, coverage=IOPS_THROUGHPUT_COVERAGE
        )
        return MiStoragePlan(
            layout=layout,
            gp_allowed=gp_allowed,
            required_iops=required_iops,
            required_throughput_mibps=required_throughput,
        )

    # ------------------------------------------------------------------
    # DB path
    # ------------------------------------------------------------------
    def _build_db_curve(self, trace: PerformanceTrace) -> PricePerformanceCurve:
        dimensions = tuple(dim for dim in DB_DIMENSIONS if dim in trace)
        if not dimensions:
            raise ValueError("trace has none of the DB performance dimensions")
        candidates = self.catalog.for_deployment(DeploymentType.SQL_DB)
        candidates = self._fit_storage(candidates, trace)
        skus = list(candidates)
        probabilities = self.estimator.probabilities(trace, skus, dimensions)
        return PricePerformanceCurve.from_probabilities(
            skus, probabilities, entity_id=trace.entity_id
        )

    # ------------------------------------------------------------------
    # MI path (two-step procedure, paper Section 3.2)
    # ------------------------------------------------------------------
    def _build_mi_curve(
        self,
        trace: PerformanceTrace,
        file_sizes_gib: list[float] | None,
    ) -> PricePerformanceCurve:
        dimensions = tuple(dim for dim in MI_DIMENSIONS if dim in trace)
        if not dimensions:
            raise ValueError("trace has none of the MI performance dimensions")
        plan = self.plan_mi_storage(trace, file_sizes_gib)

        candidates = self.catalog.for_deployment(DeploymentType.SQL_MI)
        candidates = self._fit_storage(candidates, trace)
        if not plan.gp_allowed:
            candidates = candidates.for_tier(ServiceTier.BUSINESS_CRITICAL)
        skus = list(candidates)
        if not skus:
            raise ValueError("no MI SKU satisfies the storage requirement")

        # Step 2: GP SKUs inherit the file layout's summed IOPS limit.
        overrides = {
            sku.name: plan.layout.total_iops
            for sku in skus
            if sku.tier is ServiceTier.GENERAL_PURPOSE
        }
        probabilities = self.estimator.probabilities(
            trace, skus, dimensions, iops_overrides=overrides
        )
        return PricePerformanceCurve.from_probabilities(
            skus, probabilities, entity_id=trace.entity_id
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _storage_footprint(trace: PerformanceTrace) -> float:
        if PerfDimension.STORAGE in trace:
            return trace[PerfDimension.STORAGE].max()
        return 1.0

    def _fit_storage(self, candidates: SkuCatalog, trace: PerformanceTrace) -> SkuCatalog:
        """Drop SKUs that cannot hold the data at 100 % (never negotiable)."""
        footprint = self._storage_footprint(trace)
        fitted = candidates.fitting_storage(footprint)
        if not len(fitted):
            raise ValueError(
                f"no candidate SKU can hold {footprint:.0f} GB of data"
            )
        return fitted

    @staticmethod
    def _io_demand(trace: PerformanceTrace) -> tuple[float, float]:
        """(IOPS, MiB/s) demand summarized at a high quantile."""
        if PerfDimension.IOPS not in trace:
            return 0.0, 0.0
        iops = trace[PerfDimension.IOPS].quantile(_STEP1_DEMAND_QUANTILE)
        throughput = iops * _IO_TRANSFER_KIB / 1024.0
        return iops, throughput
