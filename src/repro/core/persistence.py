"""Group-profile persistence: the DMA static-input format.

Paper Section 4: customer profiles are "calculated offline and saved
in the application as static input" -- the group-score model is
trained on Azure-side telemetry and shipped to the customer-local DMA
runtime as a file.  This module serializes
:class:`~repro.core.matching.GroupScoreModel` to a versioned JSON
document and restores it, so an engine can be fitted in one process
and deployed in another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .matching import GroupScoreModel, GroupStatistics

__all__ = [
    "group_model_to_dict",
    "group_model_from_dict",
    "dump_group_model_json",
    "load_group_model_json",
]

_FORMAT_VERSION = 1


def _stats_to_dict(stats: GroupStatistics) -> dict[str, Any]:
    return {"p_mean": stats.p_mean, "p_std": stats.p_std, "count": stats.count}


def _stats_from_dict(payload: dict[str, Any]) -> GroupStatistics:
    return GroupStatistics(
        p_mean=float(payload["p_mean"]),
        p_std=float(payload["p_std"]),
        count=int(payload["count"]),
    )


def group_model_to_dict(model: GroupScoreModel) -> dict[str, Any]:
    """Serialize a fitted group-score model."""
    return {
        "format_version": _FORMAT_VERSION,
        "groups": {
            "".join(str(bit) for bit in key): _stats_to_dict(stats)
            for key, stats in model.groups.items()
        },
        "fallback": _stats_to_dict(model.fallback),
    }


def group_model_from_dict(document: dict[str, Any]) -> GroupScoreModel:
    """Restore a model from :func:`group_model_to_dict` output.

    Raises:
        ValueError: On unknown format versions or malformed keys.
    """
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported group-model format version: {version!r}")
    groups = {}
    for label, payload in document["groups"].items():
        if not set(label) <= {"0", "1"}:
            raise ValueError(f"malformed group label {label!r}")
        key = tuple(int(bit) for bit in label)
        groups[key] = _stats_from_dict(payload)
    return GroupScoreModel(
        groups=groups, fallback=_stats_from_dict(document["fallback"])
    )


def dump_group_model_json(model: GroupScoreModel, path: str | Path) -> None:
    """Write the offline-trained profiles to disk (the DMA static input)."""
    Path(path).write_text(json.dumps(group_model_to_dict(model)), encoding="utf-8")


def load_group_model_json(path: str | Path) -> GroupScoreModel:
    """Load profiles written by :func:`dump_group_model_json`."""
    return group_model_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
