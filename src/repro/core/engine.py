"""The Doppler engine facade (paper Figure 3).

Wires the two modules together: the Price-Performance Modeler builds
the personalized curve, the Customer Profiler assigns the workload to
a negotiability group, and the learned group-score model picks the one
optimal SKU off the curve (equations (3)-(6)).  The facade also
exposes the confidence score and the right-sizing (over-provisioning)
assessment that Section 5.1 describes for existing cloud customers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..catalog.catalog import SkuCatalog
from ..catalog.models import DeploymentType
from ..telemetry.counters import (
    PROFILING_DB_DIMENSIONS,
    PROFILING_MI_DIMENSIONS,
    PerfDimension,
)
from ..telemetry.trace import PerformanceTrace
from .confidence import ConfidenceResult, confidence_score
from .curve import PricePerformanceCurve
from .heuristics import performance_threshold
from .matching import GroupObservation, GroupScoreModel
from .negotiability import NegotiabilitySummarizer, ThresholdingSummarizer
from .ppm import PricePerformanceModeler
from .profiler import CustomerProfile, CustomerProfiler
from .throttling import EmpiricalThrottlingEstimator, ThrottlingEstimator
from .types import CloudCustomerRecord, DopplerRecommendation, OverProvisionReport

__all__ = ["DopplerEngine"]

#: Price-rank slack past the cheapest full-performance point beyond
#: which a customer counts as over-provisioned (DESIGN.md section 5).
_OVERPROVISION_RANK_SLACK = 2


@dataclass
class DopplerEngine:
    """End-to-end SKU recommendation engine.

    Typical use::

        engine = DopplerEngine(catalog=SkuCatalog.default())
        engine.fit(migrated_customers)          # learn group targets
        result = engine.recommend(trace, DeploymentType.SQL_DB)
        print(result.explain())

    Attributes:
        catalog: Candidate SKUs.
        summarizer: Negotiability strategy for profiling; defaults to
            the deployed thresholding algorithm.
        estimator: Joint throttling estimator; defaults to the
            production non-parametric estimator.
    """

    catalog: SkuCatalog
    summarizer: NegotiabilitySummarizer = field(default_factory=ThresholdingSummarizer)
    estimator: ThrottlingEstimator = field(default_factory=EmpiricalThrottlingEstimator)
    _group_models: dict[DeploymentType, GroupScoreModel] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self.ppm = PricePerformanceModeler(catalog=self.catalog, estimator=self.estimator)
        self._profilers = {
            DeploymentType.SQL_DB: CustomerProfiler(
                dimensions=PROFILING_DB_DIMENSIONS, summarizer=self.summarizer
            ),
            DeploymentType.SQL_MI: CustomerProfiler(
                dimensions=PROFILING_MI_DIMENSIONS, summarizer=self.summarizer
            ),
        }

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def profiler_for(self, deployment: DeploymentType) -> CustomerProfiler:
        return self._profilers[deployment]

    def fit(
        self,
        records: Iterable[CloudCustomerRecord],
        exclude_over_provisioned: bool = True,
    ) -> "DopplerEngine":
        """Learn per-group throttling targets from migrated customers.

        Mirrors the paper's training protocol (Section 5.2): keep
        customers settled on a SKU for >= 40 days, optionally drop the
        over-provisioned ones, build each customer's curve, locate
        their chosen SKU on it, and average the observed throttling
        probabilities per negotiability group.

        Args:
            records: Migrated-customer histories with chosen SKUs.
            exclude_over_provisioned: Drop customers whose chosen SKU
                sits far past the cheapest full-performance point
                (Table 5 excludes them; Table 4 keeps them).

        Returns:
            ``self``, with group models fitted per deployment type.
        """
        observations: dict[DeploymentType, list[GroupObservation]] = {
            deployment: [] for deployment in DeploymentType
        }
        for record in records:
            observation = self.training_observation(
                record, exclude_over_provisioned=exclude_over_provisioned
            )
            if observation is not None:
                observations[record.deployment].append(observation)
        for deployment, group_observations in observations.items():
            if group_observations:
                self._group_models[deployment] = GroupScoreModel.fit(group_observations)
        return self

    def training_observation(
        self,
        record: CloudCustomerRecord,
        exclude_over_provisioned: bool = True,
        curve: PricePerformanceCurve | None = None,
    ) -> GroupObservation | None:
        """One record's contribution to the group statistics, or None.

        The per-record body of :meth:`fit`, shared with distributed
        trainers (the fleet engine calls it per record with memoized
        curves).  Returns None when the record is filtered out: not
        settled >= 40 days, chosen SKU not on the curve, or (when
        excluding) over-provisioned.

        Args:
            record: A migrated-customer history.
            exclude_over_provisioned: The Section 5.2 exclusion.
            curve: Optional pre-built curve for the record's trace.
        """
        if not record.is_settled:
            return None
        if curve is None:
            curve = self.ppm.build_curve(record.trace, record.deployment)
        try:
            point = curve.point_for(record.chosen_sku_name)
        except KeyError:
            return None  # chosen SKU not a candidate (e.g. storage misfit)
        if exclude_over_provisioned and self.is_over_provisioned_on(curve, point.sku.name):
            return None
        profile = self.profiler_for(record.deployment).profile(record.trace)
        # Customer-chosen SKUs can sit on monotonicity-lifted points
        # (unlike engine selections, which always land on raw ones),
        # so record the point's real risk, not the lifted score.
        return GroupObservation(
            group_key=profile.group_key,
            throttling_probability=point.throttling_probability,
        )

    def group_model(self, deployment: DeploymentType) -> GroupScoreModel | None:
        """The fitted group-score model for a deployment, if any."""
        return self._group_models.get(deployment)

    def install_group_model(
        self, deployment: DeploymentType, model: GroupScoreModel
    ) -> None:
        """Install an externally fitted group-score model.

        Used by distributed trainers (e.g. the fleet engine, which
        builds observations in worker pools and aggregates them in the
        parent) and by offline-profile loaders.
        """
        self._group_models[deployment] = model

    def save_profiles(self, path, deployment: DeploymentType) -> None:
        """Persist the fitted group profiles as DMA static input.

        Paper Section 4: profiles are "calculated offline and saved in
        the application as static input".

        Raises:
            ValueError: If no model has been fitted for the deployment.
        """
        from .persistence import dump_group_model_json

        model = self._group_models.get(deployment)
        if model is None:
            raise ValueError(f"no fitted group model for {deployment.short_name}")
        dump_group_model_json(model, path)

    def load_profiles(self, path, deployment: DeploymentType) -> "DopplerEngine":
        """Load offline-trained group profiles (the deployment path)."""
        from .persistence import load_group_model_json

        self._group_models[deployment] = load_group_model_json(path)
        return self

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        file_sizes_gib: list[float] | None = None,
        with_confidence: bool = False,
        confidence_rounds: int = 12,
        rng: int | np.random.Generator | None = None,
        curve: PricePerformanceCurve | None = None,
        profile: "CustomerProfile | None" = None,
    ) -> DopplerRecommendation:
        """Produce the full Doppler recommendation for one workload.

        Args:
            trace: Customer performance history (>= 1 week advised).
            deployment: Target deployment type.
            file_sizes_gib: Optional MI data-file layout.
            with_confidence: Also compute the bootstrap confidence
                score (adds ``confidence_rounds`` full re-evaluations).
            confidence_rounds: Bootstrap rounds when enabled.
            rng: Seed or generator for the bootstrap.
            curve: Optional pre-built price-performance curve for this
                trace/deployment (the fleet engine passes memoized
                curves here); built fresh when omitted.
            profile: Optional pre-computed customer profile (the live
                recommender passes streaming-maintained profiles
                here); profiled from the trace when omitted.

        Returns:
            A :class:`DopplerRecommendation`.
        """
        if curve is None:
            curve = self.ppm.build_curve(trace, deployment, file_sizes_gib=file_sizes_gib)
        if profile is None:
            profile = self.profiler_for(deployment).profile(trace)
        model = self._group_models.get(deployment)
        notes: list[str] = []
        if model is not None:
            point = model.recommend(curve, profile.group_key)
            target = model.target_probability(profile.group_key)
            strategy = "profile_match"
            stats = model.statistics_for(profile.group_key)
            notes.append(
                f"Matched against {stats.count} migrated customers in group "
                f"{profile.group_label} (avg score {stats.score_mean:.3f})"
            )
        else:
            # Cold start: no migrated-customer data yet.  Fall back to
            # the cheapest full-performance point (flat/simple curves)
            # or the 95 % performance threshold heuristic.
            full = curve.cheapest_full_performance()
            if full is not None:
                point = full
                strategy = "cheapest_full_performance"
            else:
                choice = performance_threshold(curve)
                point = choice.point
                strategy = choice.heuristic
            # Report the point's raw probability: the monotonicity
            # adjustment can lift `score` above `1 - P`, and `score`
            # is only meaningful for ranking.
            target = point.throttling_probability
            notes.append("No migrated-customer profiles available; heuristic fallback")

        confidence: ConfidenceResult | None = None
        if with_confidence:
            confidence = confidence_score(
                trace,
                recommender=lambda t: self._recommend_sku_name(t, deployment, file_sizes_gib),
                n_rounds=confidence_rounds,
                rng=rng,
            )

        return DopplerRecommendation(
            sku=point.sku,
            curve=curve,
            profile=profile,
            target_probability=target,
            expected_throttling=point.throttling_probability,
            confidence=confidence,
            strategy=strategy,
            notes=tuple(notes),
        )

    def _recommend_sku_name(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        file_sizes_gib: list[float] | None,
    ) -> str:
        """Cheap inner recommendation used by the bootstrap."""
        curve = self.ppm.build_curve(trace, deployment, file_sizes_gib=file_sizes_gib)
        profile = self.profiler_for(deployment).profile(trace)
        model = self._group_models.get(deployment)
        if model is not None:
            return model.recommend(curve, profile.group_key).sku.name
        full = curve.cheapest_full_performance()
        if full is not None:
            return full.sku.name
        return performance_threshold(curve).point.sku.name

    # ------------------------------------------------------------------
    # Right-sizing existing cloud customers
    # ------------------------------------------------------------------
    def assess_over_provisioning(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        current_sku_name: str,
    ) -> OverProvisionReport:
        """Right-sizing check for an existing cloud customer.

        Section 5.1 of the paper: ~10 % of cloud customers sit far
        beyond the cheapest point of their price-performance curve
        that already meets 100 % of their needs; some pay for 4x their
        max resource use.

        Raises:
            KeyError: If ``current_sku_name`` is not in the catalog.
        """
        current = self.catalog.by_name(current_sku_name)
        curve = self.ppm.build_curve(trace, deployment)
        full = curve.cheapest_full_performance()
        recommended = full.sku if full is not None else None
        over = self.is_over_provisioned_on(curve, current_sku_name)
        cpu_peak = (
            trace[PerfDimension.CPU].max() if PerfDimension.CPU in trace else 0.0
        )
        utilization = cpu_peak / current.limits.vcores
        savings = current.monthly_price - (recommended.monthly_price if recommended else 0.0)
        return OverProvisionReport(
            current_sku=current,
            recommended_sku=recommended,
            is_over_provisioned=over,
            utilization_ratio=utilization,
            monthly_savings=max(0.0, savings) if recommended else 0.0,
        )

    @staticmethod
    def is_over_provisioned_on(curve: PricePerformanceCurve, sku_name: str) -> bool:
        """Chosen SKU sits >= 2 price ranks past the cheapest 100 % point.

        Public so fleet-scale right-sizing can reuse the verdict on a
        memoized curve without rebuilding it.
        """
        full = curve.cheapest_full_performance()
        if full is None:
            return False
        try:
            chosen_rank = curve.position_of(sku_name)
        except KeyError:
            return False
        full_rank = curve.position_of(full.sku.name)
        return chosen_rank >= full_rank + _OVERPROVISION_RANK_SLACK
