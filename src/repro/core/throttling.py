"""Resource-throttling probability estimation (paper equation (1)).

The throttling probability of SKU *i* for customer *n* is

    P_n(SKU_i) = P(r_cpu > R_cpu_i  ∪  r_mem > R_mem_i  ∪  ...)

the probability that *any* performance dimension's demand exceeds the
SKU's capacity.  Estimating it requires the *joint* distribution of
demands: dimensions spike together (a CPU-saturating batch job also
hammers the log), so the union probability is not a function of the
per-dimension marginals.

The production estimator is non-parametric -- "calculating the
frequency with which all performance dimensions are satisfied by each
SKU, at each time point" (Section 3.2).  The paper reports trying
multivariate KDE (vine copulas, Gaussian smoothing) and rejecting it
for run time; :class:`KdeThrottlingEstimator` keeps that alternative
behind the same interface for the ablation benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..catalog.models import ResourceLimits, SkuSpec
from ..ml.kde import GaussianKde
from ..telemetry.counters import LATENCY_FLOOR, PerfDimension, invert_latency
from ..telemetry.trace import PerformanceTrace

__all__ = [
    "ThrottlingEstimator",
    "EmpiricalThrottlingEstimator",
    "CopulaThrottlingEstimator",
    "KdeThrottlingEstimator",
    "LATENCY_FLOOR",
    "demand_matrix",
    "capacity_vector",
    "invert_latency",
]

def demand_matrix(
    trace: PerformanceTrace, dimensions: tuple[PerfDimension, ...]
) -> np.ndarray:
    """Stack a trace into an ``(n_samples, n_dims)`` demand matrix.

    Latency columns are inverted so the throttling predicate is a
    uniform ``demand > capacity`` in every column (paper Section 3.2:
    "IO latency is taken as the inverse of the actual IO latency").
    """
    columns = []
    for dim in dimensions:
        values = trace[dim].values
        if dim.lower_is_better:
            columns.append(invert_latency(values))
        else:
            columns.append(values)
    return np.column_stack(columns)


def capacity_vector(
    limits: ResourceLimits, dimensions: tuple[PerfDimension, ...]
) -> np.ndarray:
    """SKU capacities aligned with :func:`demand_matrix` columns.

    Latency capacities go through the same :func:`invert_latency` as
    the inverted demand, so degenerate latency limits floor instead of
    blowing up.
    """
    caps = []
    for dim in dimensions:
        capacity = dim.capacity_of(limits)
        if dim.lower_is_better:
            caps.append(float(invert_latency(capacity)))
        else:
            caps.append(capacity)
    return np.asarray(caps, dtype=float)


class ThrottlingEstimator(abc.ABC):
    """Estimates ``P_n(SKU_i)`` from a trace for a batch of SKUs."""

    @abc.abstractmethod
    def probabilities(
        self,
        trace: PerformanceTrace,
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        iops_overrides: dict[str, float] | None = None,
    ) -> np.ndarray:
        """Throttling probability per SKU, each in ``[0, 1]``.

        Args:
            trace: Customer performance history.
            skus: Candidate SKUs, any order.
            dimensions: Performance dimensions to evaluate jointly.
            iops_overrides: Optional per-SKU-name replacement of the
                IOPS capacity -- the MI file-layout limit of paper
                Section 3.2 Step 2.
        """

    def probability(
        self,
        trace: PerformanceTrace,
        sku: SkuSpec,
        dimensions: tuple[PerfDimension, ...],
    ) -> float:
        """Convenience scalar wrapper around :meth:`probabilities`."""
        return float(self.probabilities(trace, [sku], dimensions)[0])

    @staticmethod
    def _capacity_matrix(
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        iops_overrides: dict[str, float] | None,
    ) -> np.ndarray:
        rows = []
        for sku in skus:
            limits = sku.limits
            if iops_overrides and sku.name in iops_overrides:
                limits = limits.with_iops(iops_overrides[sku.name])
            rows.append(capacity_vector(limits, dimensions))
        return np.asarray(rows, dtype=float)


@dataclass(frozen=True)
class EmpiricalThrottlingEstimator(ThrottlingEstimator):
    """The paper's production estimator: joint violation frequency.

    For each time point, check whether any dimension's demand exceeds
    the SKU capacity; the throttling probability is the fraction of
    violating time points.  Exact with respect to the empirical joint
    distribution, O(n_samples * n_dims) per SKU, no tuning knobs.
    """

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        # (n_skus, n_samples, n_dims) broadcast; any over dims, mean over time.
        violated = demands[None, :, :] > caps[:, None, :]
        return violated.any(axis=2).mean(axis=1)


@dataclass(frozen=True)
class CopulaThrottlingEstimator(ThrottlingEstimator):
    """Gaussian-copula alternative (the paper's vine-copula path).

    Separates marginals (smoothed ECDFs) from dependence (normal-score
    correlation) and evaluates box probabilities by seeded Monte
    Carlo.  The one-tree special case of the vine-copula estimator the
    paper evaluated and rejected for run time; retained for the
    estimator ablation.

    Attributes:
        n_draws: Monte-Carlo draws per SKU evaluation.
        seed: Seed for the (deterministic) Monte-Carlo stream.
    """

    n_draws: int = 4096
    seed: int = 0

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        from ..ml.copula import GaussianCopulaModel

        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        model = GaussianCopulaModel.fit(demands)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        return np.array(
            [
                model.exceedance_probability(row, n_draws=self.n_draws, rng=self.seed)
                for row in caps
            ]
        )


@dataclass(frozen=True)
class KdeThrottlingEstimator(ThrottlingEstimator):
    """Gaussian-smoothing alternative (paper's rejected parametric path).

    Fits a product-Gaussian KDE to the joint demand sample and
    evaluates ``1 - P(all demands <= caps)`` analytically under the
    mixture.  Smoother curves on short traces, but strictly slower --
    the trade-off the ablation benchmark quantifies.

    Attributes:
        bandwidth_scale: Multiplier on the Scott's-rule bandwidth.
    """

    bandwidth_scale: float = 1.0

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        kde = GaussianKde.fit(demands, bandwidth_scale=self.bandwidth_scale)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        return np.array([kde.exceedance_probability(row) for row in caps])
