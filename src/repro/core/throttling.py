"""Resource-throttling probability estimation (paper equation (1)).

The throttling probability of SKU *i* for customer *n* is

    P_n(SKU_i) = P(r_cpu > R_cpu_i  ∪  r_mem > R_mem_i  ∪  ...)

the probability that *any* performance dimension's demand exceeds the
SKU's capacity.  Estimating it requires the *joint* distribution of
demands: dimensions spike together (a CPU-saturating batch job also
hammers the log), so the union probability is not a function of the
per-dimension marginals.

The production estimator is non-parametric -- "calculating the
frequency with which all performance dimensions are satisfied by each
SKU, at each time point" (Section 3.2).  The paper reports trying
multivariate KDE (vine copulas, Gaussian smoothing) and rejecting it
for run time; :class:`KdeThrottlingEstimator` keeps that alternative
behind the same interface for the ablation benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..catalog.models import ResourceLimits, SkuSpec
from ..ml.kde import GaussianKde
from ..telemetry.counters import LATENCY_FLOOR, PerfDimension, invert_latency
from ..telemetry.trace import PerformanceTrace

__all__ = [
    "ThrottlingEstimator",
    "EmpiricalThrottlingEstimator",
    "CopulaThrottlingEstimator",
    "KdeThrottlingEstimator",
    "DEFAULT_KERNEL_MEMORY_CAP_MB",
    "KERNEL_KINDS",
    "LATENCY_FLOOR",
    "batch_violation_counts",
    "capacity_matrix",
    "capacity_vector",
    "demand_matrix",
    "invert_latency",
    "numba_available",
    "resolve_kernel",
    "use_kernel",
    "violation_counts",
]

#: Upper bound on the transient ``(n_skus, chunk, n_dims)`` boolean
#: broadcast the empirical kernel materializes.  64 MB keeps the temp
#: inside typical L3/working-set budgets while leaving chunks large
#: enough that the per-chunk Python overhead stays negligible.
DEFAULT_KERNEL_MEMORY_CAP_MB = 64.0

#: Valid violation-kernel selectors: the vectorized numpy kernel, the
#: numba-compiled scalar loop (optional dependency), or a one-shot
#: measured fit-probe per process picking whichever is faster here.
KERNEL_KINDS: tuple[str, ...] = ("numpy", "numba", "auto")

# Per-process kernel selection state.  ``_REQUESTED`` is what the last
# ``use_kernel`` call asked for; ``_RESOLVED`` memoizes what "auto"
# measured (selection is per process: worker pools re-run the probe in
# their own interpreter).  Both kernels count the *same* comparisons,
# so the counts -- and every probability derived from them -- are
# byte-identical regardless of which one runs; the selector is purely
# a speed decision and never a correctness one.
_REQUESTED_KERNEL = "numpy"
_AUTO_RESOLVED: str | None = None
_NUMBA_COUNTS = None  # compiled single-trace kernel, memoized per process


def numba_available() -> bool:
    """Whether the optional numba dependency is importable."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def use_kernel(kind: str) -> str:
    """Select the process-wide violation kernel; returns the resolution.

    ``"numpy"`` and ``"numba"`` force their kernel (``"numba"`` raises
    immediately when the dependency is absent -- install the
    ``repro[numba]`` extra); ``"auto"`` resolves to whichever kernel a
    one-shot measured probe finds faster in this process, falling back
    to numpy cleanly when numba is not installed.  The resolution is
    returned so callers can log it.
    """
    global _REQUESTED_KERNEL
    if kind not in KERNEL_KINDS:
        raise ValueError(
            f"unknown violation kernel {kind!r}; choose one of "
            + ", ".join(repr(option) for option in KERNEL_KINDS)
        )
    if kind == "numba" and not numba_available():
        raise ValueError(
            "violation kernel 'numba' requested but numba is not installed; "
            "install the repro[numba] extra or use kernel='auto'"
        )
    _REQUESTED_KERNEL = kind
    return resolve_kernel()


def resolve_kernel() -> str:
    """The kernel that will actually run: ``"numpy"`` or ``"numba"``."""
    if _REQUESTED_KERNEL == "numpy":
        return "numpy"
    if _REQUESTED_KERNEL == "numba":
        return "numba"
    return _resolve_auto()


def _numba_kernel():
    """Build (once per process) the numba-compiled violation counter.

    A sku-major scalar loop with an early break per sample: no boolean
    temporaries at all, so the memory cap of the numpy kernel is moot.
    The comparisons are exactly the numpy kernel's ``demand > cap``
    per dimension, OR-ed per sample, summed in int64 -- identical
    counts, bit for bit.
    """
    global _NUMBA_COUNTS
    if _NUMBA_COUNTS is None:
        from numba import njit

        @njit(cache=False, fastmath=False)
        def _counts(demands, caps):  # pragma: no cover - compiled
            n_samples, n_dims = demands.shape
            n_skus = caps.shape[0]
            out = np.zeros(n_skus, dtype=np.int64)
            for i in range(n_skus):
                violated = 0
                for t in range(n_samples):
                    for d in range(n_dims):
                        if demands[t, d] > caps[i, d]:
                            violated += 1
                            break
                out[i] = violated
            return out

        _NUMBA_COUNTS = _counts
    return _NUMBA_COUNTS


def _resolve_auto() -> str:
    """One-shot measured fit-probe: time both kernels on synthetic data.

    Polynesia-style substrate selection: the same algorithm exists on
    two specialized substrates, and the cheaper one *here* -- this
    interpreter, this machine, this BLAS/LLVM pairing -- wins.  The
    probe compiles the numba kernel first (warm-up, excluded from the
    timing), then takes the best of three runs for each kernel on a
    representative ``(2048 samples x 6 dims) x 32 skus`` problem.  The
    verdict is memoized for the life of the process.
    """
    global _AUTO_RESOLVED
    if _AUTO_RESOLVED is not None:
        return _AUTO_RESOLVED
    if not numba_available():
        _AUTO_RESOLVED = "numpy"
        return _AUTO_RESOLVED
    import time

    rows = np.linspace(0.0, 1.0, 2048 * 6).reshape(2048, 6)
    caps = np.linspace(0.2, 0.8, 32 * 6).reshape(32, 6)
    try:
        compiled = _numba_kernel()
        compiled(rows, caps)  # JIT warm-up: compilation must not bias the probe
    except Exception:  # noqa: BLE001 - a broken numba install falls back cleanly
        _AUTO_RESOLVED = "numpy"
        return _AUTO_RESOLVED

    def best_of(fn, n: int = 3) -> float:
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            fn(rows, caps)
            best = min(best, time.perf_counter() - start)
        return best

    numpy_time = best_of(lambda d, c: _violation_mask(d, c).sum(axis=1, dtype=np.int64))
    numba_time = best_of(compiled)
    _AUTO_RESOLVED = "numba" if numba_time < numpy_time else "numpy"
    return _AUTO_RESOLVED


def demand_matrix(
    trace: PerformanceTrace, dimensions: tuple[PerfDimension, ...]
) -> np.ndarray:
    """Stack a trace into an ``(n_samples, n_dims)`` demand matrix.

    Latency columns are inverted so the throttling predicate is a
    uniform ``demand > capacity`` in every column (paper Section 3.2:
    "IO latency is taken as the inverse of the actual IO latency").

    The result is memoized on the trace (see
    :meth:`~repro.telemetry.trace.PerformanceTrace.demand_matrix`), so
    every estimator evaluating the same trace shares one inversion
    pass; treat it as read-only.
    """
    return trace.demand_matrix(tuple(dimensions))


def _chunk_samples(n_skus: int, n_dims: int, memory_cap_mb: float) -> int:
    """Samples per broadcast so the bool temp stays under the cap."""
    if memory_cap_mb <= 0:
        raise ValueError(f"memory cap must be positive, got {memory_cap_mb!r}")
    per_sample = max(1, n_skus * n_dims)  # one byte per bool element
    return max(1, int(memory_cap_mb * 1024 * 1024) // per_sample)


def _violation_mask(demands: np.ndarray, caps: np.ndarray) -> np.ndarray:
    """``(n_skus, n_samples)`` any-dimension violation mask.

    Evaluated dimension-major: one 2-D comparison per dimension OR-ed
    into the output, which is ~3x faster than materializing the 3-D
    ``(n_skus, n_samples, n_dims)`` broadcast and reducing over the
    strided last axis, and keeps the transient footprint at two 2-D
    boolean arrays.  Exactly the same comparisons, so the mask is
    bit-identical to ``(demands[None] > caps[:, None]).any(axis=2)``.
    """
    out = demands[:, 0][None, :] > caps[:, 0][:, None]
    for column in range(1, caps.shape[1]):
        out |= demands[:, column][None, :] > caps[:, column][:, None]
    return out


def violation_counts(
    demands: np.ndarray,
    caps: np.ndarray,
    memory_cap_mb: float = DEFAULT_KERNEL_MEMORY_CAP_MB,
) -> np.ndarray:
    """Per-SKU count of samples violating any dimension, chunked.

    The hot inner kernel of the empirical estimator: evaluates
    ``any_dim(demand > capacity)`` over an ``(n_samples, n_dims)``
    demand matrix and an ``(n_skus, n_dims)`` capacity matrix without
    ever materializing more than ``memory_cap_mb`` of boolean temp.
    Counting integers and dividing once is bit-identical to
    ``violated.any(axis=2).mean(axis=1)`` (bool sums are exact in
    int64/float64 far beyond any realistic trace length), so chunking
    never changes a probability.

    Under ``use_kernel("numba")`` (or an ``"auto"`` probe that picked
    it) the count comes from the compiled scalar loop instead: the
    same comparisons with no boolean temporaries, so the memory cap is
    irrelevant there and the counts stay identical.
    """
    if resolve_kernel() == "numba":
        return _numba_kernel()(demands, caps)
    n_skus = caps.shape[0]
    counts = np.zeros(n_skus, dtype=np.int64)
    chunk = _chunk_samples(n_skus, caps.shape[1], memory_cap_mb)
    for start in range(0, demands.shape[0], chunk):
        block = demands[start : start + chunk]
        counts += _violation_mask(block, caps).sum(axis=1, dtype=np.int64)
    return counts


def batch_violation_counts(
    demand_blocks: Sequence[np.ndarray],
    caps: np.ndarray,
    memory_cap_mb: float = DEFAULT_KERNEL_MEMORY_CAP_MB,
) -> np.ndarray:
    """Violation counts for many traces against one capacity matrix.

    The columnar fleet kernel: stacks several traces' demand matrices
    into shared broadcasts (so the per-trace Python/numpy dispatch
    overhead amortizes across the fleet) while still respecting the
    boolean-temp memory cap.  Traces are packed greedily into
    broadcast groups; a single trace longer than the cap falls back to
    the chunked single-trace kernel.

    Args:
        demand_blocks: Per-trace ``(n_i, n_dims)`` demand matrices,
            all sharing one dimension order aligned with ``caps``.
        caps: ``(n_skus, n_dims)`` capacity matrix.
        memory_cap_mb: Bound on the transient boolean broadcast.

    Returns:
        ``(n_traces, n_skus)`` int64 violation counts.
    """
    n_skus = caps.shape[0]
    counts = np.empty((len(demand_blocks), n_skus), dtype=np.int64)
    if resolve_kernel() == "numba":
        # The compiled loop has no boolean temp to bound, so greedy
        # packing buys nothing: one call per trace, identical counts.
        kernel = _numba_kernel()
        for index, block in enumerate(demand_blocks):
            counts[index] = kernel(block, caps)
        return counts
    budget = _chunk_samples(n_skus, caps.shape[1], memory_cap_mb)
    group: list[int] = []
    group_samples = 0

    def flush() -> None:
        nonlocal group, group_samples
        if not group:
            return
        stacked = np.concatenate([demand_blocks[i] for i in group], axis=0)
        violated = _violation_mask(stacked, caps)
        # Segment sums on the shared mask (np.add.reduceat on bool
        # computes logical OR, not counts, so slice-sum instead).
        start = 0
        for index in group:
            end = start + demand_blocks[index].shape[0]
            counts[index] = violated[:, start:end].sum(axis=1, dtype=np.int64)
            start = end
        group, group_samples = [], 0

    for index, block in enumerate(demand_blocks):
        n = block.shape[0]
        if n > budget:  # one oversized trace: chunk it on its own
            flush()
            counts[index] = violation_counts(block, caps, memory_cap_mb)
            continue
        if group_samples + n > budget:
            flush()
        group.append(index)
        group_samples += n
    flush()
    return counts


def capacity_vector(
    limits: ResourceLimits, dimensions: tuple[PerfDimension, ...]
) -> np.ndarray:
    """SKU capacities aligned with :func:`demand_matrix` columns.

    Latency capacities go through the same :func:`invert_latency` as
    the inverted demand, so degenerate latency limits floor instead of
    blowing up.
    """
    caps = []
    for dim in dimensions:
        capacity = dim.capacity_of(limits)
        if dim.lower_is_better:
            caps.append(float(invert_latency(capacity)))
        else:
            caps.append(capacity)
    return np.asarray(caps, dtype=float)


def capacity_matrix(
    skus: list[SkuSpec],
    dimensions: tuple[PerfDimension, ...],
    iops_overrides: dict[str, float] | None = None,
) -> np.ndarray:
    """``(n_skus, n_dims)`` capacity matrix aligned with ``dimensions``.

    The single definition of capacity-matrix construction shared by
    every estimator (batch, incremental, columnar), so the violation
    predicate agrees bit-for-bit across paths.  ``iops_overrides``
    replaces the IOPS capacity per SKU name -- the MI file-layout
    limit of paper Section 3.2 Step 2.
    """
    rows = []
    for sku in skus:
        limits = sku.limits
        if iops_overrides and sku.name in iops_overrides:
            limits = limits.with_iops(iops_overrides[sku.name])
        rows.append(capacity_vector(limits, dimensions))
    return np.asarray(rows, dtype=float)


class ThrottlingEstimator(abc.ABC):
    """Estimates ``P_n(SKU_i)`` from a trace for a batch of SKUs."""

    @abc.abstractmethod
    def probabilities(
        self,
        trace: PerformanceTrace,
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        iops_overrides: dict[str, float] | None = None,
    ) -> np.ndarray:
        """Throttling probability per SKU, each in ``[0, 1]``.

        Args:
            trace: Customer performance history.
            skus: Candidate SKUs, any order.
            dimensions: Performance dimensions to evaluate jointly.
            iops_overrides: Optional per-SKU-name replacement of the
                IOPS capacity -- the MI file-layout limit of paper
                Section 3.2 Step 2.
        """

    def probability(
        self,
        trace: PerformanceTrace,
        sku: SkuSpec,
        dimensions: tuple[PerfDimension, ...],
    ) -> float:
        """Convenience scalar wrapper around :meth:`probabilities`."""
        return float(self.probabilities(trace, [sku], dimensions)[0])

    def probabilities_batch(
        self,
        traces: Sequence[PerformanceTrace],
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        iops_overrides: dict[str, float] | None = None,
    ) -> np.ndarray:
        """Throttling probabilities for many traces at once.

        Columnar fleet entry point: all traces share one SKU set, one
        dimension order and one override mapping (the caller groups
        customers accordingly), so the capacity matrix is built once
        for the whole batch.  Per-SKU probabilities are independent of
        the other traces in the batch, so the result rows equal the
        per-trace :meth:`probabilities` outputs exactly.

        The base implementation is a plain per-trace loop -- correct
        for every estimator; :class:`EmpiricalThrottlingEstimator`
        overrides it with stacked chunked broadcasts.

        Returns:
            ``(n_traces, n_skus)`` probabilities.
        """
        if not traces:
            return np.zeros((0, len(skus)))
        return np.stack(
            [
                self.probabilities(trace, skus, dimensions, iops_overrides)
                for trace in traces
            ]
        )

    @staticmethod
    def _capacity_matrix(
        skus: list[SkuSpec],
        dimensions: tuple[PerfDimension, ...],
        iops_overrides: dict[str, float] | None,
    ) -> np.ndarray:
        return capacity_matrix(skus, dimensions, iops_overrides)


@dataclass(frozen=True)
class EmpiricalThrottlingEstimator(ThrottlingEstimator):
    """The paper's production estimator: joint violation frequency.

    For each time point, check whether any dimension's demand exceeds
    the SKU capacity; the throttling probability is the fraction of
    violating time points.  Exact with respect to the empirical joint
    distribution, O(n_samples * n_dims) per SKU, no tuning knobs.

    Both the single-trace and the batch path run the chunked columnar
    kernel, so the ``(n_skus, n_samples, n_dims)`` boolean temp never
    exceeds ``memory_cap_mb`` -- long traces against large catalogs
    stay memory-bounded without changing a single probability bit.

    Attributes:
        memory_cap_mb: Bound on the kernel's transient boolean
            broadcast.
    """

    memory_cap_mb: float = DEFAULT_KERNEL_MEMORY_CAP_MB

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        return self.probabilities_from_caps(demands, caps)

    def probabilities_from_caps(
        self, demands: np.ndarray, caps: np.ndarray
    ) -> np.ndarray:
        """One trace against a precomputed capacity matrix."""
        counts = violation_counts(demands, caps, self.memory_cap_mb)
        return counts / demands.shape[0]

    def probabilities_batch(self, traces, skus, dimensions, iops_overrides=None):
        if not traces:
            return np.zeros((0, len(skus)))
        caps = self._capacity_matrix(list(skus), tuple(dimensions), iops_overrides)
        return self.probabilities_batch_from_caps(
            [demand_matrix(trace, dimensions) for trace in traces], caps
        )

    def probabilities_batch_from_caps(
        self, demand_blocks: Sequence[np.ndarray], caps: np.ndarray
    ) -> np.ndarray:
        """Many traces against one precomputed capacity matrix.

        The columnar fast path used by
        :meth:`~repro.core.ppm.PricePerformanceModeler.build_curves_batch`:
        the capacity matrix is built once per fleet pass and the
        demand rows of every customer flow through stacked chunked
        broadcasts.
        """
        counts = batch_violation_counts(demand_blocks, caps, self.memory_cap_mb)
        lengths = np.array([block.shape[0] for block in demand_blocks], dtype=np.int64)
        return counts / lengths[:, None]


@dataclass(frozen=True)
class CopulaThrottlingEstimator(ThrottlingEstimator):
    """Gaussian-copula alternative (the paper's vine-copula path).

    Separates marginals (smoothed ECDFs) from dependence (normal-score
    correlation) and evaluates box probabilities by seeded Monte
    Carlo.  The one-tree special case of the vine-copula estimator the
    paper evaluated and rejected for run time; retained for the
    estimator ablation.

    Attributes:
        n_draws: Monte-Carlo draws per SKU evaluation.
        seed: Seed for the (deterministic) Monte-Carlo stream.
    """

    n_draws: int = 4096
    seed: int = 0

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        from ..ml.copula import GaussianCopulaModel

        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        model = GaussianCopulaModel.fit(demands)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        return np.array(
            [
                model.exceedance_probability(row, n_draws=self.n_draws, rng=self.seed)
                for row in caps
            ]
        )


@dataclass(frozen=True)
class KdeThrottlingEstimator(ThrottlingEstimator):
    """Gaussian-smoothing alternative (paper's rejected parametric path).

    Fits a product-Gaussian KDE to the joint demand sample and
    evaluates ``1 - P(all demands <= caps)`` analytically under the
    mixture.  Smoother curves on short traces, but strictly slower --
    the trade-off the ablation benchmark quantifies.

    Attributes:
        bandwidth_scale: Multiplier on the Scott's-rule bandwidth.
    """

    bandwidth_scale: float = 1.0

    def probabilities(self, trace, skus, dimensions, iops_overrides=None):
        if not skus:
            return np.zeros(0)
        demands = demand_matrix(trace, dimensions)
        kde = GaussianKde.fit(demands, bandwidth_scale=self.bandwidth_scale)
        caps = self._capacity_matrix(skus, dimensions, iops_overrides)
        return np.array([kde.exceedance_probability(row) for row in caps])
