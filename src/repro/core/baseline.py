"""The naive baseline SKU-selection strategy (paper Section 2).

Before Doppler, the DMA tool shipped a baseline that collapses "the
entire time-series vector collected on each available perf counter
into one scalar value" -- the max or a large (95 %) quantile -- and
suggests "the cheapest Azure PaaS offering that satisfies all the
requirements".  Two failure modes follow, both reproduced here and
measured in the Section-5.3 benchmark:

* sizing to the peak over-provisions spiky workloads;
* when no SKU satisfies every scalar at 100 %, the baseline returns
  *nothing* ("the baseline strategy actually fails to provide any SKU
  recommendation").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import SkuCatalog
from ..catalog.models import DeploymentType, SkuSpec
from ..telemetry.counters import DB_DIMENSIONS, MI_DIMENSIONS, PerfDimension
from ..telemetry.trace import PerformanceTrace

__all__ = ["BaselineStrategy"]


@dataclass(frozen=True)
class BaselineStrategy:
    """Quantile-reduction baseline recommender.

    Attributes:
        quantile: The reduction quantile; 1.0 is the max, the paper's
            comparison uses 0.95.
    """

    quantile: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {self.quantile!r}")

    def scalar_demands(self, trace: PerformanceTrace) -> dict[PerfDimension, float]:
        """Collapse every counter into its reduction scalar.

        The reduction is deliberately *uniform* across dimensions --
        "taking the entire time-series vector collected on each
        available perf counter and collapsing it into one scalar
        value" (paper Section 2).  For latency this is exactly the
        baseline's documented mistake: the 95th percentile of observed
        latency is a *loose* requirement (latency-sensitive workloads
        show low latencies most of the time), so the baseline accepts
        lower-end SKUs that cannot actually deliver the latency the
        workload needs (paper Section 5.3: "the baseline incorrectly
        specifies a lower-end SKU").
        """
        return {
            dim: trace[dim].quantile(self.quantile) for dim in trace.dimensions
        }

    def satisfies(self, sku: SkuSpec, demands: dict[PerfDimension, float]) -> bool:
        """Whether a SKU meets every scalar demand at 100 %."""
        for dim, demand in demands.items():
            capacity = dim.capacity_of(sku.limits)
            if dim.lower_is_better:
                if capacity > demand:
                    return False
            elif demand > capacity:
                return False
        return True

    def recommend(
        self,
        trace: PerformanceTrace,
        deployment: DeploymentType,
        catalog: SkuCatalog,
    ) -> SkuSpec | None:
        """Cheapest SKU satisfying all scalar demands, or ``None``.

        Args:
            trace: Customer performance history.
            deployment: Target deployment type.
            catalog: Candidate SKU catalog.

        Returns:
            The recommendation, or ``None`` when no SKU meets every
            requirement (the baseline's documented failure mode).
        """
        wanted = DB_DIMENSIONS if deployment is DeploymentType.SQL_DB else MI_DIMENSIONS
        dimensions = tuple(dim for dim in wanted if dim in trace)
        demands = {
            dim: value
            for dim, value in self.scalar_demands(trace).items()
            if dim in dimensions or dim is PerfDimension.STORAGE
        }
        candidates = catalog.for_deployment(deployment)
        for sku in candidates:  # price ascending
            if self.satisfies(sku, demands):
                return sku
        return None
