"""Negotiability summarizers (paper Section 3.3).

The Customer Profiler compresses each performance dimension's counter
series into one scalar describing how *negotiable* the dimension is:
"if the spikiness of customers' performance counters is rare and
short-lived, consider that performance dimension negotiable".  The
paper compares six summarization strategies (Section 5.2.1, Table 4):

1. **Thresholding algorithm** (deployed in production): find the max
   peak, form a window one standard deviation below it, and measure the
   fraction of the assessment period spent inside the window.  A long
   stay near the peak (> rho) means the demand is sustained and the
   dimension is *non-negotiable*.
2. **MinMax Scaler AUC**: AUC of the ECDF after min-max scaling; high
   AUC indicates transiently spiky usage (negotiable).
3. **Max Scaler AUC**: like (2) but only max-scaled, which better
   separates large spikes.
4. **Outlier percentage**: the fraction of samples at least three
   standard deviations from the mean; spiky series have a small but
   positive fraction, steady ones none.
5. **STL variance decomposition**: ``max(0, 1 - var(I)/var(R))``; a
   low score means the series is residual (spike) driven.
6. **MinMax AUC combined with thresholding**: the concatenated feature
   vector of (2) and (1).

Each summarizer exposes a continuous ``features`` vector (the
clustering input of equation (2)) and a binary ``is_negotiable``
decision (the enumeration grouping deployed in DMA).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..ml.auc import ecdf_auc
from ..ml.outliers import outlier_fraction
from ..ml.scaling import max_scale, minmax_scale
from ..ml.stl import stl_variance_score
from ..telemetry.timeseries import TimeSeries

__all__ = [
    "NegotiabilitySummarizer",
    "ThresholdingSummarizer",
    "MinMaxAucSummarizer",
    "MaxAucSummarizer",
    "OutlierSummarizer",
    "StlSummarizer",
    "CombinedSummarizer",
    "ALL_SUMMARIZERS",
]


class NegotiabilitySummarizer(abc.ABC):
    """Collapses one counter series into negotiability evidence."""

    #: Stable identifier used in reports and Table-4 rows.
    name: str = "abstract"

    @abc.abstractmethod
    def features(self, series: TimeSeries) -> np.ndarray:
        """Continuous feature vector for clustering (equation (2))."""

    @abc.abstractmethod
    def is_negotiable(self, series: TimeSeries) -> bool:
        """Binary negotiability decision for enumeration grouping."""


@dataclass(frozen=True)
class ThresholdingSummarizer(NegotiabilitySummarizer):
    """The production thresholding algorithm (paper Section 3.3).

    Attributes:
        rho: Fraction of the assessment period spent near the peak
            above which the dimension is non-negotiable.  The paper
            tuned rho with sensitivity analyses; 0.1 is the default
            here and ``bench_ablation_rho`` sweeps it.
        window_sigmas: Width of the near-peak window in standard
            deviations below the max (paper: one).
    """

    rho: float = 0.1
    window_sigmas: float = 1.0
    name: str = "thresholding"

    def near_peak_fraction(self, series: TimeSeries) -> float:
        """Fraction of samples within ``window_sigmas``*std of the max."""
        values = series.values
        peak = values.max()
        spread = values.std()
        if spread == 0:
            # A perfectly constant series is always at its peak:
            # sustained demand, nothing to negotiate.
            return 1.0
        window_floor = peak - self.window_sigmas * spread
        return float(np.mean(values >= window_floor))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.near_peak_fraction(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.near_peak_fraction(series) < self.rho


@dataclass(frozen=True)
class MinMaxAucSummarizer(NegotiabilitySummarizer):
    """ECDF AUC after min-max scaling; high AUC = spiky = negotiable."""

    cutoff: float = 0.7
    name: str = "minmax_auc"

    def auc(self, series: TimeSeries) -> float:
        return ecdf_auc(minmax_scale(series.values))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.auc(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc(series) > self.cutoff


@dataclass(frozen=True)
class MaxAucSummarizer(NegotiabilitySummarizer):
    """ECDF AUC after max scaling; "better identifies large spikes"."""

    cutoff: float = 0.6
    name: str = "max_auc"

    def auc(self, series: TimeSeries) -> float:
        return ecdf_auc(max_scale(series.values))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.auc(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc(series) > self.cutoff


@dataclass(frozen=True)
class OutlierSummarizer(NegotiabilitySummarizer):
    """3-sigma outlier share; a positive share flags transient spikes."""

    n_sigma: float = 3.0
    cutoff: float = 0.002
    name: str = "outlier_pct"

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([outlier_fraction(series.values, n_sigma=self.n_sigma)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return outlier_fraction(series.values, n_sigma=self.n_sigma) > self.cutoff


@dataclass(frozen=True)
class StlSummarizer(NegotiabilitySummarizer):
    """STL explained-variance score; residual-driven series negotiate.

    A low explained-variance score alone does not imply spikes: a
    plateau with small unstructured measurement noise is also
    residual-driven, yet its demand is sustained.  The binary decision
    therefore additionally requires the residual to be *large* relative
    to the demand level (coefficient of variation above
    ``min_variation``) before calling the dimension negotiable.

    Attributes:
        period_samples: Seasonal period in samples (one day at the
            10-minute DMA cadence = 144).
        cutoff: Explained-variance score below which the series is
            dominated by irregular variation.
        min_variation: Minimum coefficient of variation (std/mean) for
            the irregular variation to count as spikes worth
            negotiating over.
    """

    period_samples: int = 144
    cutoff: float = 0.6
    min_variation: float = 0.3
    name: str = "stl_variance"

    def score(self, series: TimeSeries) -> float:
        n = len(series)
        period = self.period_samples
        if n < 2 * period:
            # Short trace: fall back to the largest period that fits.
            period = max(2, n // 2)
        return stl_variance_score(series.values, period=period)

    def _coefficient_of_variation(self, series: TimeSeries) -> float:
        mean = series.mean()
        if mean <= 0:
            return 0.0
        return series.std() / mean

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.score(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return (
            self.score(series) < self.cutoff
            and self._coefficient_of_variation(series) > self.min_variation
        )


@dataclass(frozen=True)
class CombinedSummarizer(NegotiabilitySummarizer):
    """MinMax AUC features concatenated with thresholding features.

    The paper's sixth strategy ("MinMax Scaler AUC result combined with
    thresholding").  The binary decision requires both components to
    agree the dimension is negotiable, which is the conservative
    composition: disagreement means the spike evidence is ambiguous
    and the engine should not negotiate the dimension away.
    """

    auc: MinMaxAucSummarizer = MinMaxAucSummarizer()
    thresholding: ThresholdingSummarizer = ThresholdingSummarizer()
    name: str = "minmax_auc_plus_thresholding"

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.concatenate([self.auc.features(series), self.thresholding.features(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc.is_negotiable(series) and self.thresholding.is_negotiable(series)


#: The six strategies compared in paper Table 4, in row order.
ALL_SUMMARIZERS: tuple[NegotiabilitySummarizer, ...] = (
    MinMaxAucSummarizer(),
    MaxAucSummarizer(),
    ThresholdingSummarizer(),
    OutlierSummarizer(),
    StlSummarizer(),
    CombinedSummarizer(),
)
