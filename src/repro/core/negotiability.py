"""Negotiability summarizers (paper Section 3.3).

The Customer Profiler compresses each performance dimension's counter
series into one scalar describing how *negotiable* the dimension is:
"if the spikiness of customers' performance counters is rare and
short-lived, consider that performance dimension negotiable".  The
paper compares six summarization strategies (Section 5.2.1, Table 4):

1. **Thresholding algorithm** (deployed in production): find the max
   peak, form a window one standard deviation below it, and measure the
   fraction of the assessment period spent inside the window.  A long
   stay near the peak (> rho) means the demand is sustained and the
   dimension is *non-negotiable*.
2. **MinMax Scaler AUC**: AUC of the ECDF after min-max scaling; high
   AUC indicates transiently spiky usage (negotiable).
3. **Max Scaler AUC**: like (2) but only max-scaled, which better
   separates large spikes.
4. **Outlier percentage**: the fraction of samples at least three
   standard deviations from the mean; spiky series have a small but
   positive fraction, steady ones none.
5. **STL variance decomposition**: ``max(0, 1 - var(I)/var(R))``; a
   low score means the series is residual (spike) driven.
6. **MinMax AUC combined with thresholding**: the concatenated feature
   vector of (2) and (1).

Each summarizer exposes a continuous ``features`` vector (the
clustering input of equation (2)) and a binary ``is_negotiable``
decision (the enumeration grouping deployed in DMA).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..ml.auc import ecdf_auc
from ..ml.outliers import outlier_fraction
from ..ml.scaling import max_scale, minmax_scale
from ..ml.stl import stl_variance_score
from ..telemetry.streaming import StreamingSeriesStats
from ..telemetry.timeseries import TimeSeries

__all__ = [
    "NegotiabilitySummarizer",
    "ThresholdingSummarizer",
    "MinMaxAucSummarizer",
    "MaxAucSummarizer",
    "OutlierSummarizer",
    "StlSummarizer",
    "CombinedSummarizer",
    "ALL_SUMMARIZERS",
]


class NegotiabilitySummarizer(abc.ABC):
    """Collapses one counter series into negotiability evidence."""

    #: Stable identifier used in reports and Table-4 rows.
    name: str = "abstract"

    @abc.abstractmethod
    def features(self, series: TimeSeries) -> np.ndarray:
        """Continuous feature vector for clustering (equation (2))."""

    @abc.abstractmethod
    def is_negotiable(self, series: TimeSeries) -> bool:
        """Binary negotiability decision for enumeration grouping."""

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        """``(features, is_negotiable)`` in one pass.

        The profiling hot path needs both outputs per dimension;
        summarizers whose decision derives from their feature scalar
        override this to compute the statistic once.  The default
        simply calls both methods.
        """
        return self.features(series), self.is_negotiable(series)

    #: Whether :meth:`summarize_streaming` is implemented.  All six
    #: paper summarizers now advertise it: most reduce to windowed
    #: moments, extremes and rank queries maintained in O(1) per
    #: sample; the STL summarizer re-decomposes the materialized
    #: window (O(window) per refresh, still never a feed re-scan).
    supports_streaming: ClassVar[bool] = False

    def summarize_streaming(
        self, stats: StreamingSeriesStats
    ) -> tuple[np.ndarray, bool]:
        """``(features, is_negotiable)`` from incremental window state.

        The streaming counterpart of :meth:`summarize`: instead of
        re-scanning a series, evaluate the same statistic from a
        :class:`~repro.telemetry.streaming.StreamingSeriesStats`
        maintained in O(1) per sample.  Exact for the AUC, outlier
        and STL summarizers; within the quantile sketch's documented
        rank error for the thresholding algorithm.
        """
        raise NotImplementedError(
            f"summarizer {self.name!r} has no streaming evaluation; "
            "every built-in summarizer supports live profiling -- custom "
            "summarizers must implement summarize_streaming (and set "
            "supports_streaming) to opt in"
        )

    #: Whether :meth:`summarize_batch` is implemented.  Batched
    #: profiling (the fleet fit path's columnar aggregation tail)
    #: stacks same-length windows into one matrix; it is only
    #: worthwhile for summarizers whose statistic vectorizes across
    #: rows with byte-identical results.
    supports_batch: ClassVar[bool] = False

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise ``(features, is_negotiable)`` over stacked windows.

        ``values`` is an ``(n_series, n_samples)`` matrix of raw
        counter windows, one series per row.  Returns an
        ``(n_series, n_features)`` feature matrix and an
        ``(n_series,)`` boolean decision vector whose rows are
        byte-identical to per-series :meth:`summarize` calls.
        """
        raise NotImplementedError(
            f"summarizer {self.name!r} has no batched evaluation; "
            "profile traces one at a time"
        )


@dataclass(frozen=True)
class ThresholdingSummarizer(NegotiabilitySummarizer):
    """The production thresholding algorithm (paper Section 3.3).

    Attributes:
        rho: Fraction of the assessment period spent near the peak
            above which the dimension is non-negotiable.  The paper
            tuned rho with sensitivity analyses; 0.1 is the default
            here and ``bench_ablation_rho`` sweeps it.
        window_sigmas: Width of the near-peak window in standard
            deviations below the max (paper: one).
    """

    rho: float = 0.1
    window_sigmas: float = 1.0
    name: str = "thresholding"

    def near_peak_fraction(self, series: TimeSeries) -> float:
        """Fraction of samples within ``window_sigmas``*std of the max."""
        values = series.values
        peak = values.max()
        spread = values.std()
        if spread == 0:
            # A perfectly constant series is always at its peak:
            # sustained demand, nothing to negotiate.
            return 1.0
        window_floor = peak - self.window_sigmas * spread
        return float(np.mean(values >= window_floor))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.near_peak_fraction(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.near_peak_fraction(series) < self.rho

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        fraction = self.near_peak_fraction(series)
        return np.array([fraction]), fraction < self.rho

    supports_streaming: ClassVar[bool] = True

    def near_peak_fraction_streaming(self, stats: StreamingSeriesStats) -> float:
        """Near-peak fraction from incremental window state.

        Peak and spread are exact (monotonic deque / running moments);
        the rank query runs on the window's quantile sketch and
        inherits its two error terms: compression error (only
        *upward* -- conservative, never negotiates away sustained
        demand) and, transiently after a level shift, the
        block-eviction coverage overhang, which can pull the fraction
        toward the pre-shift level by up to ``block_size / window``
        (~12.5 % at the adaptive default for windows >= 64 samples;
        see :class:`StreamingSeriesStats`) until the stale block
        expires.  Steady-state feeds see compression error only.
        """
        peak = stats.max
        spread = stats.std
        if spread == 0:
            return 1.0
        return stats.fraction_at_least(peak - self.window_sigmas * spread)

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        fraction = self.near_peak_fraction_streaming(stats)
        return np.array([fraction]), fraction < self.rho

    supports_batch: ClassVar[bool] = True

    def near_peak_fraction_batch(self, values: np.ndarray) -> np.ndarray:
        """Row-wise near-peak fractions over stacked counter windows.

        One ``(n_series, n_samples)`` broadcast instead of one Python
        call per series.  Each row reduces along contiguous memory
        exactly as the 1-D path does (same pairwise summation), so
        fractions are byte-identical to :meth:`near_peak_fraction`.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] == 0:
            raise ValueError(
                f"expected a (n_series, n_samples) matrix, got shape {values.shape}"
            )
        peaks = values.max(axis=1)
        spreads = values.std(axis=1)
        floors = peaks - self.window_sigmas * spreads
        fractions = np.mean(values >= floors[:, None], axis=1)
        # A perfectly constant series is always at its peak: sustained
        # demand, nothing to negotiate (same branch as the 1-D path).
        return np.where(spreads == 0, 1.0, fractions)

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fractions = self.near_peak_fraction_batch(values)
        return fractions[:, None], fractions < self.rho


@dataclass(frozen=True)
class MinMaxAucSummarizer(NegotiabilitySummarizer):
    """ECDF AUC after min-max scaling; high AUC = spiky = negotiable."""

    cutoff: float = 0.7
    name: str = "minmax_auc"

    def auc(self, series: TimeSeries) -> float:
        return ecdf_auc(minmax_scale(series.values))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.auc(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc(series) > self.cutoff

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        auc = self.auc(series)
        return np.array([auc]), auc > self.cutoff

    supports_streaming: ClassVar[bool] = True

    def auc_streaming(self, stats: StreamingSeriesStats) -> float:
        """Closed-form windowed AUC: ``1 - (mean - min) / (max - min)``.

        ``ecdf_auc(minmax_scale(x)) == 1 - mean((x - min)/(max - min))``,
        which distributes over the running moments, so the streaming
        value is exact up to running-sum float drift.
        """
        spread = stats.max - stats.min
        if spread <= 0:
            return 1.0  # constant window: minmax_scale maps to zeros
        return 1.0 - (stats.mean - stats.min) / spread

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        auc = self.auc_streaming(stats)
        return np.array([auc]), auc > self.cutoff

    supports_batch: ClassVar[bool] = True

    def auc_batch(self, values: np.ndarray) -> np.ndarray:
        """Row-wise min-max ECDF AUCs over stacked counter windows.

        Replicates the serial ``ecdf_auc(minmax_scale(row))``
        elementwise -- scale, clip, then a row mean reducing along
        contiguous memory with the same pairwise summation as the 1-D
        path -- so values are byte-identical to :meth:`auc`, not just
        the closed form's algebraic equal.  Constant rows take the
        all-zeros branch of :func:`~repro.ml.scaling.minmax_scale`
        (AUC 1.0), exactly as in the serial path.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] == 0:
            raise ValueError(
                f"expected a (n_series, n_samples) matrix, got shape {values.shape}"
            )
        lows = values.min(axis=1)
        spreads = values.max(axis=1) - lows
        # Exactly the serial branch condition: a spread is never
        # negative, so only == 0 takes the all-zeros branch; a NaN
        # spread (NaN in the window) divides and propagates NaN,
        # keeping the not-negotiable decision serial profiling makes.
        constant = spreads == 0
        safe = np.where(constant, 1.0, spreads)
        scaled = (values - lows[:, None]) / safe[:, None]
        aucs = 1.0 - np.clip(scaled, 0.0, 1.0).mean(axis=1)
        return np.where(constant, 1.0, aucs)

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        aucs = self.auc_batch(values)
        return aucs[:, None], aucs > self.cutoff


@dataclass(frozen=True)
class MaxAucSummarizer(NegotiabilitySummarizer):
    """ECDF AUC after max scaling; "better identifies large spikes"."""

    cutoff: float = 0.6
    name: str = "max_auc"

    def auc(self, series: TimeSeries) -> float:
        return ecdf_auc(max_scale(series.values))

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.auc(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc(series) > self.cutoff

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        auc = self.auc(series)
        return np.array([auc]), auc > self.cutoff

    supports_streaming: ClassVar[bool] = True

    def auc_streaming(self, stats: StreamingSeriesStats) -> float:
        """Closed-form windowed AUC: ``1 - mean / max``.

        Matches ``ecdf_auc(max_scale(x))`` exactly for the
        non-negative counter streams the collector emits; a window
        containing negative samples raises, mirroring the batch
        path's normalization check, so exact and streaming profile
        modes never silently diverge.
        """
        peak = stats.max
        if peak <= 0:
            return 1.0  # all-idle window: max_scale maps to zeros
        if stats.min < 0:
            raise ValueError(
                f"max-scale AUC needs non-negative samples; window min is "
                f"{stats.min:.4g}"
            )
        return 1.0 - stats.mean / peak

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        auc = self.auc_streaming(stats)
        return np.array([auc]), auc > self.cutoff

    supports_batch: ClassVar[bool] = True

    def auc_batch(self, values: np.ndarray) -> np.ndarray:
        """Row-wise max-scale ECDF AUCs over stacked counter windows.

        Same elementwise replication as
        :meth:`MinMaxAucSummarizer.auc_batch`, so values are
        byte-identical to per-series :meth:`auc` calls.  Rows with a
        non-positive peak take :func:`~repro.ml.scaling.max_scale`'s
        all-zeros branch (AUC 1.0); a row mixing a positive peak with
        negative samples raises the same normalization error
        :func:`~repro.ml.auc.ecdf_auc` would, so batch and per-series
        profiling never silently diverge.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] == 0:
            raise ValueError(
                f"expected a (n_series, n_samples) matrix, got shape {values.shape}"
            )
        peaks = values.max(axis=1)
        # Serial branch parity, NaN included: ``peak <= 0`` is False
        # for NaN, so a NaN window divides and propagates NaN instead
        # of silently reading as idle (AUC 1.0 = negotiable).
        idle = peaks <= 0
        safe = np.where(idle, 1.0, peaks)
        scaled = values / safe[:, None]
        mins = scaled.min(axis=1)
        maxs = scaled.max(axis=1)
        bad = ~idle & ((mins < -1e-12) | (maxs > 1.0 + 1e-12))
        if np.any(bad):
            row = int(np.argmax(bad))
            raise ValueError(
                f"sample must be normalized into [0, 1]; got range "
                f"[{mins[row]:.4g}, {maxs[row]:.4g}]"
            )
        aucs = 1.0 - np.clip(scaled, 0.0, 1.0).mean(axis=1)
        return np.where(idle, 1.0, aucs)

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        aucs = self.auc_batch(values)
        return aucs[:, None], aucs > self.cutoff


@dataclass(frozen=True)
class OutlierSummarizer(NegotiabilitySummarizer):
    """3-sigma outlier share; a positive share flags transient spikes."""

    n_sigma: float = 3.0
    cutoff: float = 0.002
    name: str = "outlier_pct"

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([outlier_fraction(series.values, n_sigma=self.n_sigma)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return outlier_fraction(series.values, n_sigma=self.n_sigma) > self.cutoff

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        fraction = outlier_fraction(series.values, n_sigma=self.n_sigma)
        return np.array([fraction]), fraction > self.cutoff

    supports_streaming: ClassVar[bool] = True

    def outlier_fraction_streaming(self, stats: StreamingSeriesStats) -> float:
        """3-sigma upward-outlier share from incremental window state.

        The batch statistic is a pure rank query -- the fraction of
        samples at least ``mean + n_sigma * std`` (upward excursions
        only, matching :func:`~repro.ml.outliers.outlier_fraction`'s
        default) -- so it rides the window's quantile sketch directly:
        mean and spread are exact running moments, and the rank query
        inherits the sketch's documented error terms (compression
        error under-counts ranks only, plus the transient one-block
        coverage overhang after level shifts; see
        :class:`~repro.telemetry.streaming.StreamingSeriesStats`).
        A constant window has zero outliers, exactly as in batch.
        """
        spread = stats.std
        if spread == 0:
            return 0.0
        return stats.fraction_at_least(stats.mean + self.n_sigma * spread)

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        fraction = self.outlier_fraction_streaming(stats)
        return np.array([fraction]), fraction > self.cutoff

    supports_batch: ClassVar[bool] = True

    def outlier_fraction_batch(self, values: np.ndarray) -> np.ndarray:
        """Row-wise 3-sigma upward-outlier shares over stacked windows.

        The statistic is a per-row rank query -- the fraction of
        samples at least ``mean + n_sigma * std`` -- and both moments
        reduce along contiguous rows exactly as the 1-D path does
        (same pairwise summation), so fractions are byte-identical to
        :func:`~repro.ml.outliers.outlier_fraction` per row.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] == 0:
            raise ValueError(
                f"expected a (n_series, n_samples) matrix, got shape {values.shape}"
            )
        spreads = values.std(axis=1)
        deviations = values - values.mean(axis=1)[:, None]
        fractions = np.mean(deviations >= self.n_sigma * spreads[:, None], axis=1)
        # A constant series has zero outliers (same branch as the 1-D
        # path; the comparison above would count every sample).
        return np.where(spreads == 0, 0.0, fractions)

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fractions = self.outlier_fraction_batch(values)
        return fractions[:, None], fractions > self.cutoff


@dataclass(frozen=True)
class StlSummarizer(NegotiabilitySummarizer):
    """STL explained-variance score; residual-driven series negotiate.

    A low explained-variance score alone does not imply spikes: a
    plateau with small unstructured measurement noise is also
    residual-driven, yet its demand is sustained.  The binary decision
    therefore additionally requires the residual to be *large* relative
    to the demand level (coefficient of variation above
    ``min_variation``) before calling the dimension negotiable.

    Streaming evaluation materializes the ring buffer's window
    (:meth:`~repro.telemetry.streaming.StreamingSeriesStats.window_values`)
    and runs the same decomposition over it: the LOESS-style smoothing
    couples *every* window sample to every other, so the statistic
    cannot reduce to the O(1) moment/extreme/rank state the other
    summarizers evaluate from.  The refresh is therefore O(window) --
    bounded and re-scan-free (the window is already resident), just
    not constant -- and byte-identical to batch profiling over the
    same window.

    Attributes:
        period_samples: Seasonal period in samples (one day at the
            10-minute DMA cadence = 144).
        cutoff: Explained-variance score below which the series is
            dominated by irregular variation.
        min_variation: Minimum coefficient of variation (std/mean) for
            the irregular variation to count as spikes worth
            negotiating over.
    """

    period_samples: int = 144
    cutoff: float = 0.6
    min_variation: float = 0.3
    name: str = "stl_variance"

    def score(self, series: TimeSeries) -> float:
        n = len(series)
        period = self.period_samples
        if n < 2 * period:
            # Short trace: fall back to the largest period that fits.
            period = max(2, n // 2)
        return stl_variance_score(series.values, period=period)

    def _coefficient_of_variation(self, series: TimeSeries) -> float:
        mean = series.mean()
        if mean <= 0:
            return 0.0
        return series.std() / mean

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.array([self.score(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return (
            self.score(series) < self.cutoff
            and self._coefficient_of_variation(series) > self.min_variation
        )

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        score = self.score(series)  # one STL decomposition, not two
        negotiable = (
            score < self.cutoff
            and self._coefficient_of_variation(series) > self.min_variation
        )
        return np.array([score]), negotiable

    supports_streaming: ClassVar[bool] = True

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        """Decompose the materialized window: exact batch parity.

        O(window) per refresh rather than O(1) -- the seasonal-trend
        decomposition has no incremental form -- but the chronological
        window copy comes straight from the ring buffer, so live
        profiling still never re-scans the feed.
        """
        series = TimeSeries(values=stats.window_values())
        return self.summarize(series)


@dataclass(frozen=True)
class CombinedSummarizer(NegotiabilitySummarizer):
    """MinMax AUC features concatenated with thresholding features.

    The paper's sixth strategy ("MinMax Scaler AUC result combined with
    thresholding").  The binary decision requires both components to
    agree the dimension is negotiable, which is the conservative
    composition: disagreement means the spike evidence is ambiguous
    and the engine should not negotiate the dimension away.
    """

    auc: MinMaxAucSummarizer = MinMaxAucSummarizer()
    thresholding: ThresholdingSummarizer = ThresholdingSummarizer()
    name: str = "minmax_auc_plus_thresholding"

    def features(self, series: TimeSeries) -> np.ndarray:
        return np.concatenate([self.auc.features(series), self.thresholding.features(series)])

    def is_negotiable(self, series: TimeSeries) -> bool:
        return self.auc.is_negotiable(series) and self.thresholding.is_negotiable(series)

    def summarize(self, series: TimeSeries) -> tuple[np.ndarray, bool]:
        auc_features, auc_negotiable = self.auc.summarize(series)
        threshold_features, threshold_negotiable = self.thresholding.summarize(series)
        return (
            np.concatenate([auc_features, threshold_features]),
            auc_negotiable and threshold_negotiable,
        )

    supports_streaming: ClassVar[bool] = True

    def summarize_streaming(self, stats: StreamingSeriesStats) -> tuple[np.ndarray, bool]:
        auc_features, auc_negotiable = self.auc.summarize_streaming(stats)
        threshold_features, threshold_negotiable = self.thresholding.summarize_streaming(stats)
        return (
            np.concatenate([auc_features, threshold_features]),
            auc_negotiable and threshold_negotiable,
        )

    supports_batch: ClassVar[bool] = True

    def summarize_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Both components batched; decisions AND row-wise as in serial."""
        auc_features, auc_negotiable = self.auc.summarize_batch(values)
        threshold_features, threshold_negotiable = self.thresholding.summarize_batch(values)
        return (
            np.concatenate([auc_features, threshold_features], axis=1),
            auc_negotiable & threshold_negotiable,
        )


#: The six strategies compared in paper Table 4, in row order.
ALL_SUMMARIZERS: tuple[NegotiabilitySummarizer, ...] = (
    MinMaxAucSummarizer(),
    MaxAucSummarizer(),
    ThresholdingSummarizer(),
    OutlierSummarizer(),
    StlSummarizer(),
    CombinedSummarizer(),
)
