"""Deterministic fault injection for the fleet runtime.

A :class:`FaultPlan` is a frozen, picklable schedule of failures to
inject into a fleet watch: kill a shard worker when a given tick
reaches it, delay a shard's tick processing, drop a tick's result on
the floor (the work happens, the reply never arrives), or corrupt
stored customer-state blobs.  The plan is *deterministic* -- faults
fire at exact ``(shard_id, tick_id)`` coordinates, never randomly at
run time -- so a faulted run is reproducible and its output can be
byte-compared against an uninterrupted baseline.  Randomness, when
wanted, belongs in the test that builds the plan.

Plans are consulted by the parent at tick-submission time (one
consultation per ``(shard, tick)``, so a fault fires exactly once even
when the tick is later replayed during recovery) and executed:

* ``serial``/``thread`` backends simulate the failure in-process (the
  shard object is discarded, or its executor abandoned);
* the ``process`` backend ships the directive with the tick and the
  worker really dies (``os._exit``), sleeps, or swallows its reply --
  the parent-side supervision machinery sees exactly what a production
  crash looks like.

The default plan is a no-op: supervision code paths check
``plan is None`` or :meth:`FaultPlan.is_noop` and stay out of the hot
path entirely.

Example::

    from repro.faults import FaultPlan
    from repro.fleet import SupervisionConfig, WatchConfig

    plan = FaultPlan(kill_worker=((1, 3),))   # kill shard 1 at tick 3
    config = WatchConfig(
        backend="process",
        supervision=SupervisionConfig(faults=plan),
    )
    updates = list(fleet.watch_fleet(feed, config=config))
    # byte-identical to the unfaulted run: the supervisor restored and
    # replayed shard 1 behind the scenes
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import FleetStore

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures.

    Attributes:
        kill_worker: ``(shard_id, tick_id)`` pairs; the shard's worker
            dies the moment that tick reaches it (before processing, so
            the tick's work is lost with the worker).
        delay_shard: ``(shard_id, tick_id, seconds)`` triples; the
            shard sleeps that long before processing the tick --
            combined with a tick deadline this simulates a hung worker.
        drop_result: ``(shard_id, tick_id)`` pairs; the shard processes
            the tick (state advances) but its reply is lost in transit,
            which only a deadline can detect.
        corrupt_snapshots: customer ids whose stored state blobs
            :meth:`corrupt_store` truncates -- the resume/readmission
            corruption-quarantine path's trigger.
    """

    kill_worker: tuple[tuple[int, int], ...] = ()
    delay_shard: tuple[tuple[int, int, float], ...] = ()
    drop_result: tuple[tuple[int, int], ...] = ()
    corrupt_snapshots: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        # Normalize list inputs to tuples so plans built from literals
        # stay hashable and picklable by value.
        object.__setattr__(
            self, "kill_worker", tuple((int(s), int(t)) for s, t in self.kill_worker)
        )
        object.__setattr__(
            self,
            "delay_shard",
            tuple((int(s), int(t), float(d)) for s, t, d in self.delay_shard),
        )
        object.__setattr__(
            self, "drop_result", tuple((int(s), int(t)) for s, t in self.drop_result)
        )
        object.__setattr__(
            self, "corrupt_snapshots", tuple(str(c) for c in self.corrupt_snapshots)
        )
        for shard_id, tick_id in (*self.kill_worker, *self.drop_result):
            if shard_id < 0 or tick_id < 0:
                raise ValueError(
                    f"fault coordinates must be non-negative, got ({shard_id}, {tick_id})"
                )
        for shard_id, tick_id, seconds in self.delay_shard:
            if shard_id < 0 or tick_id < 0:
                raise ValueError(
                    f"fault coordinates must be non-negative, got ({shard_id}, {tick_id})"
                )
            if seconds <= 0:
                raise ValueError(f"delay seconds must be positive, got {seconds!r}")

    def is_noop(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not (
            self.kill_worker or self.delay_shard or self.drop_result or self.corrupt_snapshots
        )

    def kill_at(self, shard_id: int, tick_id: int) -> bool:
        """Whether the shard's worker dies when this tick reaches it."""
        return (shard_id, tick_id) in self.kill_worker

    def delay_at(self, shard_id: int, tick_id: int) -> float:
        """Injected processing delay in seconds (0.0 when none)."""
        for fault_shard, fault_tick, seconds in self.delay_shard:
            if fault_shard == shard_id and fault_tick == tick_id:
                return seconds
        return 0.0

    def drop_at(self, shard_id: int, tick_id: int) -> bool:
        """Whether the shard's reply for this tick is lost in transit."""
        return (shard_id, tick_id) in self.drop_result

    def corrupt_store(self, store: "FleetStore") -> int:
        """Corrupt the scheduled customers' stored state blobs.

        Returns the number of rows actually corrupted (customers with
        no stored state are skipped).
        """
        corrupted = 0
        for customer_id in self.corrupt_snapshots:
            if store.corrupt_customer_state(customer_id):
                corrupted += 1
        return corrupted
