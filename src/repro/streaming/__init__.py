"""Online assessment: live recommendations over streaming telemetry.

Turns the one-shot recommender into a continuously-adaptive service:
bounded-window trace ingestion
(:class:`~repro.telemetry.streaming.StreamingTraceBuilder`), O(n_skus
* n_dims) per-sample probability maintenance
(:class:`~repro.core.incremental.IncrementalThrottlingEstimator`),
and drift-gated re-assessment (:class:`LiveRecommender`), so
recommendations stay fresh without re-running the batch pipeline per
sample.
"""

from .drift import DEFAULT_DRIFT_THRESHOLD, DriftDetector, DriftReport
from .live import (
    DEFAULT_MIN_REFRESH_SAMPLES,
    LiveAssessmentState,
    LiveRecommender,
    LiveUpdate,
)

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_MIN_REFRESH_SAMPLES",
    "DriftDetector",
    "DriftReport",
    "LiveAssessmentState",
    "LiveRecommender",
    "LiveUpdate",
]
