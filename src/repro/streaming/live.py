"""Live SKU recommendation over continuously arriving telemetry.

:class:`LiveRecommender` turns the one-shot Doppler assessment into a
service loop.  Per sample it does only cheap work -- ring-buffer
ingestion plus an O(n_skus * n_dims) incremental estimate update --
and it re-runs the full pipeline (curve construction, profiling,
group-matched selection) only when the incremental estimates have
drifted from the ones the current recommendation was built on.  Curve
construction goes through a memoized
:class:`~repro.fleet.cache.CurveCache`, so re-assessing an unchanged
window (an explicit refresh between samples, a replayed feed) costs a
lookup; a drift refresh on a moved window is a genuine rebuild.

The result is a recommendation stream whose freshness is bounded by
the drift threshold while per-sample cost stays flat in the window
length -- the property `benchmarks/bench_streaming.py` quantifies
against rebuild-per-sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from ..catalog.models import DeploymentType
from ..core.engine import DopplerEngine
from ..core.incremental import IncrementalThrottlingEstimator
from ..core.ppm import gp_iops_overrides
from ..core.types import DopplerRecommendation
from ..fleet.cache import CurveCache, catalog_signature, curve_cache_key
from ..telemetry.counters import DB_DIMENSIONS, MI_DIMENSIONS, PerfDimension
from ..telemetry.streaming import (
    DEFAULT_STREAM_WINDOW,
    StreamingSeriesStats,
    StreamingTraceBuilder,
)
from ..telemetry.timeseries import DEFAULT_SAMPLE_INTERVAL_MINUTES
from .drift import DEFAULT_DRIFT_THRESHOLD, DriftDetector, DriftReport

__all__ = [
    "DEFAULT_LIVE_CACHE_SIZE",
    "DEFAULT_MIN_REFRESH_SAMPLES",
    "LiveAssessmentState",
    "LiveRecommender",
    "LiveUpdate",
    "flatten_state",
    "unflatten_state",
]

#: Samples required before the first recommendation is issued -- two
#: hours at the DMA cadence, enough for the profiler's summary
#: statistics to mean anything.
DEFAULT_MIN_REFRESH_SAMPLES = 12

#: Default curve-cache capacity of one live assessment.  Live windows
#: fingerprint freshly after every drift, so only repeated windows
#: ever hit; a small cache captures those without hoarding memory.
DEFAULT_LIVE_CACHE_SIZE = 32


@dataclass(frozen=True)
class LiveUpdate:
    """Outcome of observing one telemetry sample.

    Attributes:
        n_seen: Samples the stream has delivered so far.
        n_window: Samples currently inside the assessment window.
        refreshed: Whether this sample triggered a full re-assessment.
        drift: The drift check that made the call (None while warming
            up or on the very first assessment).
        recommendation: The current recommendation -- fresh when
            ``refreshed``, otherwise the still-valid previous one;
            None during warm-up.
    """

    n_seen: int
    n_window: int
    refreshed: bool
    drift: DriftReport | None
    recommendation: DopplerRecommendation | None

    @property
    def has_recommendation(self) -> bool:
        return self.recommendation is not None


@dataclass(frozen=True)
class LiveAssessmentState:
    """Picklable snapshot of one live assessment's mutable state.

    The worker-handoff unit: everything one customer's assessment has
    accumulated -- window ring buffers, violation counts, the drift
    rebase point, streaming profile stats, the recommendation in
    force -- *without* the engine or curve cache it runs against.  A
    receiving worker constructs an identically configured
    :class:`LiveRecommender` around its own engine and calls
    :meth:`LiveRecommender.restore_state`; the restored loop continues
    the stream exactly where the source left off.

    The sharded fleet watch does not ship state in steady operation
    (sticky routing keeps each customer on one worker for a watch's
    lifetime; workers build state in place on first sight) -- this is
    the migration primitive for moving an assessment between
    processes: checkpointing, replaying, or the dynamic rebalancing
    the ROADMAP tracks.

    Attributes:
        deployment_value: Target deployment (restore-compatibility
            check).
        window: Assessment window length (check).
        dimensions: Ingested counter dimensions, in ring order (check).
        profile_mode: Profiling strategy (check; streaming profile
            stats only exist in ``streaming`` mode).
        entity_id: The assessed customer.
        builder: :meth:`~repro.telemetry.streaming.StreamingTraceBuilder.state_dict`.
        estimator: :meth:`~repro.core.incremental.IncrementalThrottlingEstimator.state_dict`.
        detector: :meth:`~repro.streaming.drift.DriftDetector.state_dict`.
        profile_stats: Per-dimension
            :meth:`~repro.telemetry.streaming.StreamingSeriesStats.state_dict`
            snapshots (empty in ``exact`` mode).
        recommendation: The recommendation in force, if any.
        n_refreshes: Full re-assessments performed so far.
        epoch: Migration epoch of the source recommender at snapshot
            time.  Each restore bumps the receiving recommender past
            the snapshot's epoch, so a snapshot from an earlier hop of
            a migration chain can never silently overwrite later
            state (:meth:`LiveRecommender.restore_state` rejects it).
    """

    deployment_value: str
    window: int
    dimensions: tuple[PerfDimension, ...]
    profile_mode: str
    entity_id: str
    builder: dict
    estimator: dict
    detector: dict
    profile_stats: tuple[tuple[PerfDimension, dict], ...]
    recommendation: DopplerRecommendation | None
    n_refreshes: int
    epoch: int = 0


class LiveRecommender:
    """Online assessment loop around a fitted :class:`DopplerEngine`.

    Typical use::

        live = LiveRecommender(engine, DeploymentType.SQL_DB, window=1008)
        for sample in telemetry_feed:          # {dimension: value}
            update = live.observe(sample)
            if update.refreshed:
                publish(update.recommendation)

    Attributes:
        engine: The wrapped engine (fit it first for profile-matched
            selections; cold-start heuristics apply otherwise).
        deployment: Target deployment type.
        builder: The sliding-window trace ingester.
        estimator: The incremental throttling estimator driving drift
            detection.  For MI targets each refresh folds the planned
            file layout's GP IOPS limit into the estimator's capacity
            matrix when the layout changed (one window replay per
            change), so drift detection and the two-step MI procedure
            agree on capacities between refreshes.
        detector: The drift detector gating refreshes.
        cache: Memoized curve store.  Drifted windows have fresh
            fingerprints, so entries only pay off for repeated windows
            (explicit refreshes, replayed feeds); a small private
            cache is the default, and sharing one across live
            assessments mainly bounds their collective footprint.
        min_refresh_samples: Warm-up length before the first
            recommendation.
        profile_mode: ``exact`` re-profiles the window snapshot on
            every refresh (the batch path's summarizers, O(window));
            ``streaming`` profiles from per-dimension
            :class:`~repro.telemetry.streaming.StreamingSeriesStats`
            maintained in O(1) per sample -- exact for the AUC
            summarizers, within the quantile sketch's documented rank
            error for thresholding.  Requires a summarizer with
            ``supports_streaming``.
    """

    def __init__(
        self,
        engine: DopplerEngine,
        deployment: DeploymentType,
        window: int = DEFAULT_STREAM_WINDOW,
        interval_minutes: float = DEFAULT_SAMPLE_INTERVAL_MINUTES,
        dimensions: tuple[PerfDimension, ...] | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        min_refresh_samples: int = DEFAULT_MIN_REFRESH_SAMPLES,
        cache: CurveCache | None = None,
        entity_id: str = "live",
        profile_mode: Literal["exact", "streaming"] = "exact",
    ) -> None:
        self.validate_config(window, min_refresh_samples, profile_mode, engine.summarizer)
        if dimensions is None:
            dimensions = (
                DB_DIMENSIONS if deployment is DeploymentType.SQL_DB else MI_DIMENSIONS
            )
        self.engine = engine
        self.deployment = deployment
        self.min_refresh_samples = min_refresh_samples
        self.builder = StreamingTraceBuilder(
            dimensions=dimensions,
            window=window,
            interval_minutes=interval_minutes,
            entity_id=entity_id,
        )
        # Curve construction filters candidates per snapshot (storage
        # fit, MI tiers); the estimator tracks the full deployment
        # candidate set so drift covers every SKU a refresh could rank.
        candidates = list(engine.catalog.for_deployment(deployment))
        self.estimator = IncrementalThrottlingEstimator(
            candidates, dimensions, window=window
        )
        self._candidates = tuple(candidates)
        self._sku_names = tuple(sku.name for sku in candidates)
        self.detector = DriftDetector(threshold=drift_threshold)
        self.cache = cache if cache is not None else CurveCache(DEFAULT_LIVE_CACHE_SIZE)
        self._catalog_signature = catalog_signature(engine.catalog)
        self._recommendation: DopplerRecommendation | None = None
        self._n_refreshes = 0
        self._last_curve_key: tuple | None = None
        self._state_epoch = 0
        self.profile_mode = profile_mode
        self._profile_columns: tuple[tuple[int, StreamingSeriesStats], ...] = ()
        self._profile_stats: dict[PerfDimension, StreamingSeriesStats] = {}
        if profile_mode == "streaming":
            profiled = engine.profiler_for(deployment).dimensions
            self._profile_stats = {
                dim: StreamingSeriesStats(window=window)
                for dim in profiled
                if dim in dimensions
            }
            self._profile_columns = tuple(
                (dimensions.index(dim), stats)
                for dim, stats in self._profile_stats.items()
            )

    @staticmethod
    def validate_config(
        window: int,
        min_refresh_samples: int,
        profile_mode: str,
        summarizer=None,
    ) -> None:
        """Validate live-assessment parameters; the single source of truth.

        Shared between the constructor and fleet-watch configuration
        (:class:`~repro.fleet.backends.ShardAssessmentConfig`), so a
        misconfigured sharded watch fails at the call site with
        exactly the message a direct construction would raise.

        Args:
            window: Sliding assessment window, in samples.
            min_refresh_samples: Warm-up length before the first
                recommendation.
            profile_mode: ``exact`` or ``streaming``.
            summarizer: When given and ``profile_mode`` is
                ``streaming``, must advertise ``supports_streaming``.

        Raises:
            ValueError: On any violated constraint.
        """
        if min_refresh_samples < 1:
            raise ValueError(
                f"min_refresh_samples must be >= 1, got {min_refresh_samples!r}"
            )
        if profile_mode not in ("exact", "streaming"):
            raise ValueError(f"unknown profile mode {profile_mode!r}")
        if window < min_refresh_samples:
            # The warm-up gate compares against n_window, which never
            # exceeds the window: a smaller window would wait forever.
            raise ValueError(
                f"window ({window}) must be >= min_refresh_samples "
                f"({min_refresh_samples}), or no recommendation is ever issued"
            )
        if (
            profile_mode == "streaming"
            and summarizer is not None
            and not getattr(summarizer, "supports_streaming", False)
        ):
            raise ValueError(
                f"summarizer {summarizer.name!r} has no streaming "
                "evaluation; use profile_mode='exact'"
            )

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------
    def observe(self, sample: Mapping[PerfDimension, float]) -> LiveUpdate:
        """Ingest one sample; refresh the recommendation if it drifted.

        Per-sample cost is O(n_skus * n_dims) unless a refresh fires.
        """
        # The builder validates the sample once; the estimator takes
        # the parsed row directly (same dimension tuple by construction).
        row = self.builder.append(sample)
        self.estimator.update_vector(row)
        for column, stats in self._profile_columns:
            stats.update(row[column])
        if self.builder.n_window < self.min_refresh_samples:
            return self._update(refreshed=False, drift=None)
        if self._recommendation is None:
            self.refresh()
            return self._update(refreshed=True, drift=None)
        drift = self.detector.check_vector(self.estimator.probabilities())
        if drift.drifted:
            self.refresh()
            return self._update(refreshed=True, drift=drift)
        return self._update(refreshed=False, drift=drift)

    def refresh(self) -> DopplerRecommendation:
        """Run the full assessment on the current window, now.

        Rebases drift detection on the estimates the new curve was
        built from, so subsequent drift means "the world moved since
        this recommendation".  For MI targets the refresh also folds
        the planned file layout's GP IOPS limit into the incremental
        estimator whenever the layout changed (MI streaming parity:
        drift detection sees the same capacity matrix the curve was
        built with, at the cost of one window replay per layout
        change).
        """
        trace = self.builder.snapshot()
        mi_plan = None
        if self.deployment is DeploymentType.SQL_MI:
            # Plan Step-1 storage once per refresh: the override sync
            # and the curve build below share the same plan.
            mi_plan = self.engine.ppm.plan_mi_storage(trace)
            self._sync_mi_overrides(trace, mi_plan)
        key = curve_cache_key(
            trace, self.deployment.value, None, self._catalog_signature
        )
        curve = self.cache.get_or_build(
            key,
            lambda: self.engine.ppm.build_curve(
                trace, self.deployment, mi_plan=mi_plan
            ),
        )
        self._last_curve_key = key
        profile = None
        if self.profile_mode == "streaming":
            profile = self.engine.profiler_for(self.deployment).profile_streaming(
                self._profile_stats, entity_id=self.builder.entity_id
            )
        self._recommendation = self.engine.recommend(
            trace, self.deployment, curve=curve, profile=profile
        )
        self.detector.rebase_vector(
            self._sku_names, self.estimator.probabilities()
        )
        self._n_refreshes += 1
        return self._recommendation

    def _sync_mi_overrides(self, trace, plan) -> None:
        """Fold the current MI file layout's IOPS cap into the estimator."""
        overrides = gp_iops_overrides(self._candidates, plan)
        if overrides != (self.estimator.iops_overrides or {}):
            self.estimator.rebase_capacity(overrides or None, trace)

    # ------------------------------------------------------------------
    # Snapshot / restore (worker handoff)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> LiveAssessmentState:
        """Freeze the assessment's mutable state for handoff.

        Everything the loop has accumulated, deep-copied and
        picklable, *without* the engine or curve cache (workers bring
        their own).  The whole recommender object also pickles
        directly -- the curve cache drops only its lock -- but that
        ships a private copy of the engine with every customer;
        snapshot/restore is the cheap per-customer handoff.
        """
        return LiveAssessmentState(
            deployment_value=self.deployment.value,
            window=self.builder.window,
            dimensions=self.builder.dimensions,
            profile_mode=self.profile_mode,
            entity_id=self.builder.entity_id,
            builder=self.builder.state_dict(),
            estimator=self.estimator.state_dict(),
            detector=self.detector.state_dict(),
            profile_stats=tuple(
                (dim, stats.state_dict()) for dim, stats in self._profile_stats.items()
            ),
            recommendation=self._recommendation,
            n_refreshes=self._n_refreshes,
            epoch=self._state_epoch,
        )

    def restore_state(self, state: LiveAssessmentState) -> None:
        """Adopt a :meth:`snapshot_state` snapshot; the inverse operation.

        The receiving recommender must be constructed with the same
        deployment, window, dimensions and profile mode as the source
        (the snapshot carries them for verification); engine and curve
        cache are this instance's own.

        Restores are additionally *epoch-guarded* for migration
        safety: each restore leaves this recommender one epoch past
        the snapshot it adopted, so replaying a snapshot taken before
        this state's last hop (a stale handoff in a migration chain)
        is rejected instead of silently rolling the stream back.

        Raises:
            ValueError: If the snapshot's configuration does not match
                this recommender's, or the snapshot's epoch is older
                than state already restored here.
        """
        mismatches = [
            f"{label}: snapshot {theirs!r} != recommender {ours!r}"
            for label, theirs, ours in (
                ("deployment", state.deployment_value, self.deployment.value),
                ("window", state.window, self.builder.window),
                ("dimensions", state.dimensions, self.builder.dimensions),
                ("profile_mode", state.profile_mode, self.profile_mode),
            )
            if theirs != ours
        ]
        if mismatches:
            raise ValueError(
                "live state snapshot is not restorable here -- "
                + "; ".join(mismatches)
            )
        if state.epoch < self._state_epoch:
            raise ValueError(
                f"stale live state snapshot: epoch {state.epoch} precedes this "
                f"recommender's epoch {self._state_epoch}; the assessment has "
                "already moved on past that handoff"
            )
        self.builder.load_state(state.builder)
        self.builder.entity_id = state.entity_id
        self.estimator.load_state(state.estimator)
        self.detector.load_state(state.detector)
        if self.profile_mode == "streaming":
            snapshot_stats = dict(state.profile_stats)
            if set(snapshot_stats) != set(self._profile_stats):
                raise ValueError(
                    "live state snapshot profiles "
                    f"{sorted(dim.name for dim in snapshot_stats)}; this "
                    "recommender profiles "
                    f"{sorted(dim.name for dim in self._profile_stats)}"
                )
            for dim, stats in self._profile_stats.items():
                stats.load_state(snapshot_stats[dim])
        self._recommendation = state.recommendation
        self._n_refreshes = state.n_refreshes
        self._state_epoch = state.epoch + 1
        self._last_curve_key = None  # curves stayed with the source's cache

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def recommendation(self) -> DopplerRecommendation | None:
        """The recommendation currently in force, if any."""
        return self._recommendation

    @property
    def n_refreshes(self) -> int:
        """Full re-assessments performed so far."""
        return self._n_refreshes

    @property
    def last_curve_key(self) -> tuple | None:
        """Cache key of the most recent refresh's curve, if any.

        What shard-scoped cache accounting hangs on: the fleet watch
        records each refreshed key against its customer so a migration
        can release exactly that customer's entries on the source
        shard.  Reset on restore -- entries never migrate; the target
        rebuilds them.
        """
        return self._last_curve_key

    @property
    def state_epoch(self) -> int:
        """Migration epoch: restores adopted by this recommender so far."""
        return self._state_epoch

    def _update(self, refreshed: bool, drift: DriftReport | None) -> LiveUpdate:
        return LiveUpdate(
            n_seen=self.builder.n_seen,
            n_window=self.builder.n_window,
            refreshed=refreshed,
            drift=drift,
            recommendation=self._recommendation,
        )


# ----------------------------------------------------------------------
# Arena framing (zero-copy state handoff)
# ----------------------------------------------------------------------
def flatten_state(state: LiveAssessmentState, arrays: list) -> dict:
    """Split a :class:`LiveAssessmentState` into arrays + skeleton.

    The zero-copy handoff's harvest pass: every numpy payload in the
    snapshot -- ring buffers, the violation ring, sketch blocks, deque
    columns, the drift baseline -- is appended to ``arrays`` (to ride
    a shared-memory frame as raw bytes), and the returned skeleton
    holds only scalars, small strings/enums and array indices, cheap
    to pickle.  :func:`unflatten_state` is the exact inverse:
    ``unflatten_state(flatten_state(s, a), a)`` reproduces ``s``
    byte-identically, which the handoff test suite pins on every
    migration/restore/checkpoint path.
    """
    return {
        "deployment_value": state.deployment_value,
        "window": state.window,
        "dimensions": state.dimensions,
        "profile_mode": state.profile_mode,
        "entity_id": state.entity_id,
        "builder": StreamingTraceBuilder.state_arrays(state.builder, arrays),
        "estimator": IncrementalThrottlingEstimator.state_arrays(
            state.estimator, arrays
        ),
        "detector": DriftDetector.state_arrays(state.detector, arrays),
        "profile_stats": tuple(
            (dim, StreamingSeriesStats.state_arrays(stats, arrays))
            for dim, stats in state.profile_stats
        ),
        "recommendation": state.recommendation,
        "n_refreshes": state.n_refreshes,
        "epoch": state.epoch,
    }


def unflatten_state(skeleton: dict, arrays: list) -> LiveAssessmentState:
    """Rebuild a :class:`LiveAssessmentState` from a framed skeleton.

    Copies every array out of ``arrays`` (which may view shared
    memory), so the rebuilt state owns its buffers and survives the
    frame's release.
    """
    return LiveAssessmentState(
        deployment_value=skeleton["deployment_value"],
        window=skeleton["window"],
        dimensions=skeleton["dimensions"],
        profile_mode=skeleton["profile_mode"],
        entity_id=skeleton["entity_id"],
        builder=StreamingTraceBuilder.state_from_arrays(skeleton["builder"], arrays),
        estimator=IncrementalThrottlingEstimator.state_from_arrays(
            skeleton["estimator"], arrays
        ),
        detector=DriftDetector.state_from_arrays(skeleton["detector"], arrays),
        profile_stats=tuple(
            (dim, StreamingSeriesStats.state_from_arrays(stats_skeleton, arrays))
            for dim, stats_skeleton in skeleton["profile_stats"]
        ),
        recommendation=skeleton["recommendation"],
        n_refreshes=skeleton["n_refreshes"],
        epoch=skeleton["epoch"],
    )
