"""Drift detection between live estimates and the last-built curve.

A live assessment keeps two views of the same statistic: the
incremental per-SKU throttling estimates, updated on every sample, and
the price-performance curve, rebuilt only occasionally because curve
construction (and the profiling/selection that follows) costs a full
pass over the window.  The :class:`DriftDetector` decides when the two
have diverged enough that the curve is stale: it remembers the
estimates the last curve was built on (the *baseline*) and reports the
largest per-SKU divergence of the current estimates from it.

Probability drift is the right trigger -- not sample count, not wall
time -- because SKU selection is a function of the probabilities
alone: while every SKU's estimate is within ``threshold`` of the
baseline, the curve the customer sees is within ``threshold`` of the
truth, and re-ranking cannot move by more than neighbouring points.

The check runs on the per-sample hot path, so the baseline is stored
as an ndarray aligned with a fixed SKU-name tuple and the divergence
is one vectorized pass; the mapping-based methods exist for callers
whose SKU sets vary between checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["DriftDetector", "DriftReport", "DEFAULT_DRIFT_THRESHOLD"]

#: Default refresh trigger: a 2-percentage-point shift in any SKU's
#: throttling probability, half the paper's coarsest negotiability
#: band, so re-ranking stays ahead of customer-visible changes.
DEFAULT_DRIFT_THRESHOLD = 0.02


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check.

    Attributes:
        max_divergence: Largest per-SKU absolute probability shift
            since the baseline.
        worst_sku: SKU name realizing ``max_divergence`` (None when
            the baseline is empty).
        threshold: The trigger level the check compared against.
    """

    max_divergence: float
    worst_sku: str | None
    threshold: float

    @property
    def drifted(self) -> bool:
        """True when the divergence crosses the refresh threshold."""
        return self.max_divergence > self.threshold


class DriftDetector:
    """Tracks per-SKU probability divergence from a rebase point.

    Attributes:
        threshold: Divergence level at which :class:`DriftReport`
            reports drift.
    """

    def __init__(self, threshold: float = DEFAULT_DRIFT_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold!r}")
        self.threshold = threshold
        self._names: tuple[str, ...] = ()
        self._baseline: np.ndarray | None = None

    @property
    def has_baseline(self) -> bool:
        return self._baseline is not None and self._baseline.size > 0

    # ------------------------------------------------------------------
    # Vectorized interface (the per-sample hot path)
    # ------------------------------------------------------------------
    def rebase_vector(self, names: Sequence[str], values: np.ndarray) -> None:
        """Adopt aligned estimates as the new comparison point.

        Called whenever a fresh curve is issued: from here on, drift
        means divergence from what that curve was built on.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (len(names),):
            raise ValueError(
                f"expected {len(names)} values, got shape {values.shape}"
            )
        self._names = tuple(names)
        self._baseline = values.copy()

    def check_vector(self, values: np.ndarray) -> DriftReport:
        """Compare estimates aligned with the rebased names (one pass).

        ``values`` must follow the same SKU order as the last
        :meth:`rebase_vector` call -- the live loop guarantees this by
        always reading the same estimator.
        """
        if self._baseline is None or self._baseline.size == 0:
            return DriftReport(
                max_divergence=0.0, worst_sku=None, threshold=self.threshold
            )
        values = np.asarray(values, dtype=float)
        if values.shape != self._baseline.shape:
            raise ValueError(
                f"expected {self._baseline.shape[0]} values, got shape {values.shape}"
            )
        divergence = np.abs(values - self._baseline)
        worst = int(np.argmax(divergence))
        return DriftReport(
            max_divergence=float(divergence[worst]),
            worst_sku=self._names[worst],
            threshold=self.threshold,
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (worker handoff)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Picklable snapshot of the rebase point."""
        return {
            "names": self._names,
            "baseline": None if self._baseline is None else self._baseline.copy(),
        }

    def load_state(self, state: dict) -> None:
        """Adopt a :meth:`state_dict` snapshot; the inverse operation."""
        baseline = state["baseline"]
        names = tuple(state["names"])
        if baseline is not None:
            baseline = np.asarray(baseline, dtype=float).copy()
            if baseline.shape != (len(names),):
                raise ValueError(
                    f"snapshot baseline shape {baseline.shape} does not match "
                    f"its {len(names)} SKU names"
                )
        self._names = names
        self._baseline = baseline

    @staticmethod
    def state_arrays(state: dict, arrays: list[np.ndarray]) -> dict:
        """Flatten a :meth:`state_dict` into numpy payloads + skeleton.

        The baseline vector rides in ``arrays``; the SKU-name tuple
        (small interned strings) stays in the skeleton.
        """
        baseline = state["baseline"]
        base = len(arrays)
        if baseline is not None:
            arrays.append(np.asarray(baseline, dtype=np.float64))
        return {
            "names": state["names"],
            "has_baseline": baseline is not None,
            "base": base,
        }

    @staticmethod
    def state_from_arrays(skeleton: dict, arrays: list[np.ndarray]) -> dict:
        """Rebuild a :meth:`state_dict` from framed arrays (copies out)."""
        return {
            "names": skeleton["names"],
            "baseline": np.array(arrays[skeleton["base"]], dtype=float)
            if skeleton["has_baseline"]
            else None,
        }

    # ------------------------------------------------------------------
    # Mapping interface (varying SKU sets)
    # ------------------------------------------------------------------
    def rebase(self, estimates: Mapping[str, float]) -> None:
        """Adopt the current estimates as the new comparison point."""
        self.rebase_vector(tuple(estimates), np.fromiter(estimates.values(), float))

    def check(self, estimates: Mapping[str, float]) -> DriftReport:
        """Compare current estimates against the baseline.

        SKUs absent from the baseline (or from ``estimates``) are
        ignored: drift is only meaningful for SKUs both views cover.
        """
        if self._baseline is None:
            return DriftReport(
                max_divergence=0.0, worst_sku=None, threshold=self.threshold
            )
        baseline = dict(zip(self._names, self._baseline))
        max_divergence = 0.0
        worst: str | None = None
        for name, probability in estimates.items():
            base = baseline.get(name)
            if base is None:
                continue
            divergence = abs(probability - base)
            if divergence > max_divergence or worst is None:
                max_divergence = divergence
                worst = name
        return DriftReport(
            max_divergence=max_divergence, worst_sku=worst, threshold=self.threshold
        )
