"""Data model for Azure SQL PaaS SKUs.

The paper (Section 2) narrows its scope to the Azure SQL PaaS surface:
two *deployment types* -- Azure SQL Database (DB) and Azure SQL Managed
Instance (MI) -- each offered in two *service tiers* -- General Purpose
(GP) and Business Critical (BC).  A SKU is one concrete offering: a
deployment type, a service tier, a number of virtual cores and a set of
resource capacities (memory, IOPS, log rate, storage, IO latency) plus
an hourly price.

Everything downstream of the catalog (the Price-Performance Modeler,
the baseline strategy, the profiling pipeline) consumes SKUs only
through :class:`SkuSpec`: a capacity vector plus a price.  That is what
makes the substitution of the proprietary Azure billing catalog with a
generated one sound -- see DESIGN.md section 2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

__all__ = [
    "DeploymentType",
    "ServiceTier",
    "HardwareGeneration",
    "ResourceLimits",
    "SkuSpec",
    "HOURS_PER_MONTH",
]

#: Average hours in a month used by the billing interface to convert the
#: hourly list price into the monthly subscription shown on the
#: price-performance curve's x axis (Figures 4b, 5, 12 of the paper).
HOURS_PER_MONTH = 730.0


class DeploymentType(enum.Enum):
    """Azure SQL PaaS deployment model (paper Section 2)."""

    SQL_DB = "SQL_DB"
    SQL_MI = "SQL_MI"

    @property
    def short_name(self) -> str:
        """Short label used in reports: ``DB`` or ``MI``."""
        return "DB" if self is DeploymentType.SQL_DB else "MI"


class ServiceTier(enum.Enum):
    """vCore-model service tier (paper Section 2).

    The Business Critical tier offers higher transaction rates and
    lower-latency IO than General Purpose at a higher price.
    """

    GENERAL_PURPOSE = "GP"
    BUSINESS_CRITICAL = "BC"

    @property
    def short_name(self) -> str:
        return self.value


class HardwareGeneration(enum.Enum):
    """Compute hardware generation.

    Azure segments SKUs further by hardware series; the catalog
    generator emits the standard series (Gen5) plus a premium series so
    that the generated catalog reaches the paper's "over 200 PaaS SKUs"
    scale with realistic price/capacity spreads.
    """

    GEN5 = "Gen5"
    PREMIUM_SERIES = "PremiumSeries"

    @property
    def memory_per_vcore_gb(self) -> float:
        """GB of max server memory per vCore for this generation.

        Gen5 exposes 5.2 GB/vCore (Figure 1 of the paper: 2 vCores ->
        10.4 GB); the premium series exposes 7.0 GB/vCore.
        """
        if self is HardwareGeneration.GEN5:
            return 5.2
        return 7.0

    @property
    def price_multiplier(self) -> float:
        """Relative hourly price of this generation versus Gen5."""
        if self is HardwareGeneration.GEN5:
            return 1.0
        return 1.15


@dataclass(frozen=True, slots=True)
class ResourceLimits:
    """Maximum capacities of a SKU along each performance dimension.

    These are the ``R_i`` upper bounds of equation (1) in the paper:
    the throttling probability of a SKU is the probability that the
    customer's resource demand exceeds any of these limits.

    Attributes:
        vcores: Number of virtual cores.
        max_memory_gb: Maximum server memory in GB.
        max_data_iops: Maximum data-file IOPS.
        max_log_rate_mbps: Maximum transaction-log write rate in MB/s.
        max_data_size_gb: Maximum database (or instance) storage in GB.
        min_io_latency_ms: Best-case IO latency in milliseconds.  The
            paper treats latency inversely: a SKU *satisfies* a latency
            requirement when its floor latency is at or below the
            latency the workload needs.
    """

    vcores: float
    max_memory_gb: float
    max_data_iops: float
    max_log_rate_mbps: float
    max_data_size_gb: float
    min_io_latency_ms: float

    def __post_init__(self) -> None:
        for name in (
            "vcores",
            "max_memory_gb",
            "max_data_iops",
            "max_log_rate_mbps",
            "max_data_size_gb",
            "min_io_latency_ms",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be a positive finite number, got {value!r}")

    def dominates(self, other: "ResourceLimits") -> bool:
        """Return True when this limit set is at least as capable as ``other``.

        Capability is monotone in every dimension except latency, where
        *lower* is better.
        """
        return (
            self.vcores >= other.vcores
            and self.max_memory_gb >= other.max_memory_gb
            and self.max_data_iops >= other.max_data_iops
            and self.max_log_rate_mbps >= other.max_log_rate_mbps
            and self.max_data_size_gb >= other.max_data_size_gb
            and self.min_io_latency_ms <= other.min_io_latency_ms
        )

    def with_iops(self, max_data_iops: float) -> "ResourceLimits":
        """Return a copy with the IOPS limit replaced.

        Used by the MI storage-tier step (paper Section 3.2): the
        instance-level IOPS limit of an MI General Purpose SKU is the
        sum of the premium-disk limits of its file layout, not a fixed
        per-SKU constant.
        """
        return replace(self, max_data_iops=max_data_iops)

    # Explicit pickle fast path: the default slots-dataclass protocol
    # resolves ``dataclasses.fields()`` per instance, which dominates
    # fleet checkpoint encoding (hundreds of limit objects per customer
    # state).  Values were validated at construction, so restore skips
    # ``__post_init__`` by design.
    def __getstate__(self) -> tuple:
        return (
            self.vcores,
            self.max_memory_gb,
            self.max_data_iops,
            self.max_log_rate_mbps,
            self.max_data_size_gb,
            self.min_io_latency_ms,
        )

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(ResourceLimits.__slots__, state):
            object.__setattr__(self, name, value)


@dataclass(frozen=True, slots=True)
class SkuSpec:
    """One concrete cloud target: capacities plus price.

    Attributes:
        deployment: SQL DB or SQL MI.
        tier: General Purpose or Business Critical.
        hardware: Compute hardware generation.
        limits: Resource capacities (:class:`ResourceLimits`).
        price_per_hour: Hourly list price in USD.
        name: Stable human-readable identifier, e.g. ``DB_GP_Gen5_8``.
    """

    deployment: DeploymentType
    tier: ServiceTier
    hardware: HardwareGeneration
    limits: ResourceLimits
    price_per_hour: float
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not math.isfinite(self.price_per_hour) or self.price_per_hour <= 0:
            raise ValueError(f"price_per_hour must be positive, got {self.price_per_hour!r}")
        if not self.name:
            generated = (
                f"{self.deployment.short_name}_{self.tier.short_name}_"
                f"{self.hardware.value}_{int(self.limits.vcores)}v_"
                f"{int(self.limits.max_data_size_gb)}gb"
            )
            object.__setattr__(self, "name", generated)

    @property
    def monthly_price(self) -> float:
        """Monthly subscription cost in USD (price-performance x axis)."""
        return self.price_per_hour * HOURS_PER_MONTH

    @property
    def vcores(self) -> float:
        return self.limits.vcores

    # Same pickle fast path as ResourceLimits: skip the per-instance
    # ``dataclasses.fields()`` resolution on the fleet-checkpoint and
    # process-backend hot paths.
    def __getstate__(self) -> tuple:
        return (
            self.deployment,
            self.tier,
            self.hardware,
            self.limits,
            self.price_per_hour,
            self.name,
        )

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(SkuSpec.__slots__, state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        """One-line description in the format of Figure 1 of the paper."""
        limits = self.limits
        return (
            f"{self.deployment.short_name} {self.tier.short_name} "
            f"{int(limits.vcores)} vCores | {limits.max_data_size_gb:.0f} GB data | "
            f"{limits.max_memory_gb:.1f} GB mem | {limits.max_data_iops:.0f} IOPS | "
            f"{limits.max_log_rate_mbps:.1f} MBps log | "
            f"{limits.min_io_latency_ms:.0f} ms IO | ${self.price_per_hour:.2f}/h"
        )
