"""Billing interface: hourly and monthly pricing for PaaS SKUs.

The DMA data-preprocessing module of the paper (Section 4) consults "a
billing interface ... to compute the prices for each SKU".  The real
interface is the Azure retail price API; here prices follow the
published vCore-model structure with the per-tier rates anchored to the
examples of Figure 1 of the paper (DB GP 2 vCores -> $0.51/h, DB BC 2
vCores -> $1.36/h) plus a storage component.

All downstream code consumes prices only through
:class:`PricingModel.price_per_hour`, so a deployment that has live
price sheets can swap this module out without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import DeploymentType, HardwareGeneration, ResourceLimits, ServiceTier

__all__ = ["PricingModel", "DEFAULT_PRICING"]


@dataclass(frozen=True, slots=True)
class PricingModel:
    """vCore purchasing-model price sheet.

    Attributes:
        db_gp_vcore_hour: DB General Purpose USD per vCore-hour.
        db_bc_vcore_hour: DB Business Critical USD per vCore-hour.
        mi_gp_vcore_hour: MI General Purpose USD per vCore-hour.
        mi_bc_vcore_hour: MI Business Critical USD per vCore-hour.
        storage_gb_hour: USD per provisioned GB-hour beyond the
            included storage allowance.
        included_storage_gb: Storage allowance bundled with the compute
            price.
    """

    db_gp_vcore_hour: float = 0.2525
    db_bc_vcore_hour: float = 0.6800
    mi_gp_vcore_hour: float = 0.2740
    mi_bc_vcore_hour: float = 0.7350
    storage_gb_hour: float = 0.000160
    included_storage_gb: float = 32.0

    def vcore_rate(self, deployment: DeploymentType, tier: ServiceTier) -> float:
        """USD per vCore-hour for a deployment/tier combination."""
        if deployment is DeploymentType.SQL_DB:
            if tier is ServiceTier.GENERAL_PURPOSE:
                return self.db_gp_vcore_hour
            return self.db_bc_vcore_hour
        if tier is ServiceTier.GENERAL_PURPOSE:
            return self.mi_gp_vcore_hour
        return self.mi_bc_vcore_hour

    def price_per_hour(
        self,
        deployment: DeploymentType,
        tier: ServiceTier,
        hardware: HardwareGeneration,
        limits: ResourceLimits,
    ) -> float:
        """Hourly list price of a SKU with the given capacities.

        The price is ``vcores * rate * hardware multiplier`` plus the
        storage surcharge for provisioned data beyond the included
        allowance.  Business Critical bundles its local SSD storage, so
        the surcharge rate is doubled for BC to reflect the premium
        local storage, matching the published price spread.
        """
        compute = limits.vcores * self.vcore_rate(deployment, tier)
        compute *= hardware.price_multiplier
        billable_gb = max(0.0, limits.max_data_size_gb - self.included_storage_gb)
        storage_rate = self.storage_gb_hour
        if tier is ServiceTier.BUSINESS_CRITICAL:
            storage_rate *= 2.0
        return compute + billable_gb * storage_rate


#: Module-level default price sheet used by the catalog generator.
DEFAULT_PRICING = PricingModel()
