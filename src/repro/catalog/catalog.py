"""Queryable SKU catalog.

The catalog is the second of the Price-Performance Modeler's three
inputs (paper Figure 3: "SKU Configs").  It wraps the generated SKU
list with the filtering operations the engine needs: restrict by
deployment type and tier, drop SKUs that cannot hold the database, and
iterate in price order (the natural order of the price-performance
curve's x axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from .generator import default_catalog_skus
from .models import DeploymentType, ServiceTier, SkuSpec

__all__ = ["SkuCatalog"]


@dataclass(frozen=True)
class SkuCatalog:
    """Immutable, price-sortable collection of SKUs.

    Attributes:
        skus: The SKUs in this catalog, sorted by monthly price
            ascending (ties broken by vCores then name for
            determinism).
    """

    skus: tuple[SkuSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.skus, key=lambda sku: (sku.monthly_price, sku.vcores, sku.name))
        )
        object.__setattr__(self, "skus", ordered)
        names = [sku.name for sku in ordered]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"duplicate SKU names in catalog: {duplicates[:5]}")

    @classmethod
    def default(cls) -> "SkuCatalog":
        """The generated 200+-SKU Azure SQL PaaS stand-in catalog."""
        return cls(skus=tuple(default_catalog_skus()))

    @classmethod
    def from_skus(cls, skus: Iterable[SkuSpec]) -> "SkuCatalog":
        return cls(skus=tuple(skus))

    def __len__(self) -> int:
        return len(self.skus)

    def __iter__(self) -> Iterator[SkuSpec]:
        return iter(self.skus)

    def __getitem__(self, index: int) -> SkuSpec:
        return self.skus[index]

    def by_name(self, name: str) -> SkuSpec:
        """Look up a SKU by its stable name.

        Raises:
            KeyError: If no SKU has that name.
        """
        for sku in self.skus:
            if sku.name == name:
                return sku
        raise KeyError(name)

    def filter(self, predicate: Callable[[SkuSpec], bool]) -> "SkuCatalog":
        """Return a sub-catalog of the SKUs matching ``predicate``."""
        return SkuCatalog(skus=tuple(sku for sku in self.skus if predicate(sku)))

    def for_deployment(self, deployment: DeploymentType) -> "SkuCatalog":
        """Restrict to one deployment type (DB or MI)."""
        return self.filter(lambda sku: sku.deployment is deployment)

    def for_tier(self, tier: ServiceTier) -> "SkuCatalog":
        """Restrict to one service tier (GP or BC)."""
        return self.filter(lambda sku: sku.tier is tier)

    def fitting_storage(self, required_gb: float) -> "SkuCatalog":
        """Keep SKUs whose max data size covers ``required_gb`` at 100 %.

        Storage is the one dimension the paper never negotiates on: a
        SKU that cannot hold the data is simply not a candidate.
        """
        return self.filter(lambda sku: sku.limits.max_data_size_gb >= required_gb)

    def cheapest(self) -> SkuSpec:
        """The cheapest SKU by monthly price.

        Raises:
            ValueError: If the catalog is empty.
        """
        if not self.skus:
            raise ValueError("catalog is empty")
        return self.skus[0]

    def price_range(self) -> tuple[float, float]:
        """(min, max) monthly price across the catalog."""
        if not self.skus:
            raise ValueError("catalog is empty")
        prices = [sku.monthly_price for sku in self.skus]
        return min(prices), max(prices)

    def names(self) -> Sequence[str]:
        return [sku.name for sku in self.skus]
