"""Azure SQL PaaS SKU catalog substrate.

Models the cloud-target side of the recommendation problem: SKU
capacity vectors, premium-disk storage tiers for Managed Instance, the
billing interface and a generated 200+-SKU catalog standing in for the
proprietary Azure price sheet (see DESIGN.md section 2).
"""

from .catalog import SkuCatalog
from .generator import DB_VCORE_LADDER, MI_VCORE_LADDER, default_catalog_skus, generate_skus
from .models import (
    HOURS_PER_MONTH,
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)
from .pricing import DEFAULT_PRICING, PricingModel
from .serialize import (
    catalog_from_dict,
    catalog_to_dict,
    dump_catalog_json,
    load_catalog_json,
)
from .storage import (
    IOPS_THROUGHPUT_COVERAGE,
    PREMIUM_DISK_TIERS,
    FileLayout,
    StorageTier,
    plan_file_layout,
    tier_for_file_size,
)

__all__ = [
    "SkuCatalog",
    "DB_VCORE_LADDER",
    "MI_VCORE_LADDER",
    "default_catalog_skus",
    "generate_skus",
    "HOURS_PER_MONTH",
    "DeploymentType",
    "HardwareGeneration",
    "ResourceLimits",
    "ServiceTier",
    "SkuSpec",
    "DEFAULT_PRICING",
    "catalog_from_dict",
    "catalog_to_dict",
    "dump_catalog_json",
    "load_catalog_json",
    "PricingModel",
    "IOPS_THROUGHPUT_COVERAGE",
    "PREMIUM_DISK_TIERS",
    "FileLayout",
    "StorageTier",
    "plan_file_layout",
    "tier_for_file_size",
]
