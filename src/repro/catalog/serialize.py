"""Catalog persistence: the DMA static-input format.

Paper Section 4: "Additional inputs of relevant SKU resource limits
and customer profiles ... are calculated offline and saved in the
application as static input."  This module is the SKU-limits half of
that static input: a versioned JSON document for
:class:`~repro.catalog.catalog.SkuCatalog` so the assessment runtime
(which runs on customers' machines, offline) carries its own catalog
snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .catalog import SkuCatalog
from .models import (
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)

__all__ = [
    "catalog_to_dict",
    "catalog_from_dict",
    "dump_catalog_json",
    "load_catalog_json",
]

_FORMAT_VERSION = 1


def _sku_to_dict(sku: SkuSpec) -> dict[str, Any]:
    limits = sku.limits
    return {
        "name": sku.name,
        "deployment": sku.deployment.value,
        "tier": sku.tier.value,
        "hardware": sku.hardware.value,
        "price_per_hour": sku.price_per_hour,
        "limits": {
            "vcores": limits.vcores,
            "max_memory_gb": limits.max_memory_gb,
            "max_data_iops": limits.max_data_iops,
            "max_log_rate_mbps": limits.max_log_rate_mbps,
            "max_data_size_gb": limits.max_data_size_gb,
            "min_io_latency_ms": limits.min_io_latency_ms,
        },
    }


def _sku_from_dict(payload: dict[str, Any]) -> SkuSpec:
    limits = payload["limits"]
    return SkuSpec(
        deployment=DeploymentType(payload["deployment"]),
        tier=ServiceTier(payload["tier"]),
        hardware=HardwareGeneration(payload["hardware"]),
        limits=ResourceLimits(
            vcores=float(limits["vcores"]),
            max_memory_gb=float(limits["max_memory_gb"]),
            max_data_iops=float(limits["max_data_iops"]),
            max_log_rate_mbps=float(limits["max_log_rate_mbps"]),
            max_data_size_gb=float(limits["max_data_size_gb"]),
            min_io_latency_ms=float(limits["min_io_latency_ms"]),
        ),
        price_per_hour=float(payload["price_per_hour"]),
        name=str(payload["name"]),
    )


def catalog_to_dict(catalog: SkuCatalog) -> dict[str, Any]:
    """Serialize a catalog to a JSON-compatible document."""
    return {
        "format_version": _FORMAT_VERSION,
        "skus": [_sku_to_dict(sku) for sku in catalog],
    }


def catalog_from_dict(document: dict[str, Any]) -> SkuCatalog:
    """Reconstruct a catalog from :func:`catalog_to_dict` output.

    Raises:
        ValueError: On unknown format versions.
    """
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported catalog format version: {version!r}")
    return SkuCatalog.from_skus(_sku_from_dict(item) for item in document["skus"])


def dump_catalog_json(catalog: SkuCatalog, path: str | Path) -> None:
    """Write a catalog snapshot to disk."""
    Path(path).write_text(json.dumps(catalog_to_dict(catalog)), encoding="utf-8")


def load_catalog_json(path: str | Path) -> SkuCatalog:
    """Read a catalog snapshot written by :func:`dump_catalog_json`."""
    return catalog_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
