"""Premium-disk storage tiers and file-layout planning for Azure SQL MI.

Azure SQL Managed Instance General Purpose places every database file
on its own Azure Premium Disk.  Disks come in fixed size tiers
(P10 ... P80) and bigger disks carry higher IOPS and throughput limits
(paper Table 2).  Consequently the IOPS limit of an MI GP instance is
not a fixed per-SKU number: it is the sum of the per-file disk limits
of the chosen file layout.

The paper's recommendation flow for MI (Section 3.2) therefore runs a
two-step procedure:

* Step 1 -- pick the storage tier for each data file from the file size
  and check that the resulting layout covers 100 % of the storage
  requirement and at least 95 % of the observed IOPS and throughput
  demand; if it cannot, only Business Critical SKUs stay in play.
* Step 2 -- build the price-performance curve with the layout's summed
  IOPS as the instance-level IOPS limit.

This module implements the tier table, the per-file tier selection and
the instance-level layout aggregation used by
:class:`repro.core.ppm.PricePerformanceModeler`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "StorageTier",
    "PREMIUM_DISK_TIERS",
    "tier_for_file_size",
    "FileLayout",
    "plan_file_layout",
    "IOPS_THROUGHPUT_COVERAGE",
]

#: Fraction of the observed IOPS / throughput demand a GP file layout
#: must cover in Step 1 before GP SKUs are considered viable.  The
#: paper fixes this at 95 %, "chosen based on file layout analysis of
#: current on-cloud Azure SQL MI resources".
IOPS_THROUGHPUT_COVERAGE = 0.95


@dataclass(frozen=True, slots=True)
class StorageTier:
    """One premium-disk storage tier (a row of paper Table 2).

    Attributes:
        name: Tier label, e.g. ``P10``.
        max_file_size_gib: Largest file the tier accommodates, in GiB.
        iops: Per-disk IOPS limit.
        throughput_mibps: Per-disk throughput limit in MiB/s.
    """

    name: str
    max_file_size_gib: float
    iops: float
    throughput_mibps: float


#: Premium disk tier table, ordered by capacity.  The P10/P20/P50/P60
#: rows match paper Table 2; the remaining rows follow the published
#: Azure premium-disk ladder so intermediate file sizes resolve to a
#: sensible tier.
PREMIUM_DISK_TIERS: tuple[StorageTier, ...] = (
    StorageTier("P10", 128.0, 500.0, 100.0),
    StorageTier("P15", 256.0, 1100.0, 125.0),
    StorageTier("P20", 512.0, 2300.0, 150.0),
    StorageTier("P30", 1024.0, 5000.0, 200.0),
    StorageTier("P40", 2048.0, 7500.0, 250.0),
    StorageTier("P50", 4096.0, 7500.0, 250.0),
    StorageTier("P60", 8192.0, 12500.0, 480.0),
    StorageTier("P70", 16384.0, 15000.0, 750.0),
    StorageTier("P80", 32768.0, 20000.0, 900.0),
)

_TIER_UPPER_BOUNDS = [tier.max_file_size_gib for tier in PREMIUM_DISK_TIERS]


def tier_for_file_size(file_size_gib: float) -> StorageTier:
    """Return the smallest storage tier whose disk fits ``file_size_gib``.

    Args:
        file_size_gib: Size of one database file in GiB.  Must be
            positive and no larger than the largest tier (32 TiB).

    Raises:
        ValueError: If the file does not fit on any premium disk.
    """
    if file_size_gib <= 0:
        raise ValueError(f"file size must be positive, got {file_size_gib!r}")
    index = bisect.bisect_left(_TIER_UPPER_BOUNDS, file_size_gib)
    if index >= len(PREMIUM_DISK_TIERS):
        raise ValueError(
            f"file of {file_size_gib:.0f} GiB exceeds the largest premium disk "
            f"({_TIER_UPPER_BOUNDS[-1]:.0f} GiB)"
        )
    return PREMIUM_DISK_TIERS[index]


@dataclass(frozen=True, slots=True)
class FileLayout:
    """Resolved premium-disk layout for a set of database files.

    Attributes:
        tiers: Storage tier chosen for each file, in input order.
        file_sizes_gib: The file sizes the layout was planned for.
    """

    tiers: tuple[StorageTier, ...]
    file_sizes_gib: tuple[float, ...]

    @property
    def total_iops(self) -> float:
        """Instance-level IOPS limit: the sum over all file disks.

        This is the quantity substituted for ``R_IOPS_i`` in the MI
        price-performance curve (paper Section 3.2, Step 2).
        """
        return sum(tier.iops for tier in self.tiers)

    @property
    def total_throughput_mibps(self) -> float:
        """Instance-level throughput limit: the sum over all file disks."""
        return sum(tier.throughput_mibps for tier in self.tiers)

    @property
    def total_capacity_gib(self) -> float:
        """Total provisioned disk capacity of the layout."""
        return sum(tier.max_file_size_gib for tier in self.tiers)

    def covers(
        self,
        required_iops: float,
        required_throughput_mibps: float,
        coverage: float = IOPS_THROUGHPUT_COVERAGE,
    ) -> bool:
        """Check the paper's Step-1 95 % IOPS/throughput filter.

        Args:
            required_iops: Observed workload IOPS demand (a high
                quantile of the counter series).
            required_throughput_mibps: Observed throughput demand.
            coverage: Required fraction of demand covered; defaults to
                the paper's 95 %.
        """
        return (
            self.total_iops >= coverage * required_iops
            and self.total_throughput_mibps >= coverage * required_throughput_mibps
        )


def plan_file_layout(file_sizes_gib: Sequence[float] | Iterable[float]) -> FileLayout:
    """Plan a premium-disk layout: one disk (tier) per database file.

    Args:
        file_sizes_gib: Sizes of the database data files in GiB.

    Returns:
        The :class:`FileLayout` mapping each file to the smallest tier
        that fits it.

    Raises:
        ValueError: If no files are given or any file does not fit.
    """
    sizes = tuple(float(size) for size in file_sizes_gib)
    if not sizes:
        raise ValueError("a file layout needs at least one data file")
    tiers = tuple(tier_for_file_size(size) for size in sizes)
    return FileLayout(tiers=tiers, file_sizes_gib=sizes)
