"""Generator for the full Azure SQL PaaS SKU catalog.

Microsoft Azure offers "over 200 different PaaS cloud SKUs" (paper
Sections 1-2).  The proprietary catalog is not available, so this
module generates a faithful stand-in: the cross product of

* deployment type (SQL DB, SQL MI),
* service tier (General Purpose, Business Critical),
* hardware generation (Gen5, Premium series),
* the published vCore ladder, and
* a ladder of max-data-size options per compute size,

with capacities extrapolated from the anchor points the paper publishes
(Figure 1 for DB: per-vCore memory, IOPS, log rate, price; Table 2 for
MI storage tiers).  The extrapolation rules are linear per vCore, which
is how the published Azure resource-limit tables scale.
"""

from __future__ import annotations

from typing import Iterator

from .models import (
    DeploymentType,
    HardwareGeneration,
    ResourceLimits,
    ServiceTier,
    SkuSpec,
)
from .pricing import DEFAULT_PRICING, PricingModel

__all__ = [
    "DB_VCORE_LADDER",
    "MI_VCORE_LADDER",
    "generate_skus",
    "default_catalog_skus",
]

#: Published vCore options for Azure SQL DB (vCore purchasing model).
DB_VCORE_LADDER: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 32, 40, 64, 80)

#: Published vCore options for Azure SQL MI.
MI_VCORE_LADDER: tuple[int, ...] = (4, 8, 16, 24, 32, 40, 64, 80)

#: Max-data-size ladder (GB) offered per compute size.  Azure lets a
#: database pick its max size independently of compute within bounds.
_DB_STORAGE_LADDER_GB: tuple[float, ...] = (250.0, 512.0, 1024.0, 2048.0, 4096.0)
_MI_STORAGE_LADDER_GB: tuple[float, ...] = (256.0, 512.0, 1024.0, 2048.0, 8192.0)

# Per-vCore capacity slopes anchored on Figure 1 of the paper
# (DB GP 2 vCores: 640 IOPS, 7.5 MBps log; DB BC 2 vCores: 8000 IOPS,
# 24 MBps log) and the published MI limit tables.
_DB_GP_IOPS_PER_VCORE = 320.0
_DB_BC_IOPS_PER_VCORE = 4000.0
_MI_GP_IOPS_PER_VCORE = 400.0  # nominal; superseded by the file layout
_MI_BC_IOPS_PER_VCORE = 2750.0
_GP_LOG_RATE_PER_VCORE = 3.75
_BC_LOG_RATE_PER_VCORE = 12.0
_GP_IO_LATENCY_MS = 5.0
_BC_IO_LATENCY_MS = 1.0
_LOG_RATE_CAP_MBPS = 96.0  # published Azure ceiling on log throughput


def _storage_cap_gb(deployment: DeploymentType, vcores: int) -> float:
    """Largest max-data-size option available at a compute size.

    Small compute sizes cannot attach the largest storage options; the
    cap grows with vCores, mirroring the published limit tables
    (Figure 1 shows 1024 GB at 2-4 vCores and 1536 GB at 6 vCores).
    """
    if deployment is DeploymentType.SQL_DB:
        if vcores <= 4:
            return 1024.0
        if vcores <= 8:
            return 2048.0
        return 4096.0
    if vcores <= 8:
        return 2048.0
    return 8192.0


def generate_skus(
    pricing: PricingModel = DEFAULT_PRICING,
    hardware_generations: tuple[HardwareGeneration, ...] = (
        HardwareGeneration.GEN5,
        HardwareGeneration.PREMIUM_SERIES,
    ),
) -> Iterator[SkuSpec]:
    """Yield every SKU in the generated catalog.

    Args:
        pricing: Price sheet used to compute the hourly price.
        hardware_generations: Hardware series to include.  The default
            pair yields a catalog of 200+ SKUs, matching the scale the
            paper reports for the real Azure catalog.

    Yields:
        :class:`SkuSpec` instances in a deterministic order
        (deployment, tier, hardware, vCores, storage).
    """
    for deployment in DeploymentType:
        ladder = DB_VCORE_LADDER if deployment is DeploymentType.SQL_DB else MI_VCORE_LADDER
        storage_ladder = (
            _DB_STORAGE_LADDER_GB
            if deployment is DeploymentType.SQL_DB
            else _MI_STORAGE_LADDER_GB
        )
        for tier in ServiceTier:
            for hardware in hardware_generations:
                for vcores in ladder:
                    cap = _storage_cap_gb(deployment, vcores)
                    sizes = [size for size in storage_ladder if size <= cap]
                    if not sizes:
                        sizes = [cap]
                    for max_data_gb in sizes:
                        limits = _build_limits(deployment, tier, hardware, vcores, max_data_gb)
                        price = pricing.price_per_hour(deployment, tier, hardware, limits)
                        yield SkuSpec(
                            deployment=deployment,
                            tier=tier,
                            hardware=hardware,
                            limits=limits,
                            price_per_hour=price,
                        )


def _build_limits(
    deployment: DeploymentType,
    tier: ServiceTier,
    hardware: HardwareGeneration,
    vcores: int,
    max_data_gb: float,
) -> ResourceLimits:
    """Extrapolate the capacity vector for one SKU."""
    memory = vcores * hardware.memory_per_vcore_gb
    if deployment is DeploymentType.SQL_DB:
        iops_slope = (
            _DB_GP_IOPS_PER_VCORE if tier is ServiceTier.GENERAL_PURPOSE else _DB_BC_IOPS_PER_VCORE
        )
    else:
        iops_slope = (
            _MI_GP_IOPS_PER_VCORE if tier is ServiceTier.GENERAL_PURPOSE else _MI_BC_IOPS_PER_VCORE
        )
    log_slope = (
        _GP_LOG_RATE_PER_VCORE if tier is ServiceTier.GENERAL_PURPOSE else _BC_LOG_RATE_PER_VCORE
    )
    latency = _GP_IO_LATENCY_MS if tier is ServiceTier.GENERAL_PURPOSE else _BC_IO_LATENCY_MS
    return ResourceLimits(
        vcores=float(vcores),
        max_memory_gb=memory,
        max_data_iops=iops_slope * vcores,
        max_log_rate_mbps=min(log_slope * vcores, _LOG_RATE_CAP_MBPS),
        max_data_size_gb=max_data_gb,
        min_io_latency_ms=latency,
    )


def default_catalog_skus() -> list[SkuSpec]:
    """Materialize the default generated catalog as a list."""
    return list(generate_skus())
