"""Unified execution backends for fleet-scale passes.

One execution substrate for both fleet protocols:

* **Batch** (:meth:`ExecutionBackend.map_chunks`): position-sharded
  chunks of customers fan out over an executor and results stream back
  in submission order -- the ``fit_fleet`` / ``recommend_fleet``
  plumbing that used to live as private globals in
  :mod:`repro.fleet.engine`.
* **Streaming** (:meth:`ExecutionBackend.watch`): a fleet-wide
  telemetry feed is routed *sticky-by-customer-id* over a
  consistent-hash :class:`~repro.fleet.sharding.ShardRing` to stateful
  shard workers, each owning its customers'
  :class:`~repro.streaming.live.LiveRecommender` state, and per-sample
  outcomes flow back in feed order.

Three backends implement both protocols behind one interface:
``serial`` (everything in the parent), ``thread`` (one single-thread
executor per shard, so per-customer state stays confined), and
``process`` (persistent worker processes with per-worker input queues
and one shared result queue).  The contract every backend upholds is
*serial identity*: the emitted result sequence -- including
per-customer failure containment and quarantine ordering -- is
byte-identical to the serial backend's, because each customer's state
lives on exactly one shard at a time, shards process their samples in
feed order, and the parent reorders emissions by global sequence
number before yielding.

Streaming shards exchange *microbatches* ("ticks") with the parent
rather than single samples, so queue/IPC overhead amortizes across
:data:`WATCH_TICK_PER_WORKER` samples; up to
:data:`WATCH_INFLIGHT_TICKS` ticks are in flight per watch, which
pipelines parent-side routing against worker-side assessment without
unbounded buffering.

**Elastic watches.**  The watch loop is no longer frozen at its
starting topology: the parent tracks per-shard load (samples routed,
worker busy seconds) and per-customer sample counts, and a pluggable
:class:`~repro.fleet.rebalance.RebalancePolicy` may order customer
migrations, hot-customer pins or a pool resize at tick boundaries.
Execution follows one protocol on every backend: drain all in-flight
ticks, ``snapshot_state`` each moving customer on its source shard
(releasing its watch-scoped curve-cache entries there), re-route on
the ring, ``restore_state`` on the target shard.  The serial and
thread backends move state as in-process bookkeeping; the process
backend does the real handoff over its worker queues.  Because a
customer's samples are never in flight while its state moves and the
reorder buffer works on global sequence numbers, the merged update
stream stays byte-identical to the serial backend's across any
migration schedule.

**Durable watches.**  With a
:class:`~repro.fleet.config.CheckpointConfig` attached, the
coordinator periodically persists every shard's state to a
:class:`~repro.store.FleetStore` at fully drained tick boundaries
(``snapshot_records`` is non-destructive, so checkpointing is
invisible in the update stream), appends rebalance/migration/
quarantine/resize events to the store's audit log instead of only the
in-memory list, and -- when ``max_resident`` caps the hot set --
evicts the least-recently-seen customers to the store, restoring them
transparently if the feed mentions them again.  A killed watch resumes
via ``watch(resume_from=store)``: ring topology, overrides, quarantine
and per-customer live state are rebuilt from the latest checkpoint and
the feed prefix it had consumed is skipped, after which the emitted
stream is byte-identical to the uninterrupted run's tail.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Literal

from ..catalog.models import DeploymentType
from ..store.persistence import CustomerStateRecord
from .cache import CurveCacheStats
from .rebalance import (
    Migration,
    RebalanceEvent,
    RebalancePolicy,
    ShardLoad,
    WatchLoadSnapshot,
    WatchRebalanceStats,
)
from .sharding import ShardRing

if TYPE_CHECKING:  # imported lazily at run time to avoid cycles
    from ..core.engine import DopplerEngine
    from ..store import CheckpointRecord, FleetStore
    from .config import CheckpointConfig
    from .engine import FleetLiveUpdate, FleetSample

__all__ = [
    "BACKEND_NAMES",
    "BatchJob",
    "ExecutionBackend",
    "FleetBackend",
    "ProcessBackend",
    "SerialBackend",
    "ShardAssessmentConfig",
    "ThreadBackend",
    "make_backend",
]

FleetBackend = Literal["serial", "thread", "process"]

#: Valid backend selectors, in documentation order.
BACKEND_NAMES: tuple[str, ...] = ("serial", "thread", "process")

#: In-flight chunks per worker (batch protocol): enough to keep the
#: pool busy without buffering the whole fleet's results in memory.
INFLIGHT_PER_WORKER = 2

#: Samples routed per worker per streaming tick.  Large enough that
#: queue round-trips amortize, small enough that emission latency
#: stays bounded (a tick is the unit of reordering).
WATCH_TICK_PER_WORKER = 64

#: Streaming ticks in flight before the parent blocks on results:
#: double-buffering overlaps routing with assessment.
WATCH_INFLIGHT_TICKS = 2

#: Hottest customers included in a rebalance load snapshot; policies
#: balance shards, not individual tails, so a bounded leaderboard
#: keeps decision points cheap at fleet scale.
SNAPSHOT_TOP_CUSTOMERS = 256

#: Seconds between liveness checks while waiting on worker results.
_WORKER_POLL_SECONDS = 1.0


@dataclass(frozen=True)
class BatchJob:
    """One sharded batch pass, described backend-agnostically.

    Attributes:
        task: ``fit`` or ``recommend`` -- selects the
            ``<task>_chunk`` method on the runner (parent-side
            backends) or the matching module-level worker function
            (process backend).
        runner: The parent's ``_FleetRunner`` (engine + curve cache).
        engine: The wrapped engine, shipped to process-pool
            initializers (workers rebuild private runners from it).
        cache_size: Curve-cache capacity per runner.
        columnar: Whether shard bodies run the columnar batch kernel.
    """

    task: str
    runner: object
    engine: "DopplerEngine"
    cache_size: int
    columnar: bool

    def local_fn(self) -> Callable:
        """The parent-side chunk body for serial/thread execution."""
        return getattr(self.runner, f"{self.task}_chunk")


@dataclass(frozen=True)
class ShardAssessmentConfig:
    """Everything a streaming shard needs to assess its customers.

    Picklable on purpose: the process backend ships one copy to every
    worker at startup; workers construct per-customer
    :class:`~repro.streaming.live.LiveRecommender` instances from it
    on first sight of each customer.

    The constructor validates the per-customer assessment parameters
    up front with the same messages ``LiveRecommender`` would raise,
    so a misconfigured watch fails at the call site in the parent
    instead of surfacing as a wrapped worker error mid-stream.
    """

    engine: "DopplerEngine"
    window: int
    interval_minutes: float
    drift_threshold: float
    min_refresh_samples: int
    refreshes_only: bool
    profile_mode: str
    cache_size: int

    def __post_init__(self) -> None:
        # Imported lazily for the same cycle reason as _WatchShard;
        # LiveRecommender.validate_config is the single source of
        # truth for these constraints and their messages.
        from ..streaming.live import LiveRecommender

        LiveRecommender.validate_config(
            self.window,
            self.min_refresh_samples,
            self.profile_mode,
            self.engine.summarizer,
        )


class _WatchShard:
    """One worker's share of a fleet watch: live state plus quarantine.

    Owns every :class:`~repro.streaming.live.LiveRecommender` routed to
    it, the shard's watch-scoped curve cache, and the per-customer
    quarantine set.  Processes its samples strictly in feed order, so
    per-customer update sequences -- including the
    quarantine-after-failure containment contract -- are identical to
    the serial loop's regardless of how many shards a watch runs.

    Implements the :class:`~repro.store.StatePersistence` protocol
    (shared with the serving tier's observe shards):
    :meth:`snapshot_records` freezes customer state non-destructively
    for checkpoints, :meth:`restore_records` adopts records with epoch
    validation.  Migration composes the same surface: :meth:`extract`
    is a destructive snapshot that also releases the departing
    customers' watch-scoped curve-cache entries (tracked per customer
    in ``customer_keys``), and :meth:`install` aliases
    ``restore_records`` on the target shard, where the next refresh
    rebuilds and re-counts the curves.
    """

    def __init__(self, config: ShardAssessmentConfig) -> None:
        # Imported here, not at module top: live assessment builds on
        # the fleet curve cache, keeping the import one-directional.
        from ..streaming.live import LiveRecommender
        from .cache import CurveCache

        self._live_cls = LiveRecommender
        self.config = config
        self.cache = CurveCache(config.cache_size)
        self.recommenders: dict[str, object] = {}
        self.quarantined: set[str] = set()
        self.customer_keys: dict[str, set] = {}

    def _new_live(self, customer_id: str, deployment, dimensions=None):
        config = self.config
        return self._live_cls(
            config.engine,
            deployment,
            window=config.window,
            interval_minutes=config.interval_minutes,
            dimensions=dimensions,
            drift_threshold=config.drift_threshold,
            min_refresh_samples=config.min_refresh_samples,
            cache=self.cache,
            entity_id=customer_id,
            profile_mode=config.profile_mode,
        )

    def process(
        self, batch: "list[tuple[int, FleetSample]]"
    ) -> "tuple[list[tuple[int, FleetLiveUpdate]], float]":
        """Assess one tick of (sequence number, sample) pairs.

        Returns the emissions -- refresh events (or every sample when
        ``refreshes_only`` is off) and one-shot failure updates --
        tagged with their global sequence numbers so the parent can
        interleave shards back into feed order, plus the wall-clock
        seconds this tick cost (the per-shard load signal rebalance
        policies act on).
        """
        from .engine import FleetLiveUpdate

        config = self.config
        started = time.perf_counter()
        emissions: list[tuple[int, FleetLiveUpdate]] = []
        for seq, sample in batch:
            if sample.customer_id in self.quarantined:
                continue
            live = self.recommenders.get(sample.customer_id)
            if live is None:
                live = self._new_live(sample.customer_id, sample.deployment)
                self.recommenders[sample.customer_id] = live
            try:
                update = live.observe(sample.values)
            except Exception as exc:  # noqa: BLE001 - one bad feed must not kill the fleet
                self.quarantined.add(sample.customer_id)
                self.recommenders.pop(sample.customer_id, None)
                self.cache.evict_many(self.customer_keys.pop(sample.customer_id, ()))
                emissions.append(
                    (
                        seq,
                        FleetLiveUpdate(
                            customer_id=sample.customer_id,
                            update=None,
                            error=f"{type(exc).__name__}: {exc}",
                        ),
                    )
                )
                continue
            if update.refreshed and live.last_curve_key is not None:
                self.customer_keys.setdefault(sample.customer_id, set()).add(
                    live.last_curve_key
                )
            if update.refreshed or not config.refreshes_only:
                emissions.append(
                    (seq, FleetLiveUpdate(customer_id=sample.customer_id, update=update))
                )
        return emissions, time.perf_counter() - started

    def snapshot_records(
        self, customer_ids: "Iterable[str] | None" = None
    ) -> list[CustomerStateRecord]:
        """Freeze customer state without disturbing it (checkpoint path).

        ``snapshot_state`` copies the live recommenders' internals, so
        a checkpointed watch emits exactly what an uncheckpointed one
        would.  Defaults to every customer this shard owns, in sorted
        order for deterministic checkpoints; customers this shard has
        never seen produce no record.
        """
        if customer_ids is None:
            customer_ids = sorted(set(self.recommenders) | self.quarantined)
        records: list[CustomerStateRecord] = []
        for customer_id in customer_ids:
            live = self.recommenders.get(customer_id)
            if live is not None:
                records.append(
                    CustomerStateRecord(customer_id, live.snapshot_state())
                )
            elif customer_id in self.quarantined:
                records.append(CustomerStateRecord(customer_id, None, quarantined=True))
        return records

    def extract(self, customer_ids: "Iterable[str]") -> list[CustomerStateRecord]:
        """Freeze and remove departing customers' state for handoff.

        Curve-cache entries the customers built here are released
        (:meth:`~repro.fleet.cache.CurveCache.evict_many`), so a
        migrated or evicted customer's footprint leaves with it; the
        adopting side rebuilds and counts its curves on the next
        refresh.  Customers this shard has never seen produce no
        record.
        """
        records: list[CustomerStateRecord] = []
        for customer_id in customer_ids:
            quarantined = customer_id in self.quarantined
            self.quarantined.discard(customer_id)
            live = self.recommenders.pop(customer_id, None)
            self.cache.evict_many(self.customer_keys.pop(customer_id, ()))
            if live is not None:
                records.append(CustomerStateRecord(customer_id, live.snapshot_state()))
            elif quarantined:
                records.append(CustomerStateRecord(customer_id, None, quarantined=True))
        return records

    def restore_records(self, records: "Iterable[CustomerStateRecord]") -> None:
        """Adopt customer records; the inverse of :meth:`extract`.

        Epoch validation happens inside ``restore_state``: restoring a
        snapshot older than state this shard already advanced raises
        rather than silently rewinding a customer.
        """
        for record in records:
            if record.quarantined:
                self.quarantined.add(record.customer_id)
                continue
            state = record.state
            if state is None:
                continue
            live = self._new_live(
                record.customer_id,
                DeploymentType(state.deployment_value),
                dimensions=state.dimensions,
            )
            live.restore_state(state)
            self.recommenders[record.customer_id] = live

    # Migration arrives through the same persistence surface.
    install = restore_records


# ----------------------------------------------------------------------
# Elastic watch coordination (parent side)
# ----------------------------------------------------------------------
class _WatchCoordinator:
    """Routing, load accounting and rebalance execution for one watch.

    Lives in the parent for every backend.  Owns the
    :class:`~repro.fleet.sharding.ShardRing`, memoizes each customer's
    current shard (one keyed hash per customer, not per sample),
    counts per-shard and per-customer load, and -- when a policy is
    attached -- executes its decisions against the backend's worker
    pool at fully drained tick boundaries.
    """

    def __init__(
        self,
        n_shards: int,
        policy: RebalancePolicy | None,
        on_rebalance: Callable[[RebalanceEvent], None] | None,
        checkpoint: "CheckpointConfig | None" = None,
    ) -> None:
        self.ring = ShardRing(n_shards)
        self.policy = policy
        self.on_rebalance = on_rebalance
        self.checkpoint_config = checkpoint
        self.store = checkpoint.store if checkpoint is not None else None
        self.quarantined: set[str] = set()
        self.evicted: set[str] = set()
        self.current_tick = 0
        self.n_emitted = 0
        self.n_checkpoints = 0
        self.n_evictions = 0
        self._routes: dict[str, int] = {}
        self._members: dict[int, set[str]] = {sid: set() for sid in range(n_shards)}
        self._samples_total: dict[int, int] = {}
        self._samples_recent: dict[int, int] = {}
        self._busy_total: dict[int, float] = {}
        self._busy_recent: dict[int, float] = {}
        self._customer_recent: dict[str, int] = {}
        # LRU clock for cold-customer eviction; only maintained when a
        # resident cap is configured.
        self._track_last_seen = checkpoint is not None and checkpoint.max_resident is not None
        self._last_seen: dict[str, int] = {}
        self._seen_counter = 0
        self._n_decisions = 0
        self._n_rebalances = 0
        self._n_migrations = 0
        self._n_resizes = 0
        self._events: list[RebalanceEvent] = []

    # -- hot path ------------------------------------------------------
    def route(self, customer_id: str) -> int:
        """The shard owning ``customer_id``'s live state, with accounting."""
        shard_id = self._routes.get(customer_id)
        if shard_id is None:
            shard_id = self.ring.route(customer_id)
            self._routes[customer_id] = shard_id
            self._members.setdefault(shard_id, set()).add(customer_id)
        self._samples_total[shard_id] = self._samples_total.get(shard_id, 0) + 1
        if self._track_last_seen:
            self._seen_counter += 1
            self._last_seen[customer_id] = self._seen_counter
        if self.policy is not None:
            self._samples_recent[shard_id] = self._samples_recent.get(shard_id, 0) + 1
            self._customer_recent[customer_id] = (
                self._customer_recent.get(customer_id, 0) + 1
            )
        return shard_id

    def record_busy(self, busy_by_shard: dict[int, float]) -> None:
        for shard_id, seconds in busy_by_shard.items():
            self._busy_total[shard_id] = self._busy_total.get(shard_id, 0.0) + seconds
            self._busy_recent[shard_id] = self._busy_recent.get(shard_id, 0.0) + seconds

    def mark_quarantined(self, customer_id: str) -> None:
        """Note a customer's quarantine (learned from its error update).

        The parent drops the customer's further samples instead of
        shipping work its shard would silently skip, and stops
        counting it as load -- a quarantined whale must not keep
        reading as the hottest customer of an actually idle shard and
        bait the policy into migrating its innocent neighbours.
        """
        self.quarantined.add(customer_id)
        self._customer_recent.pop(customer_id, None)
        self._last_seen.pop(customer_id, None)
        shard_id = self._routes.get(customer_id)
        if shard_id is not None:
            self._members.get(shard_id, set()).discard(customer_id)
        if self.store is not None:
            self.store.append_event(
                "quarantine",
                tick_id=self.current_tick,
                customer_id=customer_id,
                source_shard=shard_id,
            )

    # -- decision points -----------------------------------------------
    def _snapshot(self, tick_id: int) -> WatchLoadSnapshot:
        shards = tuple(
            ShardLoad(
                shard_id=shard_id,
                n_customers=len(self._members.get(shard_id, ())),
                samples_recent=self._samples_recent.get(shard_id, 0),
                samples_total=self._samples_total.get(shard_id, 0),
                busy_seconds_recent=self._busy_recent.get(shard_id, 0.0),
                busy_seconds_total=self._busy_total.get(shard_id, 0.0),
            )
            for shard_id in self.ring.shard_ids
        )
        hot = sorted(self._customer_recent.items(), key=lambda kv: (-kv[1], kv[0]))
        return WatchLoadSnapshot(
            tick_id=tick_id,
            n_decisions=self._n_decisions,
            shards=shards,
            customer_samples_recent=tuple(
                (customer_id, count, self._routes[customer_id])
                for customer_id, count in hot[:SNAPSHOT_TOP_CUSTOMERS]
            ),
        )

    def rebalance(self, pool: "_WatchPool", tick_id: int) -> None:
        """Consult the policy and execute its decision.

        Caller guarantees nothing is in flight: every dispatched tick
        has drained, so no moving customer has samples pending and
        extract sees fully settled state.
        """
        snapshot = self._snapshot(tick_id)
        decision = self.policy.decide(snapshot)
        self._n_decisions += 1
        if decision is None:
            return  # keep watching: the recent window keeps accumulating
        # The policy acted (even a no-op decision is a verdict on this
        # evidence): start a fresh observation window.
        self._samples_recent = {}
        self._busy_recent = {}
        self._customer_recent = {}
        if decision.is_noop:
            return
        moves: list[Migration] = []
        resized_from = resized_to = None
        # Planned state moves: customer -> (source shard, target shard).
        planned: dict[str, tuple[int, int]] = {}
        if decision.resize_to is not None and decision.resize_to != self.ring.n_shards:
            resized_from = self.ring.n_shards
            resized_to = decision.resize_to
            for shard_id in range(resized_from, resized_to):
                pool.add_shard(shard_id)  # grow before any state needs a home
                self._members.setdefault(shard_id, set())
            self.ring.resize(resized_to)
            # Consistent hashing keeps this diff minimal: growth moves
            # ~1/new of the known customers, shrink moves only the
            # removed shards' residents.
            for customer_id, old in self._routes.items():
                new = self.ring.route(customer_id)
                if new != old:
                    planned[customer_id] = (old, new)
        for migration in decision.migrations:
            target = migration.target
            if target not in self.ring.shard_ids:
                raise ValueError(
                    f"rebalance decision targets unknown shard {target!r}; "
                    f"the pool has shards 0..{self.ring.n_shards - 1}"
                )
            self.ring.set_override(migration.customer_id, target)
            old = self._routes.get(migration.customer_id)
            if old is None:
                # Never-seen customer: the pin takes effect on first
                # sight; there is no state to move yet.
                moves.append(Migration(migration.customer_id, target, source=None))
            elif old != target:
                planned[migration.customer_id] = (old, target)
            else:
                planned.pop(migration.customer_id, None)  # pinned where it lives
        by_source: dict[int, list[str]] = {}
        for customer_id, (source, _) in planned.items():
            by_source.setdefault(source, []).append(customer_id)
        for source in sorted(by_source):
            customer_ids = sorted(by_source[source])
            records = {
                record.customer_id: record
                for record in pool.extract(source, customer_ids)
            }
            by_target: dict[int, list[CustomerStateRecord]] = {}
            for customer_id in customer_ids:
                target = planned[customer_id][1]
                record = records.get(customer_id)
                if record is not None:
                    by_target.setdefault(target, []).append(record)
                self._routes[customer_id] = target
                self._members.get(source, set()).discard(customer_id)
                self._members.setdefault(target, set()).add(customer_id)
                moves.append(Migration(customer_id, target, source=source))
            for target in sorted(by_target):
                pool.install(target, by_target[target])
        if resized_to is not None and resized_to < (resized_from or 0):
            for shard_id in range(resized_to, resized_from):
                pool.retire_shard(shard_id)  # empty by now; state moved above
                self._members.pop(shard_id, None)
        if not moves and resized_to is None:
            return  # decision changed nothing observable (e.g. in-place pins)
        event = RebalanceEvent(
            tick_id=tick_id,
            moves=tuple(moves),
            resized_from=resized_from,
            resized_to=resized_to,
        )
        self._events.append(event)
        self._n_rebalances += 1
        self._n_migrations += sum(1 for move in moves if move.source is not None)
        if resized_to is not None:
            self._n_resizes += 1
        if self.store is not None:
            self.store.append_event(
                "rebalance",
                tick_id=tick_id,
                detail={
                    "n_moves": len(moves),
                    "resized_from": resized_from,
                    "resized_to": resized_to,
                },
            )
            for move in moves:
                self.store.append_event(
                    "migration",
                    tick_id=tick_id,
                    customer_id=move.customer_id,
                    source_shard=move.source,
                    target_shard=move.target,
                )
            if resized_to is not None:
                self.store.append_event(
                    "resize",
                    tick_id=tick_id,
                    detail={"from": resized_from, "to": resized_to},
                )
        if self.on_rebalance is not None:
            self.on_rebalance(event)

    # -- durability ----------------------------------------------------
    def checkpoint_now(self, pool: "_WatchPool", tick_id: int, n_consumed: int) -> None:
        """Persist every shard's state plus the stream position.

        Caller guarantees nothing is in flight, so the snapshots are a
        consistent cut: every update for a consumed sample has been
        emitted (``n_emitted`` counts them) and no shard holds partial
        tick state.  The store write is one transaction -- a crash
        mid-checkpoint leaves the previous checkpoint intact.
        """
        assert self.checkpoint_config is not None and self.store is not None
        records: list[CustomerStateRecord] = []
        for shard_id in self.ring.shard_ids:
            records.extend(pool.snapshot_shard(shard_id))
        self.store.checkpoint(
            tick_id=tick_id,
            n_consumed=n_consumed,
            n_emitted=self.n_emitted,
            n_shards=self.ring.n_shards,
            overrides=self.ring.overrides,
            records=records,
        )
        self.n_checkpoints += 1
        max_resident = self.checkpoint_config.max_resident
        if max_resident is not None:
            self._evict_cold(pool, tick_id, max_resident)

    def _evict_cold(self, pool: "_WatchPool", tick_id: int, max_resident: int) -> None:
        """Evict the least-recently-seen customers beyond the cap.

        Runs right after a checkpoint, at the same drained boundary, so
        the extracted state equals what the checkpoint just persisted;
        the store write is belt-and-braces for eviction between
        checkpoints via other paths.  Quarantined customers hold no
        state and stay as cheap set entries.
        """
        resident = [cid for cid in self._routes if cid not in self.quarantined]
        excess = len(resident) - max_resident
        if excess <= 0:
            return
        victims = sorted(
            resident, key=lambda cid: (self._last_seen.get(cid, 0), cid)
        )[:excess]
        by_shard: dict[int, list[str]] = {}
        for customer_id in victims:
            by_shard.setdefault(self._routes[customer_id], []).append(customer_id)
        assert self.store is not None
        for shard_id in sorted(by_shard):
            customer_ids = sorted(by_shard[shard_id])
            records = pool.extract(shard_id, customer_ids)
            self.store.save_customer_states(records, tick_id=tick_id)
            for customer_id in customer_ids:
                self.store.append_event(
                    "eviction",
                    tick_id=tick_id,
                    customer_id=customer_id,
                    source_shard=shard_id,
                )
                self._routes.pop(customer_id, None)
                self._members.get(shard_id, set()).discard(customer_id)
                self._last_seen.pop(customer_id, None)
                self._customer_recent.pop(customer_id, None)
                self.evicted.add(customer_id)
        self.n_evictions += len(victims)

    def readmit(self, pool: "_WatchPool", customer_ids: "Iterable[str]") -> None:
        """Restore evicted customers whose samples are back in the feed.

        Caller guarantees a drained boundary (installs must not race
        in-flight ticks).  A customer with no stored record -- deleted
        out-of-band -- is simply treated as brand new.
        """
        assert self.store is not None
        for customer_id in sorted(set(customer_ids)):
            self.evicted.discard(customer_id)
            record = self.store.load_customer_state(customer_id)
            if record is None:
                continue
            shard_id = self.ring.route(customer_id)
            pool.install(shard_id, [record])
            if record.quarantined:
                self.quarantined.add(customer_id)
            else:
                self._routes[customer_id] = shard_id
                self._members.setdefault(shard_id, set()).add(customer_id)

    def restore(self, pool: "_WatchPool", store: "FleetStore") -> "CheckpointRecord":
        """Rebuild topology and state from the store's latest checkpoint.

        Returns the checkpoint so the watch loop can skip the consumed
        feed prefix and continue emission counting where the killed run
        stopped.
        """
        checkpoint = store.require_checkpoint()
        current = pool.n_shards
        if checkpoint.n_shards > current:
            for shard_id in range(current, checkpoint.n_shards):
                pool.add_shard(shard_id)
        elif checkpoint.n_shards < current:
            for shard_id in range(checkpoint.n_shards, current):
                pool.retire_shard(shard_id)
        if checkpoint.n_shards != self.ring.n_shards:
            self.ring.resize(checkpoint.n_shards)
        self._members = {sid: set() for sid in range(checkpoint.n_shards)}
        self._routes = {}
        for customer_id, shard_id in checkpoint.overrides.items():
            self.ring.set_override(customer_id, shard_id)
        by_shard: dict[int, list[CustomerStateRecord]] = {}
        for record in store.iter_customer_states():
            shard_id = self.ring.route(record.customer_id)
            by_shard.setdefault(shard_id, []).append(record)
            if record.quarantined:
                self.quarantined.add(record.customer_id)
            else:
                self._routes[record.customer_id] = shard_id
                self._members.setdefault(shard_id, set()).add(record.customer_id)
        for shard_id in sorted(by_shard):
            pool.install(shard_id, by_shard[shard_id])
        self.n_emitted = checkpoint.n_emitted
        return checkpoint

    def stats(self) -> WatchRebalanceStats:
        return WatchRebalanceStats(
            n_decisions=self._n_decisions,
            n_rebalances=self._n_rebalances,
            n_migrations=self._n_migrations,
            n_resizes=self._n_resizes,
            final_n_shards=self.ring.n_shards,
            samples_by_shard=tuple(sorted(self._samples_total.items())),
            events=tuple(self._events),
        )


class _WatchPool(ABC):
    """One backend's worker pool behind the generic watch loop.

    The loop (:meth:`ExecutionBackend._watch_loop`) owns tick
    iteration, routing and rebalancing; pools own execution: where
    shards live, how ticks reach them, how migrated state crosses the
    boundary.  ``extract``/``install``/``add_shard``/``retire_shard``
    are only called at fully drained tick boundaries.
    """

    #: Samples per shard per tick and reorder-buffer depth; the serial
    #: pool shrinks both to 1 so it keeps its per-sample emission
    #: cadence (the identity and latency baseline).
    tick_per_shard: int = WATCH_TICK_PER_WORKER
    max_inflight: int = WATCH_INFLIGHT_TICKS

    def __init__(self, config: ShardAssessmentConfig) -> None:
        self.config = config
        self._retired_stats: list[CurveCacheStats] = []

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """Current worker-pool size."""

    @abstractmethod
    def submit(self, tick_id: int, by_shard: dict[int, list]) -> None:
        """Dispatch one routed tick to its shards."""

    @abstractmethod
    def pending(self) -> int:
        """Ticks dispatched but not yet drained."""

    @abstractmethod
    def drain_next(self) -> tuple[list, dict[int, float]]:
        """Complete the oldest tick: (seq-sorted emissions, busy seconds by shard)."""

    @abstractmethod
    def snapshot_shard(
        self, shard_id: int, customer_ids: list[str] | None = None
    ) -> list[CustomerStateRecord]:
        """Non-destructive state snapshot of a shard (nothing in flight)."""

    @abstractmethod
    def extract(self, shard_id: int, customer_ids: list[str]) -> list:
        """Pull migration records off a shard (nothing in flight)."""

    @abstractmethod
    def install(self, shard_id: int, records: list) -> None:
        """Deliver migration records to a shard (nothing in flight)."""

    @abstractmethod
    def add_shard(self, shard_id: int) -> None:
        """Bring a new empty shard online."""

    @abstractmethod
    def retire_shard(self, shard_id: int) -> None:
        """Take an emptied shard offline, keeping its cache counters."""

    def finish(self) -> None:
        """Graceful end-of-feed handshake (collect remaining stats)."""

    def abort(self) -> None:
        """Hard teardown after an abandoned or failed stream."""

    @abstractmethod
    def stats(self) -> tuple[CurveCacheStats, ...]:
        """Per-shard watch-scoped cache counters (retired shards first)."""

    def close(self) -> None:
        """Release pool resources; called exactly once, after stats."""


class _InlinePool(_WatchPool):
    """Serial execution: shards processed synchronously in the parent.

    Rebalance support is pure bookkeeping -- state moves between
    in-process shard objects -- which keeps the serial backend the
    identity baseline for any migration schedule.
    """

    tick_per_shard = 1
    max_inflight = 1

    def __init__(self, config: ShardAssessmentConfig, n_shards: int) -> None:
        super().__init__(config)
        self._shards: dict[int, _WatchShard] = {
            shard_id: _WatchShard(config) for shard_id in range(n_shards)
        }
        self._done: deque[tuple[list, dict[int, float]]] = deque()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(self, tick_id: int, by_shard: dict[int, list]) -> None:
        emissions: list = []
        busy: dict[int, float] = {}
        for shard_id in sorted(by_shard):
            shard_emissions, seconds = self._shards[shard_id].process(by_shard[shard_id])
            emissions.extend(shard_emissions)
            busy[shard_id] = seconds
        emissions.sort(key=lambda pair: pair[0])
        self._done.append((emissions, busy))

    def pending(self) -> int:
        return len(self._done)

    def drain_next(self) -> tuple[list, dict[int, float]]:
        return self._done.popleft()

    def snapshot_shard(
        self, shard_id: int, customer_ids: list[str] | None = None
    ) -> list[CustomerStateRecord]:
        return self._shards[shard_id].snapshot_records(customer_ids)

    def extract(self, shard_id: int, customer_ids: list[str]) -> list:
        return self._shards[shard_id].extract(customer_ids)

    def install(self, shard_id: int, records: list) -> None:
        self._shards[shard_id].install(records)

    def add_shard(self, shard_id: int) -> None:
        self._shards[shard_id] = _WatchShard(self.config)

    def retire_shard(self, shard_id: int) -> None:
        self._retired_stats.append(self._shards.pop(shard_id).cache.stats())

    def stats(self) -> tuple[CurveCacheStats, ...]:
        return tuple(self._retired_stats) + tuple(
            self._shards[shard_id].cache.stats() for shard_id in sorted(self._shards)
        )


class _ThreadShardPool(_WatchPool):
    """One single-thread executor per shard, sharing the parent's memory.

    Submission order per shard is execution order, so a shard's live
    state is only ever touched by its own thread -- the same
    confinement the process backend gets from per-worker queues,
    without locks.  Migrations run as direct method calls at drained
    boundaries, when no task can be running.
    """

    def __init__(self, config: ShardAssessmentConfig, n_shards: int) -> None:
        super().__init__(config)
        self._shards: dict[int, _WatchShard] = {}
        self._executors: dict[int, ThreadPoolExecutor] = {}
        for shard_id in range(n_shards):
            self.add_shard(shard_id)
        self._pending: deque[list[tuple[int, Future]]] = deque()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(self, tick_id: int, by_shard: dict[int, list]) -> None:
        self._pending.append(
            [
                (shard_id, self._executors[shard_id].submit(self._shards[shard_id].process, batch))
                for shard_id, batch in by_shard.items()
            ]
        )

    def pending(self) -> int:
        return len(self._pending)

    def drain_next(self) -> tuple[list, dict[int, float]]:
        emissions: list = []
        busy: dict[int, float] = {}
        for shard_id, future in self._pending.popleft():
            shard_emissions, seconds = future.result()
            emissions.extend(shard_emissions)
            busy[shard_id] = busy.get(shard_id, 0.0) + seconds
        emissions.sort(key=lambda pair: pair[0])
        return emissions, busy

    def snapshot_shard(
        self, shard_id: int, customer_ids: list[str] | None = None
    ) -> list[CustomerStateRecord]:
        return self._shards[shard_id].snapshot_records(customer_ids)

    def extract(self, shard_id: int, customer_ids: list[str]) -> list:
        return self._shards[shard_id].extract(customer_ids)

    def install(self, shard_id: int, records: list) -> None:
        self._shards[shard_id].install(records)

    def add_shard(self, shard_id: int) -> None:
        self._shards[shard_id] = _WatchShard(self.config)
        self._executors[shard_id] = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"fleet-watch-{shard_id}"
        )

    def retire_shard(self, shard_id: int) -> None:
        self._executors.pop(shard_id).shutdown(wait=True)
        self._retired_stats.append(self._shards.pop(shard_id).cache.stats())

    def stats(self) -> tuple[CurveCacheStats, ...]:
        return tuple(self._retired_stats) + tuple(
            self._shards[shard_id].cache.stats() for shard_id in sorted(self._shards)
        )

    def close(self) -> None:
        for executor in self._executors.values():
            executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Process-pool plumbing (module level so it pickles by reference).
# ----------------------------------------------------------------------
_WORKER_RUNNER = None


def _init_batch_worker(engine: "DopplerEngine", cache_size: int, columnar: bool) -> None:
    """Pool initializer: one private runner (engine + cache) per worker."""
    global _WORKER_RUNNER
    from .cache import CurveCache
    from .engine import _FleetRunner

    _WORKER_RUNNER = _FleetRunner(engine, CurveCache(cache_size), columnar)


def _fit_chunk_in_worker(chunk: list, exclude_over_provisioned: bool):
    assert _WORKER_RUNNER is not None, "worker pool not initialized"
    return _WORKER_RUNNER.fit_chunk(chunk, exclude_over_provisioned)


def _recommend_chunk_in_worker(chunk: list):
    assert _WORKER_RUNNER is not None, "worker pool not initialized"
    return _WORKER_RUNNER.recommend_chunk(chunk)


_BATCH_WORKER_FNS = {
    "fit": _fit_chunk_in_worker,
    "recommend": _recommend_chunk_in_worker,
}

#: Stop sentinel for streaming workers (triggers the stats handshake).
_STOP = None


def _watch_worker_main(
    worker_id: int, config: ShardAssessmentConfig, in_queue, out_queue
) -> None:
    """Persistent streaming worker: owns one shard until retired.

    Message protocol (all tuples, kind first):

    * parent -> worker: ``("tick", tick_id, batch)``,
      ``("extract", request_id, customer_ids)``,
      ``("install", request_id, records)``,
      ``("snapshot", request_id, customer_ids_or_None)``, or the
      ``None`` stop sentinel.
    * worker -> parent: ``("tick", worker_id, tick_id, emissions,
      busy_seconds)``, ``("extracted", worker_id, request_id,
      records)``, ``("installed", worker_id, request_id)``,
      ``("snapshotted", worker_id, request_id, records)``,
      ``("stats", worker_id, cache_stats)`` on graceful stop, or
      ``("error", worker_id, details)`` on any failure the shard's
      per-customer containment did not absorb.
    """
    try:
        shard = _WatchShard(config)
        while True:
            message = in_queue.get()
            if message is _STOP:
                out_queue.put(("stats", worker_id, shard.cache.stats()))
                return
            kind = message[0]
            if kind == "tick":
                _, tick_id, batch = message
                emissions, busy_seconds = shard.process(batch)
                out_queue.put(("tick", worker_id, tick_id, emissions, busy_seconds))
            elif kind == "extract":
                _, request_id, customer_ids = message
                out_queue.put(
                    ("extracted", worker_id, request_id, shard.extract(customer_ids))
                )
            elif kind == "install":
                _, request_id, records = message
                shard.install(records)
                out_queue.put(("installed", worker_id, request_id))
            elif kind == "snapshot":
                _, request_id, customer_ids = message
                out_queue.put(
                    (
                        "snapshotted",
                        worker_id,
                        request_id,
                        shard.snapshot_records(customer_ids),
                    )
                )
            else:
                raise RuntimeError(f"unknown watch message kind {kind!r}")
    except BaseException as exc:  # noqa: BLE001 - parent must see worker death
        out_queue.put(
            (
                "error",
                worker_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        )


class _ProcessShardPool(_WatchPool):
    """Persistent worker processes; state crosses on the queues only.

    Sticky routing needs *dedicated* per-worker queues, which executor
    pools cannot promise, so each shard is one long-lived
    :mod:`multiprocessing` process fed through its own input queue;
    emissions return over one shared result queue and the parent
    reorders them into feed order.  Migration records (picklable
    ``LiveAssessmentState`` snapshots) travel the same queues via the
    extract/install handshakes; pool growth spawns a fresh worker and
    shrink runs the stop/stats handshake on the retiring one.
    """

    def __init__(self, config: ShardAssessmentConfig, n_shards: int) -> None:
        super().__init__(config)
        self._context = multiprocessing.get_context()
        self._out_queue = self._context.Queue()
        self._workers: dict[int, object] = {}
        self._in_queues: dict[int, object] = {}
        self._closed_queues: list = []
        self._final_stats: list[CurveCacheStats] = []
        self._request_id = 0
        for shard_id in range(n_shards):
            self.add_shard(shard_id)
        # Reorder buffer: [tick id, shard ids still owing results,
        # emissions gathered so far, busy seconds by shard].
        self._pending: deque[list] = deque()

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    def submit(self, tick_id: int, by_shard: dict[int, list]) -> None:
        for shard_id, batch in by_shard.items():
            self._in_queues[shard_id].put(("tick", tick_id, batch))
        self._pending.append([tick_id, set(by_shard), [], {}])

    def pending(self) -> int:
        return len(self._pending)

    def _receive(self, awaiting: set[int]) -> tuple:
        """One worker message, failing fast if an *owing* worker died.

        Only workers in ``awaiting`` count as casualties: a worker
        that already delivered everything it owed exits legitimately
        during the shutdown handshake, and must not be mistaken for
        a crash while the parent waits on its peers.
        """
        while True:
            try:
                return self._out_queue.get(timeout=_WORKER_POLL_SECONDS)
            except queue_module.Empty:
                dead = [
                    self._workers[shard_id].name
                    for shard_id in sorted(awaiting)
                    if shard_id in self._workers and not self._workers[shard_id].is_alive()
                ]
                if dead:
                    raise RuntimeError(
                        f"fleet watch worker(s) {', '.join(dead)} died "
                        "without reporting a result"
                    ) from None

    def drain_next(self) -> tuple[list, dict[int, float]]:
        head = self._pending[0]
        while head[1]:  # shards still owing the head tick
            message = self._receive(
                {shard_id for entry in self._pending for shard_id in entry[1]}
            )
            kind = message[0]
            if kind == "error":
                raise RuntimeError(
                    f"fleet watch worker {message[1]} failed:\n{message[2]}"
                )
            if kind != "tick":
                raise RuntimeError(
                    f"fleet watch worker {message[1]} sent unexpected "
                    f"{kind!r} while ticks were in flight"
                )
            _, shard_id, tick_id, emissions, busy_seconds = message
            for entry in self._pending:
                if entry[0] == tick_id:
                    entry[1].discard(shard_id)
                    entry[2].extend(emissions)
                    entry[3][shard_id] = entry[3].get(shard_id, 0.0) + busy_seconds
                    break
            else:
                raise RuntimeError(
                    f"fleet watch worker {shard_id} answered unknown tick {tick_id}"
                )
        _, _, emissions, busy = self._pending.popleft()
        emissions.sort(key=lambda pair: pair[0])
        return emissions, busy

    def _await_reply(self, kind: str, shard_id: int, request_id: int) -> tuple:
        """Wait for one handshake reply; nothing else can be in flight."""
        message = self._receive({shard_id})
        if message[0] == "error":
            raise RuntimeError(f"fleet watch worker {message[1]} failed:\n{message[2]}")
        if message[0] != kind or message[1] != shard_id or message[2] != request_id:
            raise RuntimeError(
                f"fleet watch worker {message[1]} sent unexpected {message[0]!r} "
                f"during a drained {kind!r} handshake"
            )
        return message

    def snapshot_shard(
        self, shard_id: int, customer_ids: list[str] | None = None
    ) -> list[CustomerStateRecord]:
        self._request_id += 1
        self._in_queues[shard_id].put(("snapshot", self._request_id, customer_ids))
        return self._await_reply("snapshotted", shard_id, self._request_id)[3]

    def extract(self, shard_id: int, customer_ids: list[str]) -> list:
        self._request_id += 1
        self._in_queues[shard_id].put(("extract", self._request_id, customer_ids))
        return self._await_reply("extracted", shard_id, self._request_id)[3]

    def install(self, shard_id: int, records: list) -> None:
        self._request_id += 1
        self._in_queues[shard_id].put(("install", self._request_id, records))
        self._await_reply("installed", shard_id, self._request_id)

    def add_shard(self, shard_id: int) -> None:
        in_queue = self._context.Queue()
        worker = self._context.Process(
            target=_watch_worker_main,
            args=(shard_id, self.config, in_queue, self._out_queue),
            daemon=True,
            name=f"fleet-watch-{shard_id}",
        )
        self._in_queues[shard_id] = in_queue
        self._workers[shard_id] = worker
        worker.start()

    def retire_shard(self, shard_id: int) -> None:
        self._in_queues[shard_id].put(_STOP)
        while True:
            message = self._receive({shard_id})
            if message[0] == "error":
                raise RuntimeError(
                    f"fleet watch worker {message[1]} failed:\n{message[2]}"
                )
            if message[0] == "stats" and message[1] == shard_id:
                break
            raise RuntimeError(
                f"fleet watch worker {message[1]} sent unexpected "
                f"{message[0]!r} during retirement"
            )
        self._retired_stats.append(message[2])
        worker = self._workers.pop(shard_id)
        worker.join(timeout=5.0)
        queue = self._in_queues.pop(shard_id)
        self._closed_queues.append(queue)

    def finish(self) -> None:
        for shard_id in sorted(self._workers):
            self._in_queues[shard_id].put(_STOP)
        owing = set(self._workers)
        collected: dict[int, CurveCacheStats] = {}
        while owing:
            message = self._receive(owing)
            if message[0] == "error":
                raise RuntimeError(
                    f"fleet watch worker {message[1]} failed:\n{message[2]}"
                )
            if message[0] == "stats":
                owing.discard(message[1])
                collected[message[1]] = message[2]
        self._final_stats = [collected[shard_id] for shard_id in sorted(collected)]

    def abort(self) -> None:
        # Abandoned or failed stream: tear the pool down hard; shard
        # state is not recoverable anyway.
        for worker in self._workers.values():
            worker.terminate()

    def stats(self) -> tuple[CurveCacheStats, ...]:
        # Shards torn down after an abandoned watch never report and
        # are absent, matching the documented watch_stats contract.
        return tuple(self._retired_stats) + tuple(self._final_stats)

    def close(self) -> None:
        for worker in self._workers.values():
            worker.join(timeout=5.0)
        for queue in (*self._in_queues.values(), *self._closed_queues, self._out_queue):
            queue.close()
            queue.cancel_join_thread()


class ExecutionBackend(ABC):
    """One execution substrate behind both fleet protocols.

    Attributes:
        name: The selector this backend answers to.
        max_workers: Requested pool size (None = machine CPU count;
            always 1 for the serial backend).
    """

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers!r}")
        self.max_workers = max_workers
        self._watch_stats: tuple[CurveCacheStats, ...] = ()
        self._rebalance_stats: WatchRebalanceStats | None = None

    @property
    def n_workers(self) -> int:
        """Effective parallelism of this backend."""
        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        """Run ``job`` over every shard, yielding results in order."""

    def _pump(
        self, executor: Executor, fn: Callable, chunks: Iterator[list], extra: tuple
    ) -> Iterator[list]:
        """Submission-ordered streaming with a bounded in-flight window."""
        max_inflight = self.n_workers * INFLIGHT_PER_WORKER
        pending: deque[Future] = deque()
        try:
            for chunk in chunks:
                pending.append(executor.submit(fn, chunk, *extra))
                if len(pending) >= max_inflight:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            # Abandoned stream (consumer broke out early) or failure:
            # drop queued chunks instead of draining the whole in-flight
            # window; running chunks finish, their results are discarded.
            executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Streaming protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def _make_watch_pool(self, config: ShardAssessmentConfig) -> _WatchPool:
        """This backend's worker pool for one watch."""

    def watch(
        self,
        config: ShardAssessmentConfig,
        samples: "Iterable[FleetSample]",
        policy: RebalancePolicy | None = None,
        on_rebalance: Callable[[RebalanceEvent], None] | None = None,
        tick_samples: int | None = None,
        checkpoint: "CheckpointConfig | None" = None,
        resume_from: "FleetStore | None" = None,
    ) -> "Iterator[FleetLiveUpdate]":
        """Stream live assessments over a fleet-wide feed, in feed order.

        With a ``policy`` attached the watch is elastic: at drained
        tick boundaries the policy may migrate customers between
        shards or resize the pool; ``on_rebalance`` observes each
        executed :class:`~repro.fleet.rebalance.RebalanceEvent`.  The
        emitted stream is byte-identical to the serial backend's
        either way.  ``tick_samples`` overrides the per-shard
        microbatch size (:data:`WATCH_TICK_PER_WORKER`): smaller ticks
        bound emission latency tighter and give rebalance policies
        finer decision boundaries, at more queue round-trips.

        With a ``checkpoint`` config the watch persists shard state to
        the config's store at its tick cadence; with ``resume_from``
        it rebuilds state from that store's latest checkpoint and
        skips the consumed feed prefix, emitting exactly what the
        uninterrupted run would have emitted from that point.  The
        caller must replay the *same* feed; the checkpoint records how
        much of it is already accounted for.
        """
        if tick_samples is not None and tick_samples <= 0:
            raise ValueError(f"tick_samples must be positive, got {tick_samples!r}")
        return self._watch_loop(
            config, samples, policy, on_rebalance, tick_samples, checkpoint, resume_from
        )

    def _watch_loop(
        self,
        config: ShardAssessmentConfig,
        samples: "Iterable[FleetSample]",
        policy: RebalancePolicy | None,
        on_rebalance: Callable[[RebalanceEvent], None] | None,
        tick_samples: int | None = None,
        checkpoint: "CheckpointConfig | None" = None,
        resume_from: "FleetStore | None" = None,
    ) -> "Iterator[FleetLiveUpdate]":
        # The pool spawns lazily, on first iteration: a watch generator
        # that is created but never consumed must not leave worker
        # processes parked on their queues.
        pool = self._make_watch_pool(config)
        if tick_samples is not None:
            pool.tick_per_shard = tick_samples
        coordinator = _WatchCoordinator(pool.n_shards, policy, on_rebalance, checkpoint)
        stream = iter(enumerate(samples))
        completed = False

        def emit_next() -> "Iterator[FleetLiveUpdate]":
            emissions, busy = pool.drain_next()
            coordinator.record_busy(busy)
            for _, update in emissions:
                if update.update is None:  # failure update: customer quarantined
                    coordinator.mark_quarantined(update.customer_id)
                coordinator.n_emitted += 1
                yield update

        try:
            n_consumed = 0
            if resume_from is not None:
                resume_point = coordinator.restore(pool, resume_from)
                # The checkpointed run already consumed (and emitted
                # for) this feed prefix; skip it.
                while n_consumed < resume_point.n_consumed:
                    if next(stream, None) is None:
                        break
                    n_consumed += 1
            tick_id = 0
            ticks_since_decision = 0
            ticks_since_checkpoint = 0
            while True:
                tick: list = []
                size = pool.tick_per_shard * coordinator.ring.n_shards
                for seq, sample in stream:
                    tick.append((seq, sample))
                    if len(tick) >= size:
                        break
                if not tick:
                    break
                n_consumed += len(tick)
                coordinator.current_tick = tick_id
                if coordinator.evicted:
                    returning = sorted(
                        {
                            sample.customer_id
                            for _, sample in tick
                            if sample.customer_id in coordinator.evicted
                        }
                    )
                    if returning:
                        while pool.pending():  # installs only run fully drained
                            yield from emit_next()
                        coordinator.readmit(pool, returning)
                by_shard: dict[int, list] = {}
                for seq, sample in tick:
                    if sample.customer_id in coordinator.quarantined:
                        continue  # the shard would skip it; don't ship the work
                    by_shard.setdefault(coordinator.route(sample.customer_id), []).append(
                        (seq, sample)
                    )
                pool.submit(tick_id, by_shard)
                tick_id += 1
                if pool.pending() >= pool.max_inflight:
                    yield from emit_next()
                if policy is not None:
                    ticks_since_decision += 1
                    if ticks_since_decision >= policy.interval_ticks:
                        while pool.pending():  # decision points run fully drained
                            yield from emit_next()
                        coordinator.rebalance(pool, tick_id - 1)
                        ticks_since_decision = 0
                if checkpoint is not None:
                    ticks_since_checkpoint += 1
                    if ticks_since_checkpoint >= checkpoint.every_ticks:
                        while pool.pending():  # checkpoints run fully drained
                            yield from emit_next()
                        coordinator.checkpoint_now(pool, tick_id - 1, n_consumed)
                        ticks_since_checkpoint = 0
            while pool.pending():
                yield from emit_next()
            if checkpoint is not None and ticks_since_checkpoint > 0:
                # End-of-feed checkpoint: a completed watch leaves the
                # store current, so a restart has nothing to replay.
                coordinator.checkpoint_now(pool, max(tick_id - 1, 0), n_consumed)
            pool.finish()
            completed = True
        finally:
            if not completed:
                pool.abort()
            self._watch_stats = pool.stats()
            self._rebalance_stats = coordinator.stats()
            pool.close()

    def watch_stats(self) -> tuple[CurveCacheStats, ...]:
        """Per-shard watch-scoped curve-cache counters of the last watch.

        Populated when the watch generator finishes (exhausted, closed,
        or failed); retired shards report at retirement, and shards
        torn down after an abandoned process watch are absent.
        """
        return self._watch_stats

    def watch_rebalance_stats(self) -> WatchRebalanceStats | None:
        """Rebalancing account of the last watch (None before any watch)."""
        return self._rebalance_stats


class SerialBackend(ExecutionBackend):
    """Everything in the parent process; the identity baseline."""

    name = "serial"

    @property
    def n_workers(self) -> int:
        return 1

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        fn = job.local_fn()
        for chunk in chunks:
            yield fn(chunk, *extra)

    def _make_watch_pool(self, config: ShardAssessmentConfig) -> _WatchPool:
        return _InlinePool(config, self.n_workers)


class ThreadBackend(ExecutionBackend):
    """Thread pools sharing the parent's memory.

    Batch chunks run on one shared pool against the parent runner (one
    shared curve cache).  Streaming shards each get a dedicated
    single-thread executor (see :class:`_ThreadShardPool`).
    """

    name = "thread"

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        executor = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="fleet"
        )
        yield from self._pump(executor, job.local_fn(), chunks, extra)

    def _make_watch_pool(self, config: ShardAssessmentConfig) -> _WatchPool:
        return _ThreadShardPool(config, self.n_workers)


class ProcessBackend(ExecutionBackend):
    """Fork-per-worker pools; state never crosses process boundaries.

    Batch chunks run on a :class:`ProcessPoolExecutor` whose workers
    hold private runners (curves are cheaper to rebuild than to ship).
    Streaming runs on persistent :mod:`multiprocessing` workers (see
    :class:`_ProcessShardPool`); migrated live state is the one
    exception to "state never crosses" -- it ships as picklable
    snapshots over the same queues the ticks use.
    """

    name = "process"

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_batch_worker,
            initargs=(job.engine, job.cache_size, job.columnar),
        )
        yield from self._pump(executor, _BATCH_WORKER_FNS[job.task], chunks, extra)

    def _make_watch_pool(self, config: ShardAssessmentConfig) -> _WatchPool:
        return _ProcessShardPool(config, self.n_workers)


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(name: str, max_workers: int | None = None) -> ExecutionBackend:
    """Construct the execution backend answering to ``name``.

    Raises:
        ValueError: For an unknown selector (message lists the valid
            ones) or a non-positive ``max_workers``.
    """
    backend_cls = _BACKENDS.get(name)
    if backend_cls is None:
        raise ValueError(
            f"unknown fleet backend {name!r}; choose one of "
            + ", ".join(repr(option) for option in BACKEND_NAMES)
        )
    return backend_cls(max_workers=max_workers)
