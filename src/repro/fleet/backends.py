"""Unified execution backends for fleet-scale passes.

One execution substrate for both fleet protocols:

* **Batch** (:meth:`ExecutionBackend.map_chunks`): position-sharded
  chunks of customers fan out over an executor and results stream back
  in submission order -- the ``fit_fleet`` / ``recommend_fleet``
  plumbing that used to live as private globals in
  :mod:`repro.fleet.engine`.
* **Streaming** (:meth:`ExecutionBackend.watch`): a fleet-wide
  telemetry feed is routed *sticky-by-customer-id* (see
  :func:`~repro.fleet.sharding.route_customer`) to stateful shard
  workers, each owning its customers'
  :class:`~repro.streaming.live.LiveRecommender` state for the whole
  watch, and per-sample outcomes flow back in feed order.

Three backends implement both protocols behind one interface:
``serial`` (everything in the parent), ``thread`` (one single-thread
executor per shard, so per-customer state stays confined), and
``process`` (persistent worker processes with per-worker input queues
and one shared result queue).  The contract every backend upholds is
*serial identity*: the emitted result sequence -- including
per-customer failure containment and quarantine ordering -- is
byte-identical to the serial backend's, because each customer's state
lives on exactly one shard, shards process their samples in feed
order, and the parent reorders emissions by global sequence number
before yielding.

Streaming shards exchange *microbatches* ("ticks") with the parent
rather than single samples, so queue/IPC overhead amortizes across
:data:`WATCH_TICK_PER_WORKER` samples; up to
:data:`WATCH_INFLIGHT_TICKS` ticks are in flight per watch, which
pipelines parent-side routing against worker-side assessment without
unbounded buffering.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Literal

from .cache import CurveCacheStats
from .sharding import route_customer

if TYPE_CHECKING:  # imported lazily at run time to avoid cycles
    from ..core.engine import DopplerEngine
    from .engine import FleetLiveUpdate, FleetSample

__all__ = [
    "BACKEND_NAMES",
    "BatchJob",
    "ExecutionBackend",
    "FleetBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WatchConfig",
    "make_backend",
]

FleetBackend = Literal["serial", "thread", "process"]

#: Valid backend selectors, in documentation order.
BACKEND_NAMES: tuple[str, ...] = ("serial", "thread", "process")

#: In-flight chunks per worker (batch protocol): enough to keep the
#: pool busy without buffering the whole fleet's results in memory.
INFLIGHT_PER_WORKER = 2

#: Samples routed per worker per streaming tick.  Large enough that
#: queue round-trips amortize, small enough that emission latency
#: stays bounded (a tick is the unit of reordering).
WATCH_TICK_PER_WORKER = 64

#: Streaming ticks in flight before the parent blocks on results:
#: double-buffering overlaps routing with assessment.
WATCH_INFLIGHT_TICKS = 2

#: Seconds between liveness checks while waiting on worker results.
_WORKER_POLL_SECONDS = 1.0


@dataclass(frozen=True)
class BatchJob:
    """One sharded batch pass, described backend-agnostically.

    Attributes:
        task: ``fit`` or ``recommend`` -- selects the
            ``<task>_chunk`` method on the runner (parent-side
            backends) or the matching module-level worker function
            (process backend).
        runner: The parent's ``_FleetRunner`` (engine + curve cache).
        engine: The wrapped engine, shipped to process-pool
            initializers (workers rebuild private runners from it).
        cache_size: Curve-cache capacity per runner.
        columnar: Whether shard bodies run the columnar batch kernel.
    """

    task: str
    runner: object
    engine: "DopplerEngine"
    cache_size: int
    columnar: bool

    def local_fn(self) -> Callable:
        """The parent-side chunk body for serial/thread execution."""
        return getattr(self.runner, f"{self.task}_chunk")


@dataclass(frozen=True)
class WatchConfig:
    """Everything a streaming shard needs to assess its customers.

    Picklable on purpose: the process backend ships one copy to every
    worker at startup; workers construct per-customer
    :class:`~repro.streaming.live.LiveRecommender` instances from it
    on first sight of each customer.

    The constructor validates the per-customer assessment parameters
    up front with the same messages ``LiveRecommender`` would raise,
    so a misconfigured watch fails at the call site in the parent
    instead of surfacing as a wrapped worker error mid-stream.
    """

    engine: "DopplerEngine"
    window: int
    interval_minutes: float
    drift_threshold: float
    min_refresh_samples: int
    refreshes_only: bool
    profile_mode: str
    cache_size: int

    def __post_init__(self) -> None:
        # Imported lazily for the same cycle reason as _WatchShard;
        # LiveRecommender.validate_config is the single source of
        # truth for these constraints and their messages.
        from ..streaming.live import LiveRecommender

        LiveRecommender.validate_config(
            self.window,
            self.min_refresh_samples,
            self.profile_mode,
            self.engine.summarizer,
        )


class _WatchShard:
    """One worker's share of a fleet watch: live state plus quarantine.

    Owns every :class:`~repro.streaming.live.LiveRecommender` routed to
    it, the shard's watch-scoped curve cache, and the per-customer
    quarantine set.  Processes its samples strictly in feed order, so
    per-customer update sequences -- including the
    quarantine-after-failure containment contract -- are identical to
    the serial loop's regardless of how many shards a watch runs.
    """

    def __init__(self, config: WatchConfig) -> None:
        # Imported here, not at module top: live assessment builds on
        # the fleet curve cache, keeping the import one-directional.
        from ..streaming.live import LiveRecommender
        from .cache import CurveCache

        self._live_cls = LiveRecommender
        self.config = config
        self.cache = CurveCache(config.cache_size)
        self.recommenders: dict[str, object] = {}
        self.quarantined: set[str] = set()

    def process(
        self, batch: "list[tuple[int, FleetSample]]"
    ) -> "list[tuple[int, FleetLiveUpdate]]":
        """Assess one tick of (sequence number, sample) pairs.

        Returns only the emissions -- refresh events (or every sample
        when ``refreshes_only`` is off) and one-shot failure updates --
        tagged with their global sequence numbers so the parent can
        interleave shards back into feed order.
        """
        from .engine import FleetLiveUpdate

        config = self.config
        emissions: list[tuple[int, FleetLiveUpdate]] = []
        for seq, sample in batch:
            if sample.customer_id in self.quarantined:
                continue
            live = self.recommenders.get(sample.customer_id)
            if live is None:
                live = self._live_cls(
                    config.engine,
                    sample.deployment,
                    window=config.window,
                    interval_minutes=config.interval_minutes,
                    drift_threshold=config.drift_threshold,
                    min_refresh_samples=config.min_refresh_samples,
                    cache=self.cache,
                    entity_id=sample.customer_id,
                    profile_mode=config.profile_mode,
                )
                self.recommenders[sample.customer_id] = live
            try:
                update = live.observe(sample.values)
            except Exception as exc:  # noqa: BLE001 - one bad feed must not kill the fleet
                self.quarantined.add(sample.customer_id)
                self.recommenders.pop(sample.customer_id, None)
                emissions.append(
                    (
                        seq,
                        FleetLiveUpdate(
                            customer_id=sample.customer_id,
                            update=None,
                            error=f"{type(exc).__name__}: {exc}",
                        ),
                    )
                )
                continue
            if update.refreshed or not config.refreshes_only:
                emissions.append(
                    (seq, FleetLiveUpdate(customer_id=sample.customer_id, update=update))
                )
        return emissions


def _iter_ticks(
    samples: "Iterable[FleetSample]", size: int
) -> "Iterator[list[tuple[int, FleetSample]]]":
    """Microbatch a feed into globally sequence-numbered ticks."""
    tick: list = []
    for seq, sample in enumerate(samples):
        tick.append((seq, sample))
        if len(tick) >= size:
            yield tick
            tick = []
    if tick:
        yield tick


class ExecutionBackend(ABC):
    """One execution substrate behind both fleet protocols.

    Attributes:
        name: The selector this backend answers to.
        max_workers: Requested pool size (None = machine CPU count;
            always 1 for the serial backend).
    """

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers!r}")
        self.max_workers = max_workers
        self._watch_stats: tuple[CurveCacheStats, ...] = ()

    @property
    def n_workers(self) -> int:
        """Effective parallelism of this backend."""
        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        """Run ``job`` over every shard, yielding results in order."""

    def _pump(
        self, executor: Executor, fn: Callable, chunks: Iterator[list], extra: tuple
    ) -> Iterator[list]:
        """Submission-ordered streaming with a bounded in-flight window."""
        max_inflight = self.n_workers * INFLIGHT_PER_WORKER
        pending: deque[Future] = deque()
        try:
            for chunk in chunks:
                pending.append(executor.submit(fn, chunk, *extra))
                if len(pending) >= max_inflight:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            # Abandoned stream (consumer broke out early) or failure:
            # drop queued chunks instead of draining the whole in-flight
            # window; running chunks finish, their results are discarded.
            executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Streaming protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def watch(
        self, config: WatchConfig, samples: "Iterable[FleetSample]"
    ) -> "Iterator[FleetLiveUpdate]":
        """Stream live assessments over a fleet-wide feed, in feed order."""

    def watch_stats(self) -> tuple[CurveCacheStats, ...]:
        """Per-shard watch-scoped curve-cache counters of the last watch.

        Populated when the watch generator finishes (exhausted, closed,
        or failed); shards that never reported -- e.g. workers torn
        down after an abandoned process watch -- are absent.
        """
        return self._watch_stats


class SerialBackend(ExecutionBackend):
    """Everything in the parent process; the identity baseline."""

    name = "serial"

    @property
    def n_workers(self) -> int:
        return 1

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        fn = job.local_fn()
        for chunk in chunks:
            yield fn(chunk, *extra)

    def watch(
        self, config: WatchConfig, samples: "Iterable[FleetSample]"
    ) -> "Iterator[FleetLiveUpdate]":
        shard = _WatchShard(config)
        try:
            for seq, sample in enumerate(samples):
                for _, update in shard.process([(seq, sample)]):
                    yield update
        finally:
            self._watch_stats = (shard.cache.stats(),)


class ThreadBackend(ExecutionBackend):
    """Thread pools sharing the parent's memory.

    Batch chunks run on one shared pool against the parent runner (one
    shared curve cache).  Streaming shards each get a dedicated
    single-thread executor: submission order per shard is execution
    order, so a shard's live state is only ever touched by its own
    thread -- the same confinement the process backend gets from
    per-worker queues, without locks.
    """

    name = "thread"

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        executor = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="fleet"
        )
        yield from self._pump(executor, job.local_fn(), chunks, extra)

    def watch(
        self, config: WatchConfig, samples: "Iterable[FleetSample]"
    ) -> "Iterator[FleetLiveUpdate]":
        n_shards = self.n_workers
        shards = [_WatchShard(config) for _ in range(n_shards)]
        executors = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"fleet-watch-{index}")
            for index in range(n_shards)
        ]
        # (tick futures by shard) in submission order; bounded so
        # routing pipelines against assessment without unbounded memory.
        pending: deque[list[Future]] = deque()

        def drain_head() -> "Iterator[FleetLiveUpdate]":
            emissions: list = []
            for future in pending.popleft():
                emissions.extend(future.result())
            emissions.sort(key=lambda pair: pair[0])
            for _, update in emissions:
                yield update

        try:
            for tick in _iter_ticks(samples, n_shards * WATCH_TICK_PER_WORKER):
                by_shard: dict[int, list] = {}
                for seq, sample in tick:
                    shard_id = route_customer(sample.customer_id, n_shards)
                    by_shard.setdefault(shard_id, []).append((seq, sample))
                pending.append(
                    [
                        executors[shard_id].submit(shards[shard_id].process, batch)
                        for shard_id, batch in by_shard.items()
                    ]
                )
                if len(pending) >= WATCH_INFLIGHT_TICKS:
                    yield from drain_head()
            while pending:
                yield from drain_head()
        finally:
            for executor in executors:
                executor.shutdown(wait=False, cancel_futures=True)
            self._watch_stats = tuple(shard.cache.stats() for shard in shards)


# ----------------------------------------------------------------------
# Process-pool plumbing (module level so it pickles by reference).
# ----------------------------------------------------------------------
_WORKER_RUNNER = None


def _init_batch_worker(engine: "DopplerEngine", cache_size: int, columnar: bool) -> None:
    """Pool initializer: one private runner (engine + cache) per worker."""
    global _WORKER_RUNNER
    from .cache import CurveCache
    from .engine import _FleetRunner

    _WORKER_RUNNER = _FleetRunner(engine, CurveCache(cache_size), columnar)


def _fit_chunk_in_worker(chunk: list, exclude_over_provisioned: bool):
    assert _WORKER_RUNNER is not None, "worker pool not initialized"
    return _WORKER_RUNNER.fit_chunk(chunk, exclude_over_provisioned)


def _recommend_chunk_in_worker(chunk: list):
    assert _WORKER_RUNNER is not None, "worker pool not initialized"
    return _WORKER_RUNNER.recommend_chunk(chunk)


_BATCH_WORKER_FNS = {
    "fit": _fit_chunk_in_worker,
    "recommend": _recommend_chunk_in_worker,
}

#: Stop sentinel for streaming workers (triggers the stats handshake).
_STOP = None


def _watch_worker_main(
    worker_id: int, config: WatchConfig, in_queue, out_queue
) -> None:
    """Persistent streaming worker: owns one shard for a whole watch.

    Message protocol (all tuples, kind first):
      parent -> worker: ``(tick_id, batch)`` or the ``None`` stop
      sentinel; worker -> parent: ``("tick", worker_id, tick_id,
      emissions)``, ``("stats", worker_id, cache_stats)`` on graceful
      stop, or ``("error", worker_id, details)`` on any failure the
      shard's per-customer containment did not absorb.
    """
    try:
        shard = _WatchShard(config)
        while True:
            message = in_queue.get()
            if message is _STOP:
                out_queue.put(("stats", worker_id, shard.cache.stats()))
                return
            tick_id, batch = message
            out_queue.put(("tick", worker_id, tick_id, shard.process(batch)))
    except BaseException as exc:  # noqa: BLE001 - parent must see worker death
        out_queue.put(
            (
                "error",
                worker_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        )


class ProcessBackend(ExecutionBackend):
    """Fork-per-worker pools; state never crosses process boundaries.

    Batch chunks run on a :class:`ProcessPoolExecutor` whose workers
    hold private runners (curves are cheaper to rebuild than to ship).
    Streaming runs on persistent :mod:`multiprocessing` workers --
    sticky routing needs *dedicated* per-worker queues, which executor
    pools cannot promise -- each owning its shard's live state for the
    whole watch; emissions return over one shared result queue and the
    parent reorders them into feed order.
    """

    name = "process"

    def map_chunks(self, job: BatchJob, chunks: Iterator[list], *extra) -> Iterator[list]:
        executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_batch_worker,
            initargs=(job.engine, job.cache_size, job.columnar),
        )
        yield from self._pump(executor, _BATCH_WORKER_FNS[job.task], chunks, extra)

    def watch(
        self, config: WatchConfig, samples: "Iterable[FleetSample]"
    ) -> "Iterator[FleetLiveUpdate]":
        context = multiprocessing.get_context()
        n_shards = self.n_workers
        in_queues = [context.Queue() for _ in range(n_shards)]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_watch_worker_main,
                args=(worker_id, config, in_queues[worker_id], out_queue),
                daemon=True,
                name=f"fleet-watch-{worker_id}",
            )
            for worker_id in range(n_shards)
        ]
        for worker in workers:
            worker.start()
        # Submission-ordered reorder buffer: (tick id, shard ids still
        # owing results, emissions gathered so far).
        pending: deque[tuple[int, set[int], list]] = deque()
        stats: list[CurveCacheStats] = []
        completed = False

        def receive(awaiting: set[int]) -> tuple:
            """One worker message, failing fast if an *owing* worker died.

            Only workers in ``awaiting`` count as casualties: a worker
            that already delivered everything it owed exits legitimately
            during the shutdown handshake, and must not be mistaken for
            a crash while the parent waits on its peers.
            """
            while True:
                try:
                    return out_queue.get(timeout=_WORKER_POLL_SECONDS)
                except queue_module.Empty:
                    dead = [
                        workers[worker_id].name
                        for worker_id in sorted(awaiting)
                        if not workers[worker_id].is_alive()
                    ]
                    if dead:
                        raise RuntimeError(
                            f"fleet watch worker(s) {', '.join(dead)} died "
                            "without reporting a result"
                        ) from None

        def drain_head() -> "Iterator[FleetLiveUpdate]":
            while pending[0][1]:  # shards still owing the head tick
                message = receive({shard for entry in pending for shard in entry[1]})
                kind = message[0]
                if kind == "error":
                    raise RuntimeError(
                        f"fleet watch worker {message[1]} failed:\n{message[2]}"
                    )
                _, worker_id, tick_id, emissions = message
                for entry in pending:
                    if entry[0] == tick_id:
                        entry[1].discard(worker_id)
                        entry[2].extend(emissions)
                        break
                else:
                    raise RuntimeError(
                        f"fleet watch worker {worker_id} answered unknown tick {tick_id}"
                    )
            _, _, emissions = pending.popleft()
            emissions.sort(key=lambda pair: pair[0])
            for _, update in emissions:
                yield update

        try:
            tick_id = 0
            for tick in _iter_ticks(samples, n_shards * WATCH_TICK_PER_WORKER):
                by_shard: dict[int, list] = {}
                for seq, sample in tick:
                    shard_id = route_customer(sample.customer_id, n_shards)
                    by_shard.setdefault(shard_id, []).append((seq, sample))
                for shard_id, batch in by_shard.items():
                    in_queues[shard_id].put((tick_id, batch))
                pending.append((tick_id, set(by_shard), []))
                tick_id += 1
                if len(pending) >= WATCH_INFLIGHT_TICKS:
                    yield from drain_head()
            while pending:
                yield from drain_head()
            for in_queue in in_queues:  # stats handshake, then exit
                in_queue.put(_STOP)
            owing_stats = set(range(n_shards))
            while owing_stats:
                message = receive(owing_stats)
                if message[0] == "error":
                    raise RuntimeError(
                        f"fleet watch worker {message[1]} failed:\n{message[2]}"
                    )
                owing_stats.discard(message[1])
                stats.append(message[2])
            completed = True
        finally:
            self._watch_stats = tuple(stats)
            if not completed:
                # Abandoned or failed stream: tear the pool down hard;
                # shard state is not recoverable anyway.
                for worker in workers:
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5.0)
            for q in (*in_queues, out_queue):
                q.close()
                q.cancel_join_thread()


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(name: str, max_workers: int | None = None) -> ExecutionBackend:
    """Construct the execution backend answering to ``name``.

    Raises:
        ValueError: For an unknown selector (message lists the valid
            ones) or a non-positive ``max_workers``.
    """
    backend_cls = _BACKENDS.get(name)
    if backend_cls is None:
        raise ValueError(
            f"unknown fleet backend {name!r}; choose one of "
            + ", ".join(repr(option) for option in BACKEND_NAMES)
        )
    return backend_cls(max_workers=max_workers)
